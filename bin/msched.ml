(* msched — command-line driver for the MorphoSys Complete Data Scheduler.

   Subcommands:
     list      show the bundled workloads
     run       schedule one workload and print metrics / trace
     compare   run Basic vs DS vs CDS on one workload
     alloc     print the Figure 4 allocation trace of the CDS schedule
     dot       emit the kernel graph as Graphviz DOT
     table1    reproduce the paper's Table 1 + Figure 6
     figures   reproduce Figures 3 and 5 and the allocator-quality table
     dse       parallel cached design-space exploration (--jobs/--cache/--stats),
               durable and resumable with --store PATH / --resume
     store     inspect and maintain the on-disk result stores (info/verify/gc)
     fuzz      random-application differential fuzzing against the validator *)

open Cmdliner

type source = { app : Kernel_ir.Application.t; default_fb : int;
                default_clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering;
                spec_partition : int list option;
                spec_fb : int option; spec_cm : int option }

let source_of_workload (e : Workloads.Registry.entry) =
  { app = e.Workloads.Registry.app ();
    default_fb = e.Workloads.Registry.default_fb;
    default_clustering = e.Workloads.Registry.clustering;
    spec_partition = None; spec_fb = None; spec_cm = None }

let source_of_file path =
  Result.map
    (fun (spec : Appdsl.spec) ->
      { app = spec.Appdsl.app; default_fb = 1024;
        default_clustering = (fun app -> Kernel_ir.Cluster.singleton_per_kernel app);
        spec_partition = spec.Appdsl.partition;
        spec_fb = spec.Appdsl.fb_set_size; spec_cm = spec.Appdsl.cm_capacity })
    (Appdsl.load_file path)

let find_workload name =
  match Workloads.Registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown workload %S (try: %s)" name
         (String.concat ", " (Workloads.Registry.names ())))

let resolve_source ~name ~file =
  match (name, file) with
  | _, Some path -> source_of_file path
  | Some name, None -> Result.map source_of_workload (find_workload name)
  | None, None -> Error "give a workload name or --file SPEC"

let config_of source ~fb ~cm =
  let fb_set_size =
    match (fb, source.spec_fb) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> source.default_fb
  in
  match (cm, source.spec_cm) with
  | Some cm_capacity, _ | None, Some cm_capacity ->
    Morphosys.Config.make ~fb_set_size ~cm_capacity ()
  | None, None -> Morphosys.Config.m1 ~fb_set_size

let clustering_of source ~partition ~auto ~config =
  let app = source.app in
  match (partition, source.spec_partition, auto) with
  | Some sizes, _, _ | None, Some sizes, _ ->
    Ok (Kernel_ir.Cluster.of_partition app sizes)
  | None, None, true -> (
    match Cds.Pipeline.auto_clustering config app with
    | Some (clustering, _) -> Ok clustering
    | None -> Error "kernel scheduler found no feasible clustering")
  | None, None, false -> Ok (source.default_clustering app)

(* -- arguments ---------------------------------------------------------- *)

let workload_arg =
  let doc = "Workload name (see $(b,msched list))." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let file_arg =
  let doc = "Load the application from a spec file instead (see lib/appdsl)." in
  Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"SPEC" ~doc)

let fb_arg =
  let doc = "Frame-buffer set size in words (default: the paper's size)." in
  Arg.(value & opt (some int) None & info [ "fb" ] ~docv:"WORDS" ~doc)

let cm_arg =
  let doc = "Context-memory capacity in words (default: 2048)." in
  Arg.(value & opt (some int) None & info [ "cm" ] ~docv:"WORDS" ~doc)

let partition_arg =
  let doc =
    "Cluster partition as comma-separated sizes, e.g. $(b,2,2,2) \
     (default: the paper's kernel schedule)."
  in
  Arg.(
    value
    & opt (some (list ~sep:',' int)) None
    & info [ "partition"; "p" ] ~docv:"SIZES" ~doc)

let auto_arg =
  let doc = "Let the kernel scheduler search for the best clustering." in
  Arg.(value & flag & info [ "auto" ] ~doc)

let scheduler_arg =
  let doc =
    "Scheduler to use, by registry name (see $(b,msched schedulers); \
     e.g. $(b,basic), $(b,ds), $(b,cds), $(b,cds-xset))."
  in
  Arg.(value & opt string "cds" & info [ "scheduler"; "s" ] ~docv:"NAME" ~doc)

(* Dispatch a scheduler by registry name on a fresh context; errors are the
   schedulers' own diagnostic strings, plus the registry's "unknown
   scheduler" one for a name nothing registered. *)
let schedule_via_registry ~scheduler config app clustering =
  Result.map_error Diag.to_string
    (Sched.Scheduler_registry.run scheduler
       (Sched.Sched_ctx.make app clustering)
       config)

let trace_arg =
  let doc = "Print the step-by-step timeline." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let gantt_arg =
  let doc = "Print an ASCII Gantt chart of RC array vs DMA channel." in
  Arg.(value & flag & info [ "gantt" ] ~doc)

let cross_set_arg =
  let doc = "Enable the future-work cross-set retention." in
  Arg.(value & flag & info [ "cross-set" ] ~doc)

let no_retention_arg =
  let doc = "Disable inter-cluster retention (ablated CDS)." in
  Arg.(value & flag & info [ "no-retention" ] ~doc)

(* -- commands ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Workloads.Registry.entry) ->
        Printf.printf "%-14s (FB %s)  %s\n" e.Workloads.Registry.name
          (Msutil.Pretty.kbytes e.Workloads.Registry.default_fb)
          e.Workloads.Registry.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled workloads")
    Term.(const run $ const ())

let run_cmd =
  let run name file fb cm partition auto scheduler trace gantt cross_set
      no_retention =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb ~cm in
      match clustering_of source ~partition ~auto ~config with
      | Error e -> `Error (false, e)
      | Ok clustering -> (
        let schedule =
          match scheduler with
          | "cds" ->
            (* the rich CDS path: honours --cross-set/--no-retention and
               prints the retention decision before the metrics *)
            Result.map
              (fun (r : Cds.Complete_data_scheduler.result) ->
                Format.printf "%a@." Cds.Retention.pp_decision
                  r.Cds.Complete_data_scheduler.retention;
                r.Cds.Complete_data_scheduler.schedule)
              (Result.map_error Diag.to_string
                 (Cds.Complete_data_scheduler.run_full ~cross_set
                    ~retention:(not no_retention)
                    (Sched.Sched_ctx.make app clustering)
                    config))
          | name -> schedule_via_registry ~scheduler:name config app clustering
        in
        match schedule with
        | Error e -> `Error (false, e)
        | Ok s ->
          Msim.Validate.check_exn s;
          Format.printf "%a@." Sched.Schedule.pp_summary s;
          Format.printf "%a@." Msim.Metrics.pp (Msim.Executor.run config s);
          if trace then print_string (Msim.Trace.render config s);
          if gantt then print_string (Msim.Trace.render_gantt config s);
          `Ok ()))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Schedule one workload and print metrics")
    Term.(
      ret
        (const run $ workload_arg $ file_arg $ fb_arg $ cm_arg $ partition_arg
       $ auto_arg $ scheduler_arg $ trace_arg $ gantt_arg $ cross_set_arg
       $ no_retention_arg))

let compare_cmd =
  let degrade_arg =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Graceful degradation: never abort — fall back down the \
             scheduler ladder (default cds, ds, basic) and print the \
             degradation chain with each tier's structured diagnostic.")
  in
  let ladder_arg =
    Arg.(
      value
      & opt (some (list ~sep:',' string)) None
      & info [ "ladder" ] ~docv:"NAMES"
          ~doc:
            "With $(b,--degrade): the ordered list of registry scheduler \
             names to fall back through, best first (see \
             $(b,msched schedulers)).")
  in
  let run name file fb cm partition auto degrade ladder =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb ~cm in
      match clustering_of source ~partition ~auto ~config with
      | Error e -> `Error (false, e)
      | Ok clustering ->
        let c = Cds.Pipeline.run ~degrade ?ladder config app clustering in
        let report label = function
          | Ok (s : Cds.Pipeline.scheduled) ->
            Format.printf "%-6s %a@." label Msim.Metrics.pp
              s.Cds.Pipeline.metrics
          | Error e -> Format.printf "%-6s infeasible: %s@." label e
        in
        Format.printf "clusters: %a@." Kernel_ir.Cluster.pp_clustering
          clustering;
        report "basic" c.Cds.Pipeline.basic;
        report "ds" c.Cds.Pipeline.ds;
        report "cds" (Result.map fst c.Cds.Pipeline.cds);
        (match (Cds.Pipeline.improvement c `Ds, Cds.Pipeline.improvement c `Cds) with
        | Some ds, Some cds ->
          Format.printf "improvement over basic: ds %.1f%%, cds %.1f%%@." ds cds
        | _ -> ());
        (match c.Cds.Pipeline.degradation with
        | Some d -> Format.printf "%a" Cds.Pipeline.pp_degradation d
        | None -> ());
        `Ok ())
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run Basic vs DS vs CDS on one workload")
    Term.(
      ret
        (const run $ workload_arg $ file_arg $ fb_arg $ cm_arg $ partition_arg
       $ auto_arg $ degrade_arg $ ladder_arg))

let alloc_cmd =
  let run name file fb cm partition =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb ~cm in
      match clustering_of source ~partition ~auto:false ~config with
      | Error e -> `Error (false, e)
      | Ok clustering -> (
        match Cds.Pipeline.allocation_report config app clustering with
        | Error e -> `Error (false, e)
        | Ok r ->
          let labels =
            List.map
              (fun (s : Cds.Allocation_algorithm.snapshot) ->
                s.Cds.Allocation_algorithm.caption)
              r.Cds.Allocation_algorithm.snapshots
          in
          let cells =
            List.map
              (fun (s : Cds.Allocation_algorithm.snapshot) ->
                s.Cds.Allocation_algorithm.cells)
              r.Cds.Allocation_algorithm.snapshots
          in
          print_string
            (Fb_alloc.Layout.render_snapshots ~cell_width:8 ~labels cells);
          Format.printf "splits: %d  failures: %d@."
            r.Cds.Allocation_algorithm.splits
            (List.length r.Cds.Allocation_algorithm.failures);
          `Ok ()))
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:"Print the Figure 4 allocation trace of the CDS schedule")
    Term.(
      ret (const run $ workload_arg $ file_arg $ fb_arg $ cm_arg $ partition_arg))

let dot_cmd =
  let clustered_arg =
    Arg.(value & flag & info [ "clustered" ] ~doc:"Group kernels by cluster.")
  in
  let fission_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fission" ] ~docv:"RF" ~doc:"Emit the loop-fission view at RF.")
  in
  let run name file clustered fission =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source ->
      let app = source.app in
      (match fission with
      | Some rf -> print_string (Kernel_ir.Dot.loop_fission_graph app ~rf)
      | None ->
        if clustered then
          print_string
            (Kernel_ir.Dot.clustered_graph app (source.default_clustering app))
        else print_string (Kernel_ir.Dot.kernel_graph app));
      `Ok ()
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the kernel graph as Graphviz DOT")
    Term.(ret (const run $ workload_arg $ file_arg $ clustered_arg $ fission_arg))

let fb_list_arg =
  Arg.(
    value
    & opt (list ~sep:',' int) [ 512; 1024; 2048; 4096; 8192 ]
    & info [ "fb-list" ] ~docv:"SIZES"
        ~doc:"Frame-buffer set sizes to sweep (comma-separated words).")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Print CSV instead of a table.")

let report_points ~csv points =
  if csv then print_string (Report.Dse.to_csv points)
  else begin
    Report.Dse.print_table points;
    (match Report.Dse.best points with
    | Some p ->
      Format.printf "best: %s at FB=%s (%s cycles)@." p.Report.Dse.scheduler
        (Msutil.Pretty.kbytes p.Report.Dse.fb_set_size)
        (match p.Report.Dse.total_cycles with
        | Some c -> string_of_int c
        | None -> "-")
    | None -> Format.printf "no feasible point@.");
    let frontier = Report.Dse.pareto points in
    Format.printf "pareto frontier (FB, cycles):";
    List.iter
      (fun (p : Report.Dse.point) ->
        Format.printf " (%s, %d)"
          (Msutil.Pretty.kbytes p.Report.Dse.fb_set_size)
          (Option.value ~default:0 p.Report.Dse.total_cycles))
      frontier;
    Format.printf "@."
  end

let sweep_cmd =
  let run name file partition fb_list csv =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb:None ~cm:None in
      match clustering_of source ~partition ~auto:false ~config with
      | Error e -> `Error (false, e)
      | Ok clustering ->
        report_points ~csv (Report.Dse.sweep ~fb_list app clustering);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Design-space exploration: sweep the FB size for one workload")
    Term.(
      ret
        (const run $ workload_arg $ file_arg $ partition_arg $ fb_list_arg
       $ csv_arg))

let jobs_arg =
  let doc =
    "Worker domains for the engine pool (0 = one per hardware thread)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resolve_jobs jobs =
  if jobs <= 0 then Engine.Pool.recommended_jobs () else jobs

(* -- deterministic fault injection (Engine.Faults) ---------------------- *)

let fault_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "fault-rate" ] ~docv:"R"
        ~doc:
          "Arm deterministic fault injection with per-visit firing \
           probability R in [0,1] (0 disables). Injected faults must \
           surface as structured diagnostics, never as crashes.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"S"
        ~doc:"Seed of the fault plan; firings are reproducible from it.")

let fault_sites_arg =
  Arg.(
    value & opt (list ~sep:',' string) []
    & info [ "fault-sites" ] ~docv:"SITES"
        ~doc:
          "Restrict injection to these sites (comma-separated out of \
           $(b,pool), $(b,cache), $(b,sched)); default: all sites.")

let fault_retries_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-retries" ] ~docv:"N"
        ~doc:
          "Retry a pool task felled by an injected fault up to N times \
           (injected faults are transient by construction).")

let arm_faults ~rate ~seed ~sites =
  if rate > 0. then begin
    Engine.Faults.arm (Engine.Faults.plan ~sites ~rate ~seed ());
    true
  end
  else false

let report_faults armed =
  if armed then
    Format.eprintf "injected faults fired: %d@."
      (Engine.Faults.injected_count ())

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print per-scheduler timing and cache statistics to stderr.")

let dse_cmd =
  let cm_list_arg =
    Arg.(
      value
      & opt (list ~sep:',' int) [ 2048 ]
      & info [ "cm-list" ] ~docv:"SIZES"
          ~doc:"Context-memory capacities to sweep (comma-separated words).")
  in
  let setup_list_arg =
    Arg.(
      value
      & opt (list ~sep:',' int) [ 0 ]
      & info [ "setup-list" ] ~docv:"CYCLES"
          ~doc:"DMA setup costs to sweep (comma-separated cycles).")
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Memoise design points by content digest: points repeated \
             across sweeps (see $(b,--repeat)) are scheduled once.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Run the sweep N times (through the same cache when \
             $(b,--cache) is set) — demonstrates memoisation and \
             steadies timings.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"PATH"
          ~doc:
            "Persist every completed design point to a checksummed on-disk \
             store at PATH (journal at PATH.journal) as it finishes — not \
             at the end — so an interrupted sweep can be resumed with \
             $(b,--resume). Without $(b,--resume), an existing non-empty \
             PATH is refused.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "With $(b,--store): reopen an existing store and recompute only \
             the design points it does not already hold; the sweep identity \
             (workload, clustering, axes, scheduler set) must match the one \
             recorded in the journal. The resulting point list is \
             byte-identical to an uninterrupted run.")
  in
  let run name file partition fb_list cm_list setup_list jobs use_cache repeat
      stats csv store_path resume fault_rate fault_seed fault_sites
      fault_retries =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb:None ~cm:None in
      match clustering_of source ~partition ~auto:false ~config with
      | Error e -> `Error (false, e)
      | Ok clustering -> (
        let jobs = resolve_jobs jobs in
        let durable =
          match store_path with
          | None -> Ok None
          | Some path ->
            Result.map Option.some
              (Report.Dse.Durable.open_ ~resume ~path ~cm_list ~setup_list
                 ~fb_list app clustering)
        in
        match durable with
        | Error d -> `Error (false, Diag.render d)
        | Ok durable ->
          (* On Ctrl-C / TERM, flush the store before dying: every
             journalled point survives and --resume picks up from there.
             (checkpoint is lock-free, so this is safe even if a worker
             domain is mid-append.) *)
          (match durable with
          | Some d ->
            let flush_and_exit code =
              Sys.Signal_handle
                (fun _ ->
                  Report.Dse.Durable.checkpoint d;
                  exit code)
            in
            Sys.set_signal Sys.sigint (flush_and_exit 130);
            Sys.set_signal Sys.sigterm (flush_and_exit 143)
          | None -> ());
          let armed =
            arm_faults ~rate:fault_rate ~seed:fault_seed ~sites:fault_sites
          in
          Fun.protect ~finally:Engine.Faults.disarm @@ fun () ->
          let cache =
            if use_cache then Some (Engine.Cache.create ()) else None
          in
          let st = if stats then Some (Engine.Stats.create ()) else None in
          let sweep () =
            Report.Dse.sweep ~jobs ~retries:fault_retries ?cache ?stats:st
              ?store:durable ~cm_list ~setup_list ~fb_list app clustering
          in
          let points = ref (sweep ()) in
          for _ = 2 to max 1 repeat do
            points := sweep ()
          done;
          (match durable with
          | Some d ->
            Report.Dse.Durable.checkpoint d;
            List.iter
              (fun w -> Format.eprintf "%s@." (Diag.render w))
              (Report.Dse.Durable.warnings d);
            Report.Dse.Durable.close d
          | None -> ());
          report_points ~csv !points;
          (match st with
          | Some st -> Format.eprintf "%a@." Engine.Stats.pp st
          | None -> ());
          report_faults armed;
          (* A sweep in which nothing is feasible produced no sizing
             information: that is a failed exploration, not a success. *)
          (match Report.Dse.all_infeasible_diag !points with
          | Some d -> `Error (false, Diag.render d)
          | None -> `Ok ())))
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Parallel cached design-space exploration: the full (FB, CM, DMA \
          setup, scheduler) cross product on an engine worker pool, \
          optionally persisted ($(b,--store)) and resumable ($(b,--resume))")
    Term.(
      ret
        (const run $ workload_arg $ file_arg $ partition_arg $ fb_list_arg
       $ cm_list_arg $ setup_list_arg $ jobs_arg $ cache_arg $ repeat_arg
       $ stats_arg $ csv_arg $ store_arg $ resume_arg $ fault_rate_arg
       $ fault_seed_arg $ fault_sites_arg $ fault_retries_arg))

(* -- store maintenance (Engine.Store / Engine.Journal) ------------------ *)

let store_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PATH"
        ~doc:"Result-store file (as passed to $(b,msched dse --store)).")

let store_info_cmd =
  let run path =
    match Engine.Store.verify path with
    | Error d -> `Error (false, Diag.render d)
    | Ok r ->
      Printf.printf "store: %s\n" path;
      Printf.printf "  format:           %d, schema %d\n"
        Engine.Store.format_version r.Engine.Store.v_schema;
      Printf.printf "  physical records: %d\n" r.Engine.Store.v_physical_records;
      Printf.printf "  distinct keys:    %d\n" r.Engine.Store.v_distinct_keys;
      Printf.printf "  bytes:            %d (%d intact)\n"
        r.Engine.Store.v_file_bytes r.Engine.Store.v_intact_bytes;
      (match r.Engine.Store.v_corruption with
      | Some d -> Printf.printf "  corruption:       %s\n" (Diag.to_string d)
      | None -> Printf.printf "  corruption:       none\n");
      let jpath = path ^ ".journal" in
      if Sys.file_exists jpath then begin
        match Engine.Journal.info jpath with
        | Ok i ->
          Printf.printf "journal: %s\n" jpath;
          Printf.printf "  sweep identity:   %s…\n"
            i.Engine.Journal.identity_prefix;
          Printf.printf "  completed points: %d\n" i.Engine.Journal.marks;
          (match i.Engine.Journal.corruption with
          | Some d ->
            Printf.printf "  corruption:       %s\n" (Diag.to_string d)
          | None -> ())
        | Error d ->
          Printf.printf "journal: %s\n  unreadable: %s\n" jpath
            (Diag.to_string d)
      end;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Summarise a result store and its sweep journal")
    Term.(ret (const run $ store_path_arg))

let store_verify_cmd =
  let run path =
    match Engine.Store.verify path with
    | Error d -> `Error (false, Diag.render d)
    | Ok r -> (
      match r.Engine.Store.v_corruption with
      | None ->
        Printf.printf "%s: %d records, %d keys, %d bytes — clean\n" path
          r.Engine.Store.v_physical_records r.Engine.Store.v_distinct_keys
          r.Engine.Store.v_file_bytes;
        `Ok ()
      | Some d -> `Error (false, Diag.render d))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check every record's framing and checksum; exit nonzero on any \
          corruption")
    Term.(ret (const run $ store_path_arg))

let store_gc_cmd =
  let run path =
    match Engine.Store.gc path with
    | Error d -> `Error (false, Diag.render d)
    | Ok g ->
      Printf.printf "%s: kept %d records, dropped %d; %d -> %d bytes\n" path
        g.Engine.Store.gc_kept g.Engine.Store.gc_dropped_records
        g.Engine.Store.gc_bytes_before g.Engine.Store.gc_bytes_after;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Compact a store to one record per key (atomic: a crash mid-gc \
          leaves the original untouched)")
    Term.(ret (const run $ store_path_arg))

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect and maintain the on-disk DSE result stores written by \
          $(b,msched dse --store)")
    [ store_info_cmd; store_verify_cmd; store_gc_cmd ]

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Random seed; a run is reproducible by its seed alone.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"K" ~doc:"Number of random applications.")
  in
  let fb_arg =
    Arg.(
      value & opt int 4096
      & info [ "fb" ] ~docv:"WORDS"
          ~doc:"Frame-buffer set size the random applications are \
                scheduled against.")
  in
  let hostile_arg =
    Arg.(
      value & flag
      & info [ "hostile" ]
          ~doc:
            "Hostile mode: mutate the random applications into malformed \
             ones and assert every failure is a structured diagnostic — \
             any uncaught exception fails the run.")
  in
  let run seed count fb jobs stats hostile fault_rate fault_seed fault_sites
      fault_retries =
    if count < 0 then `Error (false, "--count must be non-negative")
    else if fb <= 0 then `Error (false, "--fb must be positive")
    else begin
    let jobs = resolve_jobs jobs in
    let armed =
      arm_faults ~rate:fault_rate ~seed:fault_seed ~sites:fault_sites
    in
    Fun.protect ~finally:Engine.Faults.disarm @@ fun () ->
    if hostile then begin
      let report =
        Report.Fuzz.run_hostile ~jobs ~retries:fault_retries ~fb_set_size:fb
          ~seed ~count ()
      in
      Format.printf "%a@." Report.Fuzz.pp_hostile report;
      report_faults armed;
      if Report.Fuzz.hostile_ok report then `Ok ()
      else
        `Error
          (false, "hostile fuzzing found uncaught exceptions (see above)")
    end
    else begin
      let st = if stats then Some (Engine.Stats.create ()) else None in
      let report =
        Report.Fuzz.run ~jobs ~retries:fault_retries ~fb_set_size:fb
          ?stats:st ~seed ~count ()
      in
      Format.printf "%a@." Report.Fuzz.pp report;
      (match st with
      | Some st -> Format.eprintf "%a@." Engine.Stats.pp st
      | None -> ());
      report_faults armed;
      if Report.Fuzz.ok report then `Ok ()
      else `Error (false, "fuzzing found scheduler bugs (see report above)")
    end
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: schedule random applications with Basic, \
          DS and CDS on the worker pool and referee every schedule with \
          the semantic validator; $(b,--hostile) feeds the stack mutated \
          invalid applications instead")
    Term.(
      ret
        (const run $ seed_arg $ count_arg $ fb_arg $ jobs_arg $ stats_arg
       $ hostile_arg $ fault_rate_arg $ fault_seed_arg $ fault_sites_arg
       $ fault_retries_arg))

let table1_cmd =
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Print machine-readable CSV instead of the table.")
  in
  let run csv =
    if csv then
      print_string (Report.Table_report.to_csv (Report.Table_report.run_rows ()))
    else ignore (Report.Table_report.run ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce the paper's Table 1 and Figure 6")
    Term.(const run $ csv_arg)

let figures_cmd =
  let run () = Report.Figure_report.run () in
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Reproduce Figures 3 and 5 and the allocator-quality table")
    Term.(const run $ const ())

let asm_cmd =
  let looped_arg =
    Arg.(
      value & flag
      & info [ "looped" ]
          ~doc:"Reroll uniform rounds into a hardware loop (compact code).")
  in
  let run name file fb cm partition scheduler looped =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb ~cm in
      match clustering_of source ~partition ~auto:false ~config with
      | Error e -> `Error (false, e)
      | Ok clustering -> (
        match schedule_via_registry ~scheduler config app clustering with
        | Error e -> `Error (false, e)
        | Ok s -> (
          let program =
            if looped then Diag.guard (fun () -> Codegen.Emit.program_looped s)
            else Codegen.Emit.program_result s
          in
          match program with
          | Error d -> `Error (false, Diag.render d)
          | Ok program -> (
            print_string (Codegen.Asm.to_string program);
            match Codegen.Interp.run_result config program with
            | Ok r ->
              Format.eprintf "; interpreted: %a@." Codegen.Interp.pp_result r;
              `Ok ()
            | Error d -> `Error (false, Diag.render d)))))
  in
  Cmd.v
    (Cmd.info "asm"
       ~doc:"Emit the TinyRISC control program for a schedule")
    Term.(
      ret
        (const run $ workload_arg $ file_arg $ fb_arg $ cm_arg $ partition_arg
       $ scheduler_arg $ looped_arg))

let vcd_cmd =
  let run name file fb cm partition scheduler =
    match resolve_source ~name ~file with
    | Error e -> `Error (false, e)
    | Ok source -> (
      let app = source.app in
      let config = config_of source ~fb ~cm in
      match clustering_of source ~partition ~auto:false ~config with
      | Error e -> `Error (false, e)
      | Ok clustering -> (
        match schedule_via_registry ~scheduler config app clustering with
        | Error e -> `Error (false, e)
        | Ok s ->
          print_string (Msim.Vcd.of_schedule config s);
          `Ok ()))
  in
  Cmd.v
    (Cmd.info "vcd"
       ~doc:"Dump the schedule's activity waveform as a Value Change Dump")
    Term.(
      ret
        (const run $ workload_arg $ file_arg $ fb_arg $ cm_arg $ partition_arg
       $ scheduler_arg))

let schedulers_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-10s %s\n"
          (Sched.Scheduler_intf.name s)
          (Sched.Scheduler_intf.describe s))
      (Sched.Scheduler_registry.all ())
  in
  Cmd.v
    (Cmd.info "schedulers"
       ~doc:"List the registered schedulers (usable with --scheduler)")
    Term.(const run $ const ())

let kernels_cmd =
  let run () =
    let config = Morphosys.Config.m1 ~fb_set_size:1024 in
    List.iter
      (fun (e : Rcsim.Kernel_library.entry) ->
        let status =
          match e.Rcsim.Kernel_library.demo config with
          | Some (got, expected) ->
            if got = expected then "self-check OK" else "SELF-CHECK FAILED"
          | None -> "no demo on this array size"
        in
        Printf.printf "%-12s ctx=%-3d ops/iter=%-4d %-18s %s
"
          e.Rcsim.Kernel_library.name e.Rcsim.Kernel_library.context_words
          e.Rcsim.Kernel_library.ops_per_iteration status
          e.Rcsim.Kernel_library.description)
      Rcsim.Kernel_library.all
  in
  Cmd.v
    (Cmd.info "kernels"
       ~doc:"List the kernel library and run each kernel's array self-check")
    Term.(const run $ const ())

(* msched --verbose / -v prints scheduler decision logs to stderr; the flag
   is stripped before cmdliner parses the rest *)
let argv =
  let verbose = Array.exists (fun a -> a = "--verbose" || a = "-v") Sys.argv in
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Array.of_list
    (List.filter
       (fun a -> a <> "--verbose" && a <> "-v")
       (Array.to_list Sys.argv))

let main =
  let doc = "Complete Data Scheduler for multi-context reconfigurable architectures" in
  Cmd.group
    (Cmd.info "msched" ~version:"1.0.0" ~doc)
    [
      list_cmd; run_cmd; compare_cmd; alloc_cmd; dot_cmd; asm_cmd; vcd_cmd;
      kernels_cmd; schedulers_cmd; sweep_cmd; dse_cmd; store_cmd; fuzz_cmd;
      table1_cmd; figures_cmd;
    ]

let () = exit (Cmd.eval ~argv main)
