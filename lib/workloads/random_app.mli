(** QCheck generators for random — but always well-formed — applications and
    clusterings, used by the property-based tests (scheduler invariants,
    DS(C) formula agreement, allocator soundness). *)

val gen_app :
  ?min_kernels:int ->
  ?max_kernels:int ->
  ?max_data:int ->
  ?max_size:int ->
  unit ->
  Kernel_ir.Application.t QCheck.Gen.t
(** Random kernel chain with random external inputs, intermediate chains,
    shared data and final results. Every application validates; every
    kernel consumes at least one object and every object has a legal
    producer/consumer relation. *)

val large :
  kernels:int -> data:int -> seed:int -> Kernel_ir.Application.t
(** Deterministic large application for scaling benchmarks: the same
    [(kernels, data, seed)] triple always builds the same application.
    [data] counts extra shared/result objects beyond the per-kernel
    private input and final, so the app holds [2 * kernels + data] data
    objects. Shared objects span windows of nearby kernels.
    @raise Invalid_argument if [kernels < 1] or [data < 0]. *)

val pairs_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
(** Kernels grouped two by two in execution order (trailing singleton when
    the count is odd) — a deterministic clustering for benchmarks. *)

val gen_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering QCheck.Gen.t
(** A random partition of the application's kernel sequence. *)

val gen_app_with_clustering :
  ?min_kernels:int ->
  ?max_kernels:int ->
  ?max_data:int ->
  ?max_size:int ->
  unit ->
  (Kernel_ir.Application.t * Kernel_ir.Cluster.clustering) QCheck.Gen.t

val arb_app_with_clustering :
  (Kernel_ir.Application.t * Kernel_ir.Cluster.clustering) QCheck.arbitrary
(** With a printer, default parameters. *)
