module Gen = QCheck.Gen
module B = Kernel_ir.Builder
module Cluster = Kernel_ir.Cluster

let kernel_name i = Printf.sprintf "k%d" i

(* A random non-empty sorted subset of [lo..hi]. *)
let gen_consumers ~lo ~hi =
  let open Gen in
  if lo > hi then pure []
  else
    let* picks =
      list_size (int_range 1 (min 3 (hi - lo + 1))) (int_range lo hi)
    in
    pure (List.sort_uniq compare picks)

let gen_app ?(min_kernels = 2) ?(max_kernels = 6) ?(max_data = 8)
    ?(max_size = 256) () =
  let open Gen in
  let* n = int_range min_kernels max_kernels in
  let* iterations = int_range 2 12 in
  let* kernel_specs =
    list_repeat n
      (pair (int_range 32 256) (* contexts *) (int_range 100 600)
      (* cycles *))
  in
  let base =
    List.fold_left
      (fun (b, i) (contexts, cycles) ->
        (B.kernel (kernel_name i) ~contexts ~cycles b, i + 1))
      (B.create "random" ~iterations, 0)
      kernel_specs
    |> fst
  in
  (* every kernel gets a private input so no kernel is data-free *)
  let* private_sizes = list_repeat n (int_range 8 max_size) in
  let base =
    List.fold_left
      (fun (b, i) size ->
        ( B.input (Printf.sprintf "in%d" i) ~size
            ~consumers:[ kernel_name i ] b,
          i + 1 ))
      (base, 0) private_sizes
    |> fst
  in
  (* extra random objects: shared inputs, intermediate chains, finals *)
  let* extras = int_range 0 max_data in
  let gen_extra i =
    let* size = int_range 8 max_size in
    let* kind = int_range 0 2 in
    match kind with
    | 0 ->
      (* shared external input, sometimes an iteration-invariant table *)
      let* consumers = gen_consumers ~lo:0 ~hi:(n - 1) in
      let* invariant = QCheck.Gen.bool in
      pure
        (B.input ~invariant
           (Printf.sprintf "sh%d" i)
           ~size
           ~consumers:(List.map kernel_name consumers))
    | 1 when n >= 2 ->
      (* result of some kernel, consumed later, possibly also final *)
      let* producer = int_range 0 (n - 2) in
      let* consumers = gen_consumers ~lo:(producer + 1) ~hi:(n - 1) in
      let* final = bool in
      pure
        (B.result
           (Printf.sprintf "r%d" i)
           ~final ~size
           ~producer:(kernel_name producer)
           ~consumers:(List.map kernel_name consumers))
    | _ ->
      (* pure final result *)
      let* producer = int_range 0 (n - 1) in
      pure
        (B.final (Printf.sprintf "f%d" i) ~size ~producer:(kernel_name producer))
  in
  let* extra_fns = List.init extras gen_extra |> flatten_l in
  (* every kernel must also produce something for realism: add a final per
     kernel lacking outputs, deterministic and cheap *)
  let b = List.fold_left (fun b f -> f b) base extra_fns in
  let b =
    List.fold_left
      (fun b i ->
        B.final (Printf.sprintf "out%d" i) ~size:16
          ~producer:(kernel_name i) b)
      b
      (List.init n (fun i -> i))
  in
  pure (B.build b)

(* Deterministic large application for the scaling benchmarks: [seed]
   (together with the size parameters) fully determines the result — no
   QCheck state involved. [data] counts the extra shared/result objects on
   top of the per-kernel private input and final, so the total object count
   is [2 * kernels + data]. Shared objects span small windows of nearby
   kernels, giving the retention pass realistic local candidates. *)
let large ~kernels ~data ~seed =
  if kernels < 1 then invalid_arg "Random_app.large: kernels must be >= 1";
  if data < 0 then invalid_arg "Random_app.large: data must be >= 0";
  let st = Random.State.make [| 0x5eed; seed; kernels; data |] in
  let int lo hi = lo + Random.State.int st (hi - lo + 1) in
  let b =
    ref
      (B.create
         (Printf.sprintf "large-%dk-%dd-s%d" kernels data seed)
         ~iterations:16)
  in
  for i = 0 to kernels - 1 do
    b := B.kernel (kernel_name i) ~contexts:(int 16 48) ~cycles:(int 100 600) !b
  done;
  for i = 0 to kernels - 1 do
    b :=
      B.input (Printf.sprintf "in%d" i) ~size:(int 8 64)
        ~consumers:[ kernel_name i ]
        !b
  done;
  for i = 0 to data - 1 do
    let size = int 8 64 in
    let kind = int 0 3 in
    if kind <= 1 && kernels >= 2 then begin
      (* shared input consumed by a window of nearby kernels *)
      let first = int 0 (kernels - 2) in
      let width = min (kernels - 1 - first) (int 1 4) in
      let consumers =
        List.init (width + 1) (fun j -> kernel_name (first + j))
      in
      let invariant = int 0 3 = 0 in
      b := B.input ~invariant (Printf.sprintf "sh%d" i) ~size ~consumers !b
    end
    else if kind = 2 && kernels >= 2 then begin
      (* result shared with a window of later kernels *)
      let producer = int 0 (kernels - 2) in
      let width = min (kernels - 1 - producer) (int 1 4) in
      let consumers =
        List.init width (fun j -> kernel_name (producer + 1 + j))
      in
      b :=
        B.result (Printf.sprintf "r%d" i) ~final:(int 0 1 = 0) ~size
          ~producer:(kernel_name producer) ~consumers !b
    end
    else
      b :=
        B.final (Printf.sprintf "f%d" i) ~size
          ~producer:(kernel_name (int 0 (kernels - 1)))
          !b
  done;
  for i = 0 to kernels - 1 do
    b := B.final (Printf.sprintf "out%d" i) ~size:16 ~producer:(kernel_name i) !b
  done;
  B.build !b

(* Kernels clustered two by two in execution order (trailing singleton when
   odd) — the deterministic clustering the scaling bench schedules. *)
let pairs_clustering app =
  let n = Kernel_ir.Application.n_kernels app in
  let rec sizes r =
    if r = 0 then [] else if r = 1 then [ 1 ] else 2 :: sizes (r - 2)
  in
  Cluster.of_partition app (sizes n)

let gen_clustering app =
  let open Gen in
  let n = Kernel_ir.Application.n_kernels app in
  let rec gen_sizes remaining =
    if remaining = 0 then pure []
    else
      let* first = int_range 1 remaining in
      let* rest = gen_sizes (remaining - first) in
      pure (first :: rest)
  in
  let* sizes = gen_sizes n in
  pure (Cluster.of_partition app sizes)

let gen_app_with_clustering ?min_kernels ?max_kernels ?max_data ?max_size () =
  let open Gen in
  let* app = gen_app ?min_kernels ?max_kernels ?max_data ?max_size () in
  let* clustering = gen_clustering app in
  pure (app, clustering)

let arb_app_with_clustering =
  QCheck.make
    ~print:(fun (app, clustering) ->
      Format.asprintf "%a@\n%a" Kernel_ir.Application.pp app
        Cluster.pp_clustering clustering)
    (gen_app_with_clustering ())
