type point = {
  fb_set_size : int;
  cm_capacity : int;
  dma_setup_cycles : int;
  scheduler : string;
  feasible : bool;
  rf : int option;
  total_cycles : int option;
  data_words : int option;
  context_words : int option;
  diag : Diag.t option;
}

let infeasible ~fb ~cm ~setup ~scheduler diag =
  {
    fb_set_size = fb;
    cm_capacity = cm;
    dma_setup_cycles = setup;
    scheduler;
    feasible = false;
    rf = None;
    total_cycles = None;
    data_words = None;
    context_words = None;
    diag = Some diag;
  }

let point_of_schedule config ~fb ~cm ~setup ~scheduler = function
  | Error d -> infeasible ~fb ~cm ~setup ~scheduler d
  | Ok (s : Sched.Schedule.t) ->
    let m = Msim.Executor.run config s in
    {
      fb_set_size = fb;
      cm_capacity = cm;
      dma_setup_cycles = setup;
      scheduler;
      feasible = true;
      rf = Some s.Sched.Schedule.rf;
      total_cycles = Some m.Msim.Metrics.total_cycles;
      data_words = Some (Msim.Metrics.data_words m);
      context_words = Some m.Msim.Metrics.context_words_loaded;
      diag = None;
    }

(* The default sweep axis: the paper's three tiers. Other registered
   schedulers (e.g. "cds-xset") can be swept by passing an explicit
   [~scheduler] to {!evaluate}. *)
let schedulers = [ "basic"; "ds"; "cds" ]

(* The point plus the schedule that produced it: what the durable store
   persists, so a rehydrated feasible point can be re-validated against
   the semantic checker before it is trusted. *)
let evaluate_full ?ctx ~fb ~cm ~setup ~scheduler app clustering =
  let config =
    Morphosys.Config.make ~fb_set_size:fb ~cm_capacity:cm
      ~dma_setup_cycles:setup ()
  in
  let ctx =
    match ctx with
    | Some c -> c
    | None -> Sched.Sched_ctx.make app clustering
  in
  let r = Sched.Scheduler_registry.run scheduler ctx config in
  (point_of_schedule config ~fb ~cm ~setup ~scheduler r, Result.to_option r)

let evaluate ?ctx ~fb ~cm ~setup ~scheduler app clustering =
  fst (evaluate_full ?ctx ~fb ~cm ~setup ~scheduler app clustering)

let point_key ~app_digest (fb, cm, setup, scheduler) =
  Engine.Key.combine
    [ app_digest; string_of_int fb; string_of_int cm; string_of_int setup;
      scheduler ]

(* An injected cache fault degrades the lookup to a miss: the point is
   recomputed instead of the sweep dying. *)
let find_safe cache key =
  try Engine.Cache.find cache key with Engine.Faults.Injected _ -> None

(* A crashed (or timed-out) design-point task is isolated into an
   infeasible point carrying its diagnostic; the rest of the sweep is
   unaffected. *)
let settle ~combo = function
  | Ok p -> p
  | Error d ->
    let fb, cm, setup, scheduler = combo in
    infeasible ~fb ~cm ~setup ~scheduler d

(* -- durable persistence ------------------------------------------------- *)

(* What one store record deserialises to. Bump [Durable.schema_version]
   whenever this type (or anything reachable from it) changes shape. *)
type stored = {
  stored_point : point;
  stored_schedule : Sched.Schedule.t option;  (* [Some] iff feasible *)
}

module Durable = struct
  let schema_version = 1

  type t = {
    path : string;
    identity : string;
    store : Engine.Store.t;
    journal : Engine.Journal.t;
    cache : point Engine.Cache.t;  (* default cache when the caller has none *)
    mutex : Mutex.t;
    trusted : (string, point) Hashtbl.t;
        (* journaled + integrity-checked + re-validated points, grown as
           the live sweep persists new ones *)
    mutable run_warnings : Diag.t list;  (* rehydration/persist diags, rev *)
    mutable quarantined : int;
    mutable stats_noted : bool;
  }

  let with_lock t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let path t = t.path
  let identity t = t.identity
  let completed t = Engine.Journal.marked t.journal
  let cache t = t.cache

  let warnings t =
    Engine.Store.warnings t.store
    @ Engine.Journal.warnings t.journal
    @ List.rev t.run_warnings

  (* The sweep identity: everything the on-disk state is a function of.
     Axis values and scheduler names are tagged so reshuffling words
     between axes cannot collide. *)
  let identity_of ?(cm_list = [ 2048 ]) ?(setup_list = [ 0 ]) ~fb_list app
      clustering =
    Result.map
      (fun app_digest ->
        Engine.Key.combine
          ((app_digest :: Printf.sprintf "schema:%d" schema_version
            :: Printf.sprintf "format:%d" Engine.Store.format_version
            :: List.map (Printf.sprintf "fb:%d") fb_list)
          @ List.map (Printf.sprintf "cm:%d") cm_list
          @ List.map (Printf.sprintf "setup:%d") setup_list
          @ List.map (Printf.sprintf "sched:%s") schedulers))
      (Engine.Key.digest_value_result (app, clustering))

  let quarantine t d =
    t.run_warnings <- d :: t.run_warnings;
    t.quarantined <- t.quarantined + 1

  let short key = if String.length key <= 12 then key else String.sub key 0 12

  (* Replay the store: only records that are journaled complete, that
     deserialise, and whose feasible schedules still satisfy the semantic
     validator are trusted; everything else is quarantined (superseded on
     disk once the point is recomputed and re-persisted). *)
  let rehydrate t =
    Engine.Store.iter
      (fun ~key ~payload ->
        if Engine.Journal.is_marked t.journal key then
          match (Marshal.from_string payload 0 : stored) with
          | exception _ ->
            quarantine t
              (Diag.v ~severity:Diag.Warning Diag.Store_corrupt
                 "store %s: record %s… does not deserialise (schema drift?); \
                  quarantined — the point will be recomputed"
                 t.path (short key))
          | { stored_point = p; stored_schedule } -> (
            if not p.feasible then Hashtbl.replace t.trusted key p
            else
              match stored_schedule with
              | None ->
                quarantine t
                  (Diag.v ~severity:Diag.Warning Diag.Store_corrupt
                     "store %s: feasible point %s… has no schedule to \
                      re-validate; quarantined — the point will be recomputed"
                     t.path (short key))
              | Some s -> (
                match Msim.Validate.check_result s with
                | Ok () -> Hashtbl.replace t.trusted key p
                | Error d ->
                  quarantine t
                    (Diag.v ~severity:Diag.Warning Diag.Store_corrupt
                       "store %s: rehydrated schedule %s… failed semantic \
                        validation (%s); quarantined — the point will be \
                        recomputed"
                       t.path (short key) (Diag.to_string d)))))
      t.store

  let open_ ?(resume = false) ~path ?cm_list ?setup_list ~fb_list app
      clustering =
    match identity_of ?cm_list ?setup_list ~fb_list app clustering with
    | Error d -> Error d
    | Ok identity ->
      if
        (not resume) && Sys.file_exists path
        && (Unix.stat path).Unix.st_size > 0
      then
        Error
          (Diag.v Diag.Sweep_mismatch
             "store %s already exists; pass --resume to continue that sweep, \
              or point --store at a fresh path"
             path)
      else (
        match Engine.Store.open_ ~schema:schema_version path with
        | Error d -> Error d
        | Ok store -> (
          match
            Engine.Journal.open_ ~identity (path ^ ".journal")
          with
          | Error d ->
            Engine.Store.close store;
            Error d
          | Ok journal ->
            let t =
              {
                path;
                identity;
                store;
                journal;
                cache = Engine.Cache.create ();
                mutex = Mutex.create ();
                trusted = Hashtbl.create 256;
                run_warnings = [];
                quarantined = 0;
                stats_noted = false;
              }
            in
            rehydrate t;
            Ok t))

  (* Called from inside pool tasks (any worker domain): a persistence
     failure degrades durability, never the sweep — the point is still
     returned in memory, with a warning recorded. *)
  let persist t ~key stored_v =
    match Marshal.to_string stored_v [] with
    | exception Invalid_argument msg ->
      with_lock t (fun () ->
          quarantine t
            (Diag.v ~severity:Diag.Warning Diag.Store_corrupt
               "point %s… is not serialisable (%s); continuing without \
                persisting it"
               (short key) msg))
    | payload -> (
      match
        Engine.Store.append t.store ~key ~payload;
        Engine.Journal.mark t.journal key
      with
      | () ->
        with_lock t (fun () ->
            Hashtbl.replace t.trusted key stored_v.stored_point)
      | exception e ->
        with_lock t (fun () ->
            quarantine t
              (Diag.v ~severity:Diag.Warning Diag.Store_corrupt
                 "failed to persist point %s… (%s); continuing without it"
                 (short key) (Printexc.to_string e))))

  (* Refill a (possibly just-cleared) memo cache from the trusted on-disk
     points; returns how many entries the replay actually added. *)
  let replay t cache =
    let snapshot =
      with_lock t (fun () ->
          Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.trusted [])
    in
    let before = Engine.Cache.length cache in
    List.iter (fun (k, p) -> Engine.Cache.add cache k p) snapshot;
    Engine.Cache.length cache - before

  let note_stats t st ~replayed =
    let quarantined =
      if t.stats_noted then 0
      else begin
        t.stats_noted <- true;
        List.length
          (List.filter
             (fun d -> d.Diag.code = Diag.Store_corrupt)
             (warnings t))
      end
    in
    Engine.Stats.note_store st ~replayed ~quarantined

  let checkpoint t =
    Engine.Store.checkpoint t.store;
    Engine.Journal.checkpoint t.journal

  let close t =
    Engine.Store.close t.store;
    Engine.Journal.close t.journal
end

let sweep ?(jobs = 1) ?deadline_s ?retries ?cache ?stats ?store
    ?(cm_list = [ 2048 ]) ?(setup_list = [ 0 ]) ~fb_list app clustering =
  let combos =
    List.concat_map
      (fun fb ->
        List.concat_map
          (fun cm ->
            List.concat_map
              (fun setup ->
                List.map (fun scheduler -> (fb, cm, setup, scheduler))
                  schedulers)
              setup_list)
          cm_list)
      fb_list
  in
  (* One immutable analysis context shared by every design point — and,
     under [~jobs > 1], by every worker domain. *)
  let ctx = Sched.Sched_ctx.make app clustering in
  (* [persist] (per-combo) makes the point durable the moment its task
     completes on whatever worker domain ran it. *)
  let eval ?persist (fb, cm, setup, scheduler) =
    let work () =
      evaluate_full ~ctx ~fb ~cm ~setup ~scheduler app clustering
    in
    let p, schedule =
      match stats with
      | None -> work ()
      | Some st -> Engine.Stats.time st ~label:scheduler work
    in
    (match persist with Some f -> f p schedule | None -> ());
    p
  in
  (* A store implies a cache: the replayed points land in the caller's
     cache, or in the store's own when the caller brought none. *)
  let cache =
    match (cache, store) with
    | (Some _ as c), _ -> c
    | None, Some d -> Some (Durable.cache d)
    | None, None -> None
  in
  (match store with
  | None -> ()
  | Some d ->
    (* resuming a store that belongs to a different sweep would silently
       mix results; the CLI can never get here (Durable.open_ already
       refused), so a mismatch is a programmer error *)
    (match Durable.identity_of ~cm_list ~setup_list ~fb_list app clustering with
    | Ok id when String.equal id (Durable.identity d) -> ()
    | Ok _ | Error _ ->
      invalid_arg
        "Report.Dse.sweep: ~store was opened for a different sweep \
         (application, clustering or axes mismatch)");
    let replayed = Durable.replay d (Option.get cache) in
    match stats with
    | Some st -> Durable.note_stats d st ~replayed
    | None -> ());
  match cache with
  | None ->
    let slots =
      Engine.Pool.run_results ~jobs ?deadline_s ?retries
        (Array.of_list (List.map (fun c () -> eval c) combos))
    in
    List.mapi (fun i combo -> settle ~combo slots.(i)) combos
  | Some cache ->
    (* One design point = one key: the digest covers the application, the
       clustering and every machine parameter, so a hit is exact. Misses
       are deduped and scheduled once each; results land back in combo
       order, keeping the output byte-identical to the sequential path. *)
    let app_digest =
      match Engine.Key.digest_value_result (app, clustering) with
      | Ok d -> Some d
      | Error d ->
        (* unmarshalable application: with a store this is unreachable
           (Durable.open_ would have refused); with a plain cache, degrade
           to the uncached path instead of crashing a worker *)
        if store <> None then invalid_arg (Diag.to_string d);
        None
    in
    match app_digest with
    | None ->
      let slots =
        Engine.Pool.run_results ~jobs ?deadline_s ?retries
          (Array.of_list (List.map (fun c () -> eval c) combos))
      in
      List.mapi (fun i combo -> settle ~combo slots.(i)) combos
    | Some app_digest ->
    let lookups =
      List.map
        (fun c ->
          let key = point_key ~app_digest c in
          (c, key, find_safe cache key))
        combos
    in
    let missing =
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (c, key, hit) ->
          if hit <> None || Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (c, key)
          end)
        lookups
    in
    let computed =
      let task (c, key) () =
        match store with
        | None -> eval c
        | Some d ->
          eval c
            ~persist:(fun p schedule ->
              Durable.persist d ~key
                { stored_point = p; stored_schedule = schedule })
      in
      Engine.Pool.run_results ~jobs ?deadline_s ?retries
        (Array.of_list (List.map task missing))
    in
    let fresh = Hashtbl.create 16 in
    List.iteri
      (fun i (combo, key) ->
        let p = settle ~combo computed.(i) in
        Hashtbl.replace fresh key p;
        (* a crashed task's placeholder point is not cached: the failure
           may be transient (injected fault, deadline) and must not
           poison later sweeps *)
        if Result.is_ok computed.(i) then Engine.Cache.add cache key p)
      missing;
    (match stats with
    | Some st ->
      let hits =
        List.length (List.filter (fun (_, _, hit) -> hit <> None) lookups)
      in
      Engine.Stats.note_cache st ~hits ~misses:(List.length combos - hits)
    | None -> ());
    List.map
      (fun (_, key, hit) ->
        match hit with Some p -> p | None -> Hashtbl.find fresh key)
      lookups

let opt_str f = function Some v -> f v | None -> ""

let to_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "fb_words,cm_words,dma_setup,scheduler,feasible,rf,cycles,data_words,context_words\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%b,%s,%s,%s,%s\n" p.fb_set_size
           p.cm_capacity p.dma_setup_cycles p.scheduler p.feasible
           (opt_str string_of_int p.rf)
           (opt_str string_of_int p.total_cycles)
           (opt_str string_of_int p.data_words)
           (opt_str string_of_int p.context_words)))
    points;
  Buffer.contents buf

(* The sweep-level failure mode `msched dse` must not swallow: a run in
   which nothing was feasible has produced no sizing information at all. *)
let all_infeasible_diag points =
  match points with
  | [] ->
    Some
      (Diag.v Diag.Invalid_config
         "dse: empty sweep — no design points were evaluated (check the \
          axis lists)")
  | _ when List.exists (fun p -> p.feasible) points -> None
  | p :: _ ->
    Some
      (Diag.v Diag.Invalid_config
         "dse: all %d design points are infeasible — no machine sizing \
          satisfies this application (first diagnostic: %s)"
         (List.length points)
         (match p.diag with
         | Some d -> Diag.to_string d
         | None -> "none recorded"))

let best points =
  List.fold_left
    (fun acc p ->
      match (p.feasible, p.total_cycles, acc) with
      | false, _, _ | _, None, _ -> acc
      | true, Some _, None -> Some p
      | true, Some c, Some b ->
        let bc = Option.get b.total_cycles in
        if c < bc || (c = bc && p.fb_set_size < b.fb_set_size) then Some p
        else acc)
    None points

let pareto points =
  let feasible =
    List.filter (fun p -> p.feasible && p.total_cycles <> None) points
  in
  let dominated p =
    List.exists
      (fun q ->
        q != p && q.feasible
        && q.fb_set_size <= p.fb_set_size
        && Option.get q.total_cycles <= Option.get p.total_cycles
        && (q.fb_set_size < p.fb_set_size
           || Option.get q.total_cycles < Option.get p.total_cycles))
      feasible
  in
  List.filter (fun p -> not (dominated p)) feasible
  |> List.sort (fun a b -> compare a.fb_set_size b.fb_set_size)

let print_table points =
  let header =
    [ "FB"; "CM"; "setup"; "sched"; "RF"; "cycles"; "data w"; "ctx w" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          Msutil.Pretty.kbytes p.fb_set_size;
          Msutil.Pretty.kbytes p.cm_capacity;
          string_of_int p.dma_setup_cycles;
          p.scheduler;
          (if p.feasible then opt_str string_of_int p.rf else "-");
          (if p.feasible then opt_str string_of_int p.total_cycles
           else "infeasible");
          opt_str string_of_int p.data_words;
          opt_str string_of_int p.context_words;
        ])
      points
  in
  Msutil.Pretty.table ~header ~rows Format.std_formatter
