type point = {
  fb_set_size : int;
  cm_capacity : int;
  dma_setup_cycles : int;
  scheduler : string;
  feasible : bool;
  rf : int option;
  total_cycles : int option;
  data_words : int option;
  context_words : int option;
  diag : Diag.t option;
}

let infeasible ~fb ~cm ~setup ~scheduler diag =
  {
    fb_set_size = fb;
    cm_capacity = cm;
    dma_setup_cycles = setup;
    scheduler;
    feasible = false;
    rf = None;
    total_cycles = None;
    data_words = None;
    context_words = None;
    diag = Some diag;
  }

let point_of_schedule config ~fb ~cm ~setup ~scheduler = function
  | Error d -> infeasible ~fb ~cm ~setup ~scheduler d
  | Ok (s : Sched.Schedule.t) ->
    let m = Msim.Executor.run config s in
    {
      fb_set_size = fb;
      cm_capacity = cm;
      dma_setup_cycles = setup;
      scheduler;
      feasible = true;
      rf = Some s.Sched.Schedule.rf;
      total_cycles = Some m.Msim.Metrics.total_cycles;
      data_words = Some (Msim.Metrics.data_words m);
      context_words = Some m.Msim.Metrics.context_words_loaded;
      diag = None;
    }

(* The default sweep axis: the paper's three tiers. Other registered
   schedulers (e.g. "cds-xset") can be swept by passing an explicit
   [~scheduler] to {!evaluate}. *)
let schedulers = [ "basic"; "ds"; "cds" ]

let evaluate ?ctx ~fb ~cm ~setup ~scheduler app clustering =
  let config =
    Morphosys.Config.make ~fb_set_size:fb ~cm_capacity:cm
      ~dma_setup_cycles:setup ()
  in
  let ctx =
    match ctx with
    | Some c -> c
    | None -> Sched.Sched_ctx.make app clustering
  in
  point_of_schedule config ~fb ~cm ~setup ~scheduler
    (Sched.Scheduler_registry.run scheduler ctx config)

let point_key ~app_digest (fb, cm, setup, scheduler) =
  Engine.Key.combine
    [ app_digest; string_of_int fb; string_of_int cm; string_of_int setup;
      scheduler ]

(* An injected cache fault degrades the lookup to a miss: the point is
   recomputed instead of the sweep dying. *)
let find_safe cache key =
  try Engine.Cache.find cache key with Engine.Faults.Injected _ -> None

(* A crashed (or timed-out) design-point task is isolated into an
   infeasible point carrying its diagnostic; the rest of the sweep is
   unaffected. *)
let settle ~combo = function
  | Ok p -> p
  | Error d ->
    let fb, cm, setup, scheduler = combo in
    infeasible ~fb ~cm ~setup ~scheduler d

let sweep ?(jobs = 1) ?deadline_s ?retries ?cache ?stats
    ?(cm_list = [ 2048 ]) ?(setup_list = [ 0 ]) ~fb_list app clustering =
  let combos =
    List.concat_map
      (fun fb ->
        List.concat_map
          (fun cm ->
            List.concat_map
              (fun setup ->
                List.map (fun scheduler -> (fb, cm, setup, scheduler))
                  schedulers)
              setup_list)
          cm_list)
      fb_list
  in
  (* One immutable analysis context shared by every design point — and,
     under [~jobs > 1], by every worker domain. *)
  let ctx = Sched.Sched_ctx.make app clustering in
  let eval (fb, cm, setup, scheduler) =
    let work () = evaluate ~ctx ~fb ~cm ~setup ~scheduler app clustering in
    match stats with
    | None -> work ()
    | Some st -> Engine.Stats.time st ~label:scheduler work
  in
  match cache with
  | None ->
    let slots =
      Engine.Pool.run_results ~jobs ?deadline_s ?retries
        (Array.of_list (List.map (fun c () -> eval c) combos))
    in
    List.mapi (fun i combo -> settle ~combo slots.(i)) combos
  | Some cache ->
    (* One design point = one key: the digest covers the application, the
       clustering and every machine parameter, so a hit is exact. Misses
       are deduped and scheduled once each; results land back in combo
       order, keeping the output byte-identical to the sequential path. *)
    let app_digest = Engine.Key.digest_value (app, clustering) in
    let lookups =
      List.map
        (fun c ->
          let key = point_key ~app_digest c in
          (c, key, find_safe cache key))
        combos
    in
    let missing =
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (c, key, hit) ->
          if hit <> None || Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (c, key)
          end)
        lookups
    in
    let computed =
      Engine.Pool.run_results ~jobs ?deadline_s ?retries
        (Array.of_list (List.map (fun (c, _) () -> eval c) missing))
    in
    let fresh = Hashtbl.create 16 in
    List.iteri
      (fun i (combo, key) ->
        let p = settle ~combo computed.(i) in
        Hashtbl.replace fresh key p;
        (* a crashed task's placeholder point is not cached: the failure
           may be transient (injected fault, deadline) and must not
           poison later sweeps *)
        if Result.is_ok computed.(i) then Engine.Cache.add cache key p)
      missing;
    (match stats with
    | Some st ->
      let hits =
        List.length (List.filter (fun (_, _, hit) -> hit <> None) lookups)
      in
      Engine.Stats.note_cache st ~hits ~misses:(List.length combos - hits)
    | None -> ());
    List.map
      (fun (_, key, hit) ->
        match hit with Some p -> p | None -> Hashtbl.find fresh key)
      lookups

let opt_str f = function Some v -> f v | None -> ""

let to_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "fb_words,cm_words,dma_setup,scheduler,feasible,rf,cycles,data_words,context_words\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%b,%s,%s,%s,%s\n" p.fb_set_size
           p.cm_capacity p.dma_setup_cycles p.scheduler p.feasible
           (opt_str string_of_int p.rf)
           (opt_str string_of_int p.total_cycles)
           (opt_str string_of_int p.data_words)
           (opt_str string_of_int p.context_words)))
    points;
  Buffer.contents buf

let best points =
  List.fold_left
    (fun acc p ->
      match (p.feasible, p.total_cycles, acc) with
      | false, _, _ | _, None, _ -> acc
      | true, Some _, None -> Some p
      | true, Some c, Some b ->
        let bc = Option.get b.total_cycles in
        if c < bc || (c = bc && p.fb_set_size < b.fb_set_size) then Some p
        else acc)
    None points

let pareto points =
  let feasible =
    List.filter (fun p -> p.feasible && p.total_cycles <> None) points
  in
  let dominated p =
    List.exists
      (fun q ->
        q != p && q.feasible
        && q.fb_set_size <= p.fb_set_size
        && Option.get q.total_cycles <= Option.get p.total_cycles
        && (q.fb_set_size < p.fb_set_size
           || Option.get q.total_cycles < Option.get p.total_cycles))
      feasible
  in
  List.filter (fun p -> not (dominated p)) feasible
  |> List.sort (fun a b -> compare a.fb_set_size b.fb_set_size)

let print_table points =
  let header =
    [ "FB"; "CM"; "setup"; "sched"; "RF"; "cycles"; "data w"; "ctx w" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          Msutil.Pretty.kbytes p.fb_set_size;
          Msutil.Pretty.kbytes p.cm_capacity;
          string_of_int p.dma_setup_cycles;
          p.scheduler;
          (if p.feasible then opt_str string_of_int p.rf else "-");
          (if p.feasible then opt_str string_of_int p.total_cycles
           else "infeasible");
          opt_str string_of_int p.data_words;
          opt_str string_of_int p.context_words;
        ])
      points
  in
  Msutil.Pretty.table ~header ~rows Format.std_formatter
