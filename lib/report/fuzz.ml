type case = { index : int; scheduler : string; message : string }

type report = {
  seed : int;
  count : int;
  fb_set_size : int;
  schedules_checked : int;
  infeasible : int;
  violations : case list;
  ordering_failures : case list;
}

(* Outcome of one scheduler on one random application. *)
type verdict =
  | Infeasible
  | Valid of int  (** simulated total cycles *)
  | Violated of string

let schedule_of ~scheduler config app clustering =
  match scheduler with
  | "basic" -> Sched.Basic_scheduler.schedule config app clustering
  | "ds" -> Sched.Data_scheduler.schedule config app clustering
  | "cds" ->
    Result.map
      (fun r -> r.Cds.Complete_data_scheduler.schedule)
      (Cds.Complete_data_scheduler.schedule config app clustering)
  | s -> invalid_arg ("Fuzz.schedule_of: unknown scheduler " ^ s)

let verdict_of ~scheduler config app clustering =
  match schedule_of ~scheduler config app clustering with
  | Error _ -> Infeasible
  | Ok s -> (
    match Msim.Validate.check s with
    | [] -> Valid (Msim.Executor.run config s).Msim.Metrics.total_cycles
    | v :: _ -> Violated (Format.asprintf "%a" Msim.Validate.pp_violation v))

let fuzz_one ~seed ~fb_set_size ?stats index =
  (* The generator state depends only on (seed, index): whichever domain
     runs this task, whatever order tasks complete in, application
     [index] is always the same application. *)
  let rand = Random.State.make [| 0x5eed; seed; index |] in
  let app, clustering =
    QCheck.Gen.generate1 ~rand
      (Workloads.Random_app.gen_app_with_clustering ())
  in
  let config = Morphosys.Config.m1 ~fb_set_size in
  let timed scheduler f =
    match stats with
    | None -> f ()
    | Some st -> Engine.Stats.time st ~label:scheduler f
  in
  List.map
    (fun scheduler ->
      (scheduler, timed scheduler (fun () -> verdict_of ~scheduler config app clustering)))
    [ "basic"; "ds"; "cds" ]

let run ?(jobs = 1) ?(fb_set_size = 4096) ?stats ~seed ~count () =
  let tasks =
    Array.init count (fun i () -> fuzz_one ~seed ~fb_set_size ?stats i)
  in
  let outcomes = Engine.Pool.run ~jobs tasks in
  let checked = ref 0 and infeasible = ref 0 in
  let violations = ref [] and ordering = ref [] in
  Array.iteri
    (fun index verdicts ->
      List.iter
        (fun (scheduler, v) ->
          match v with
          | Infeasible -> incr infeasible
          | Valid _ -> incr checked
          | Violated message ->
            incr checked;
            violations := { index; scheduler; message } :: !violations)
        verdicts;
      match
        List.filter_map
          (fun s ->
            match List.assoc s verdicts with
            | Valid c -> Some c
            | Infeasible | Violated _ -> None)
          [ "basic"; "ds"; "cds" ]
      with
      | [ basic; ds; cds ] ->
        if not (cds <= ds && ds <= basic) then
          ordering :=
            { index; scheduler = "cds/ds/basic";
              message =
                Printf.sprintf "cycles not monotone: basic=%d ds=%d cds=%d"
                  basic ds cds }
            :: !ordering
      | _ -> ())
    outcomes;
  {
    seed;
    count;
    fb_set_size;
    schedules_checked = !checked;
    infeasible = !infeasible;
    violations = List.rev !violations;
    ordering_failures = List.rev !ordering;
  }

let ok r = r.violations = [] && r.ordering_failures = []

let pp ppf r =
  Format.fprintf ppf
    "@[<v>fuzz seed=%d count=%d fb=%d: %d schedules checked, %d infeasible@,"
    r.seed r.count r.fb_set_size r.schedules_checked r.infeasible;
  let dump title = function
    | [] -> Format.fprintf ppf "%s: none@," title
    | cases ->
      Format.fprintf ppf "%s: %d@," title (List.length cases);
      List.iter
        (fun c ->
          Format.fprintf ppf "  app %d [%s]: %s@," c.index c.scheduler
            c.message)
        cases
  in
  dump "validator violations" r.violations;
  dump "cycle-ordering failures" r.ordering_failures;
  Format.fprintf ppf "verdict: %s@]" (if ok r then "OK" else "FAILED")
