module Kernel = Kernel_ir.Kernel
module Data = Kernel_ir.Data
module Application = Kernel_ir.Application
module Cluster = Kernel_ir.Cluster
module Validate = Kernel_ir.Validate

type case = { index : int; scheduler : string; message : string }

type report = {
  seed : int;
  count : int;
  fb_set_size : int;
  schedules_checked : int;
  infeasible : int;
  violations : case list;
  ordering_failures : case list;
  faulted : int;
  crashes : case list;
}

(* Outcome of one scheduler on one random application. *)
type verdict =
  | Infeasible
  | Faulted  (** an injected fault surfaced as a diagnostic — absorbed *)
  | Valid of int  (** simulated total cycles *)
  | Violated of string

let schedule_of ~scheduler config app clustering =
  Sched.Scheduler_registry.run scheduler
    (Sched.Sched_ctx.make app clustering)
    config

let verdict_of ~scheduler config app clustering =
  match schedule_of ~scheduler config app clustering with
  | Error { Diag.code = Diag.Fault_injected; _ } -> Faulted
  | Error _ -> Infeasible
  | Ok s -> (
    match Msim.Validate.check s with
    | [] -> Valid (Msim.Executor.run config s).Msim.Metrics.total_cycles
    | v :: _ -> Violated (Format.asprintf "%a" Msim.Validate.pp_violation v))

let fuzz_one ~seed ~fb_set_size ?stats index =
  (* The generator state depends only on (seed, index): whichever domain
     runs this task, whatever order tasks complete in, application
     [index] is always the same application. *)
  let rand = Random.State.make [| 0x5eed; seed; index |] in
  let app, clustering =
    QCheck.Gen.generate1 ~rand
      (Workloads.Random_app.gen_app_with_clustering ())
  in
  let config = Morphosys.Config.m1 ~fb_set_size in
  let timed scheduler f =
    match stats with
    | None -> f ()
    | Some st -> Engine.Stats.time st ~label:scheduler f
  in
  List.map
    (fun scheduler ->
      (scheduler, timed scheduler (fun () -> verdict_of ~scheduler config app clustering)))
    [ "basic"; "ds"; "cds" ]

(* Injected faults and deadline kills are absorbed (counted, not failures);
   anything else that escapes a task is a crash — a real bug. *)
let absorbed (d : Diag.t) =
  match d.Diag.code with
  | Diag.Fault_injected | Diag.Task_timeout -> true
  | _ -> false

let run ?(jobs = 1) ?retries ?(fb_set_size = 4096) ?stats ~seed ~count () =
  let tasks =
    Array.init count (fun i () -> fuzz_one ~seed ~fb_set_size ?stats i)
  in
  let outcomes = Engine.Pool.run_results ~jobs ?retries tasks in
  let checked = ref 0 and infeasible = ref 0 and faulted = ref 0 in
  let violations = ref [] and ordering = ref [] and crashes = ref [] in
  Array.iteri
    (fun index outcome ->
      match outcome with
      | Error d when absorbed d -> incr faulted
      | Error d ->
        crashes :=
          { index; scheduler = "task"; message = Diag.render d } :: !crashes
      | Ok verdicts -> (
        List.iter
          (fun (scheduler, v) ->
            match v with
            | Infeasible -> incr infeasible
            | Faulted -> incr faulted
            | Valid _ -> incr checked
            | Violated message ->
              incr checked;
              violations := { index; scheduler; message } :: !violations)
          verdicts;
        match
          List.filter_map
            (fun s ->
              match List.assoc s verdicts with
              | Valid c -> Some c
              | Infeasible | Faulted | Violated _ -> None)
            [ "basic"; "ds"; "cds" ]
        with
        | [ basic; ds; cds ] ->
          if not (cds <= ds && ds <= basic) then
            ordering :=
              { index; scheduler = "cds/ds/basic";
                message =
                  Printf.sprintf "cycles not monotone: basic=%d ds=%d cds=%d"
                    basic ds cds }
              :: !ordering
        | _ -> ()))
    outcomes;
  {
    seed;
    count;
    fb_set_size;
    schedules_checked = !checked;
    infeasible = !infeasible;
    violations = List.rev !violations;
    ordering_failures = List.rev !ordering;
    faulted = !faulted;
    crashes = List.rev !crashes;
  }

let ok r = r.violations = [] && r.ordering_failures = [] && r.crashes = []

let pp ppf r =
  Format.fprintf ppf
    "@[<v>fuzz seed=%d count=%d fb=%d: %d schedules checked, %d infeasible, \
     %d faulted@,"
    r.seed r.count r.fb_set_size r.schedules_checked r.infeasible r.faulted;
  let dump title = function
    | [] -> Format.fprintf ppf "%s: none@," title
    | cases ->
      Format.fprintf ppf "%s: %d@," title (List.length cases);
      List.iter
        (fun c ->
          Format.fprintf ppf "  app %d [%s]: %s@," c.index c.scheduler
            c.message)
        cases
  in
  dump "validator violations" r.violations;
  dump "cycle-ordering failures" r.ordering_failures;
  dump "task crashes" r.crashes;
  Format.fprintf ppf "verdict: %s@]" (if ok r then "OK" else "FAILED")

(* ------------------------------------------------------------------ *)
(* Hostile mode: mutate valid random applications into (mostly) invalid
   ones and assert the stack never throws — every malformed input is
   either flagged by the total validator or survives scheduling. *)

type raw = {
  raw_name : string;
  kernels : Kernel.t list;
  data : Data.t list;
  iterations : int;
  partition : int list;
}

type hostile_report = {
  h_seed : int;
  h_count : int;
  h_fb_set_size : int;
  rejected : int;  (** mutants flagged by the validator *)
  survived : int;  (** mutants that validated clean and scheduled safely *)
  h_faulted : int;  (** pool slots absorbed by injected faults/deadlines *)
  h_crashes : case list;  (** uncaught exceptions — validator gaps *)
}

let raw_of_app (app : Application.t) clustering =
  {
    raw_name = app.Application.name;
    kernels = Array.to_list app.Application.kernels;
    data = app.Application.data;
    iterations = app.Application.iterations;
    partition = Cluster.partition_sizes clustering;
  }

(* Replace the [i]-th element of a list. *)
let replace_nth i f l = List.mapi (fun j x -> if j = i then f x else x) l

(* Each mutator returns [None] when the application lacks the shape it
   needs (e.g. a second kernel); the driver then treats the mutant as the
   identity control. Mutators are deterministic in (raw, rand). *)
let mutators :
    (string * (Random.State.t -> raw -> raw option)) list =
  let pick rand l =
    match l with
    | [] -> None
    | _ -> Some (List.nth l (Random.State.int rand (List.length l)))
  in
  let on_data rand raw pred f =
    let candidates =
      List.filteri (fun _ d -> pred d) raw.data
      |> List.map (fun (d : Data.t) -> d.Data.id)
    in
    pick rand candidates
    |> Option.map (fun id ->
           {
             raw with
             data =
               List.map
                 (fun (d : Data.t) -> if d.Data.id = id then f d else d)
                 raw.data;
           })
  in
  [
    ("identity", fun _ raw -> Some raw);
    ("zero-iterations", fun _ raw -> Some { raw with iterations = 0 });
    ("negative-iterations", fun _ raw -> Some { raw with iterations = -3 });
    ( "empty-kernels",
      fun _ raw -> Some { raw with kernels = []; partition = [] } );
    ( "dup-kernel-name",
      fun _ raw ->
        match raw.kernels with
        | (k0 : Kernel.t) :: _ :: _ ->
          Some
            {
              raw with
              kernels =
                replace_nth 1
                  (fun (k : Kernel.t) -> { k with Kernel.name = k0.Kernel.name })
                  raw.kernels;
            }
        | _ -> None );
    ( "swapped-kernel-ids",
      fun _ raw ->
        match raw.kernels with
        | (k0 : Kernel.t) :: k1 :: rest ->
          Some
            {
              raw with
              kernels =
                { k0 with Kernel.id = k1.Kernel.id }
                :: { k1 with Kernel.id = k0.Kernel.id }
                :: rest;
            }
        | _ -> None );
    ( "zero-contexts",
      fun rand raw ->
        match raw.kernels with
        | [] -> None
        | ks ->
          let i = Random.State.int rand (List.length ks) in
          Some
            {
              raw with
              kernels =
                replace_nth i
                  (fun (k : Kernel.t) -> { k with Kernel.contexts = 0 })
                  ks;
            } );
    ( "negative-data-size",
      fun rand raw ->
        on_data rand raw (fun _ -> true) (fun d -> { d with Data.size = -5 })
    );
    ( "empty-data-name",
      fun rand raw ->
        on_data rand raw (fun _ -> true) (fun d -> { d with Data.name = "" })
    );
    ( "dup-data-name",
      fun _ raw ->
        match raw.data with
        | (d0 : Data.t) :: _ :: _ ->
          Some
            {
              raw with
              data =
                replace_nth 1
                  (fun (d : Data.t) -> { d with Data.name = d0.Data.name })
                  raw.data;
            }
        | _ -> None );
    ( "dup-data-id",
      fun _ raw ->
        match raw.data with
        | (d0 : Data.t) :: _ :: _ ->
          Some
            {
              raw with
              data =
                replace_nth 1
                  (fun (d : Data.t) -> { d with Data.id = d0.Data.id })
                  raw.data;
            }
        | _ -> None );
    ( "oob-consumer",
      fun rand raw ->
        let n = List.length raw.kernels in
        on_data rand raw
          (fun _ -> true)
          (fun d -> { d with Data.consumers = [ n + 3 ] }) );
    ( "self-consume",
      fun rand raw ->
        on_data rand raw
          (fun d ->
            match d.Data.producer with
            | Data.Produced_by _ -> true
            | Data.External -> false)
          (fun d ->
            match d.Data.producer with
            | Data.Produced_by k -> { d with Data.consumers = [ k ] }
            | Data.External -> d) );
    ( "consumer-before-producer",
      fun rand raw ->
        on_data rand raw
          (fun d ->
            match d.Data.producer with
            | Data.Produced_by k -> k > 0
            | Data.External -> false)
          (fun d -> { d with Data.consumers = [ 0 ] }) );
    ( "invariant-result",
      fun rand raw ->
        on_data rand raw
          (fun d ->
            match d.Data.producer with
            | Data.Produced_by _ -> true
            | Data.External -> false)
          (fun d -> { d with Data.invariant = true }) );
    ( "external-no-consumers",
      fun rand raw ->
        on_data rand raw
          (fun d -> d.Data.producer = Data.External && not d.Data.final)
          (fun d -> { d with Data.consumers = [] }) );
    ( "bad-partition-sum",
      fun _ raw ->
        match raw.partition with
        | p :: rest -> Some { raw with partition = (p + 1) :: rest }
        | [] -> None );
    ( "zero-partition-size",
      fun _ raw ->
        match raw.partition with
        | _ :: rest -> Some { raw with partition = 0 :: rest }
        | [] -> None );
  ]

type hostile_outcome = Rejected | Survived | Crashed of string

(* Validator-first discipline: a mutant the validator flags is rejected
   without ever reaching a constructor; a mutant that validates clean
   must construct and schedule without an exception — if it throws
   anyway, the validator has a gap and the mutant is a crash case. *)
let hostile_one ~seed ~fb_set_size index =
  let rand = Random.State.make [| 0xba5e; seed; index |] in
  let app, clustering =
    QCheck.Gen.generate1 ~rand
      (Workloads.Random_app.gen_app_with_clustering ())
  in
  let base = raw_of_app app clustering in
  let mname, mutate = List.nth mutators (index mod List.length mutators) in
  let raw = match mutate rand base with Some r -> r | None -> base in
  let diags =
    Validate.application ~name:raw.raw_name ~kernels:raw.kernels
      ~data:raw.data ~iterations:raw.iterations
    @ Validate.partition ~n_kernels:(List.length raw.kernels) raw.partition
  in
  if diags <> [] then (mname, Rejected)
  else
    match
      Diag.guard (fun () ->
          let app =
            Application.make ~name:raw.raw_name ~kernels:raw.kernels
              ~data:raw.data ~iterations:raw.iterations
          in
          let clustering = Cluster.of_partition app raw.partition in
          let config = Morphosys.Config.m1 ~fb_set_size in
          List.iter
            (fun scheduler ->
              match schedule_of ~scheduler config app clustering with
              | Ok s -> ignore (Msim.Validate.check s)
              | Error (_ : Diag.t) -> ())
            [ "basic"; "ds"; "cds" ])
    with
    | Ok () -> (mname, Survived)
    | Error d -> (mname, Crashed (Diag.render d))

let run_hostile ?(jobs = 1) ?retries ?(fb_set_size = 4096) ~seed ~count () =
  let tasks =
    Array.init count (fun i () -> hostile_one ~seed ~fb_set_size i)
  in
  let outcomes = Engine.Pool.run_results ~jobs ?retries tasks in
  let rejected = ref 0 and survived = ref 0 and faulted = ref 0 in
  let crashes = ref [] in
  Array.iteri
    (fun index outcome ->
      match outcome with
      | Error d when absorbed d -> incr faulted
      | Error d ->
        crashes :=
          { index; scheduler = "task"; message = Diag.render d } :: !crashes
      | Ok (_, Rejected) -> incr rejected
      | Ok (_, Survived) -> incr survived
      | Ok (mname, Crashed message) ->
        crashes := { index; scheduler = mname; message } :: !crashes)
    outcomes;
  {
    h_seed = seed;
    h_count = count;
    h_fb_set_size = fb_set_size;
    rejected = !rejected;
    survived = !survived;
    h_faulted = !faulted;
    h_crashes = List.rev !crashes;
  }

let hostile_ok r = r.h_crashes = []

let pp_hostile ppf r =
  Format.fprintf ppf
    "@[<v>hostile fuzz seed=%d count=%d fb=%d: %d rejected by the \
     validator, %d survived scheduling, %d faulted@,"
    r.h_seed r.h_count r.h_fb_set_size r.rejected r.survived r.h_faulted;
  (match r.h_crashes with
  | [] -> Format.fprintf ppf "uncaught exceptions: none@,"
  | cases ->
    Format.fprintf ppf "uncaught exceptions: %d@," (List.length cases);
    List.iter
      (fun c ->
        Format.fprintf ppf "  mutant %d [%s]: %s@," c.index c.scheduler
          c.message)
      cases);
  Format.fprintf ppf "verdict: %s@]"
    (if hostile_ok r then "OK" else "FAILED")
