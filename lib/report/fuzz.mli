(** Randomized differential testing of the three schedulers.

    Fans [count] random applications (from {!Workloads.Random_app}) out
    over an {!Engine.Pool}, schedules each with Basic, DS and CDS, and
    referees every produced schedule with {!Msim.Validate.check} — the
    semantic oracle that replays residency, store validity, output
    completeness, overlap legality and computation coverage. When all
    three schedulers are feasible the cycle ordering
    [CDS <= DS <= Basic] is checked too (the paper's headline claim).

    Generation is keyed by [(seed, index)], so the report is identical
    for any job count — a fuzz run is reproducible by its seed alone. *)

type case = {
  index : int;  (** 0-based application index within the run *)
  scheduler : string;
  message : string;
}

type report = {
  seed : int;
  count : int;
  fb_set_size : int;
  schedules_checked : int;  (** schedules produced and validated *)
  infeasible : int;  (** scheduler returned an error (not a bug) *)
  violations : case list;  (** validator violations — scheduler bugs *)
  ordering_failures : case list;
      (** feasible triples where CDS > DS or DS > Basic cycles *)
}

val run :
  ?jobs:int ->
  ?fb_set_size:int ->
  ?stats:Engine.Stats.t ->
  seed:int ->
  count:int ->
  unit ->
  report
(** [run ~seed ~count ()] fuzzes [count] random applications on an M1
    configuration with [fb_set_size] (default 4096) words per set. *)

val ok : report -> bool
(** No violations and no ordering failures. *)

val pp : Format.formatter -> report -> unit
