(** Randomized differential testing of the three schedulers.

    Fans [count] random applications (from {!Workloads.Random_app}) out
    over an {!Engine.Pool}, schedules each with Basic, DS and CDS, and
    referees every produced schedule with {!Msim.Validate.check} — the
    semantic oracle that replays residency, store validity, output
    completeness, overlap legality and computation coverage. When all
    three schedulers are feasible the cycle ordering
    [CDS <= DS <= Basic] is checked too (the paper's headline claim).

    Generation is keyed by [(seed, index)], so the report is identical
    for any job count — a fuzz run is reproducible by its seed alone. *)

type case = {
  index : int;  (** 0-based application index within the run *)
  scheduler : string;
  message : string;
}

type report = {
  seed : int;
  count : int;
  fb_set_size : int;
  schedules_checked : int;  (** schedules produced and validated *)
  infeasible : int;  (** scheduler returned an error (not a bug) *)
  violations : case list;  (** validator violations — scheduler bugs *)
  ordering_failures : case list;
      (** feasible triples where CDS > DS or DS > Basic cycles *)
  faulted : int;
      (** pool slots absorbed by injected faults or deadline kills — not
          failures *)
  crashes : case list;
      (** tasks that died on an unexpected exception (isolated by the
          pool) — real bugs *)
}

val run :
  ?jobs:int ->
  ?retries:int ->
  ?fb_set_size:int ->
  ?stats:Engine.Stats.t ->
  seed:int ->
  count:int ->
  unit ->
  report
(** [run ~seed ~count ()] fuzzes [count] random applications on an M1
    configuration with [fb_set_size] (default 4096) words per set.
    A task that crashes is isolated into [crashes] — the remaining
    applications are still fuzzed. [~retries] retransmits tasks felled by
    transient injected faults ({!Engine.Faults}). *)

val ok : report -> bool
(** No violations, no ordering failures and no crashes. *)

val pp : Format.formatter -> report -> unit

(** {1 Hostile mode}

    Mutates valid random applications into (mostly) malformed ones and
    asserts the stack is exception-free: every mutant is either flagged
    by the total validator ({!Kernel_ir.Validate}) before construction,
    or — validating clean — constructs, schedules and simulates without
    an uncaught exception. A mutant that throws after clean validation
    is a validator gap and fails the run. *)

type hostile_report = {
  h_seed : int;
  h_count : int;
  h_fb_set_size : int;
  rejected : int;  (** mutants flagged by the validator *)
  survived : int;  (** mutants that validated clean and scheduled safely *)
  h_faulted : int;  (** pool slots absorbed by injected faults/deadlines *)
  h_crashes : case list;  (** uncaught exceptions — validator gaps *)
}

val run_hostile :
  ?jobs:int ->
  ?retries:int ->
  ?fb_set_size:int ->
  seed:int ->
  count:int ->
  unit ->
  hostile_report
(** [run_hostile ~seed ~count ()] fuzzes [count] mutated applications.
    Mutant [i] applies the [i mod n]-th of the n mutation strategies
    (zeroed iterations, duplicate names, shuffled kernel ids, negative
    sizes, dangling consumer ids, self-consumption, invariant results,
    broken partitions, …) to random application [i]; generation is keyed
    by [(seed, index)], so the report is reproducible for any job
    count. *)

val hostile_ok : hostile_report -> bool
(** No uncaught exceptions. *)

val pp_hostile : Format.formatter -> hostile_report -> unit
