(** Design-space exploration over the machine parameters: sweep the
    frame-buffer set size (and optionally the CM capacity and DMA setup
    cost) for one application, recording feasibility, RF, traffic and
    cycles per scheduler — the study an architect runs to size the on-chip
    memories for a workload. *)

type point = {
  fb_set_size : int;
  cm_capacity : int;
  dma_setup_cycles : int;
  scheduler : string;  (** "basic" | "ds" | "cds" *)
  feasible : bool;
  rf : int option;
  total_cycles : int option;
  data_words : int option;  (** loads + stores *)
  context_words : int option;
  diag : Diag.t option;
      (** why the point is infeasible: a scheduler diagnostic, or a
          [Task_crashed]/[Task_timeout] when the design-point task died
          and was isolated *)
}

val schedulers : string list
(** [["basic"; "ds"; "cds"]] — the registry names the sweep crosses
    with the machine axes. Other registered schedulers can be evaluated
    point-wise with {!evaluate}. *)

val evaluate :
  ?ctx:Sched.Sched_ctx.t ->
  fb:int ->
  cm:int ->
  setup:int ->
  scheduler:string ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  point
(** One design point: build the machine config, dispatch [scheduler]
    through {!Sched.Scheduler_registry} and simulate the result. An
    unknown scheduler name yields an infeasible point carrying the
    registry's [Invalid_config] diagnostic. [?ctx] reuses a precomputed
    scheduling context (it must belong to the given application and
    clustering). *)

val sweep :
  ?jobs:int ->
  ?deadline_s:float ->
  ?retries:int ->
  ?cache:point Engine.Cache.t ->
  ?stats:Engine.Stats.t ->
  ?cm_list:int list ->
  ?setup_list:int list ->
  fb_list:int list ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  point list
(** Full cross product, three schedulers per configuration, in order.

    [~jobs] (default 1) fans the design points out over an
    {!Engine.Pool} of that many domains; the point list (and therefore
    {!to_csv}) is byte-identical to the sequential [~jobs:1] path
    whatever the interleaving. [~cache] memoises points by
    (application, clustering, machine config, scheduler) digest, so
    design points repeated across sweeps are scheduled once. [~stats]
    accumulates per-scheduler timing and cache counters.

    The sweep is fault-isolated: a design-point task that crashes (or
    exceeds [~deadline_s], or exhausts its [~retries] against injected
    faults) becomes an infeasible point carrying the failure in [diag];
    every other point is still computed and returned. Crashed points are
    never written to the cache. An {!Engine.Faults} fault injected into a
    cache lookup degrades that lookup to a miss. *)

val to_csv : point list -> string

val best : point list -> point option
(** The feasible point with the fewest cycles (ties: smaller frame
    buffer — cheaper silicon). *)

val pareto : point list -> point list
(** Feasible points not dominated in (fb_set_size, total_cycles): the
    memory-size / performance trade-off frontier, ascending by size. *)

val print_table : point list -> unit
