(** Design-space exploration over the machine parameters: sweep the
    frame-buffer set size (and optionally the CM capacity and DMA setup
    cost) for one application, recording feasibility, RF, traffic and
    cycles per scheduler — the study an architect runs to size the on-chip
    memories for a workload. *)

type point = {
  fb_set_size : int;
  cm_capacity : int;
  dma_setup_cycles : int;
  scheduler : string;  (** "basic" | "ds" | "cds" *)
  feasible : bool;
  rf : int option;
  total_cycles : int option;
  data_words : int option;  (** loads + stores *)
  context_words : int option;
  diag : Diag.t option;
      (** why the point is infeasible: a scheduler diagnostic, or a
          [Task_crashed]/[Task_timeout] when the design-point task died
          and was isolated *)
}

val schedulers : string list
(** [["basic"; "ds"; "cds"]] — the registry names the sweep crosses
    with the machine axes. Other registered schedulers can be evaluated
    point-wise with {!evaluate}. *)

val evaluate :
  ?ctx:Sched.Sched_ctx.t ->
  fb:int ->
  cm:int ->
  setup:int ->
  scheduler:string ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  point
(** One design point: build the machine config, dispatch [scheduler]
    through {!Sched.Scheduler_registry} and simulate the result. An
    unknown scheduler name yields an infeasible point carrying the
    registry's [Invalid_config] diagnostic. [?ctx] reuses a precomputed
    scheduling context (it must belong to the given application and
    clustering). *)

(** Durable sweep state: an on-disk, crash-recoverable record of a
    sweep's completed design points.

    A [Durable.t] pairs an {!Engine.Store} of per-point results with an
    {!Engine.Journal} of completion marks (write-ahead: a point is
    journalled only after its result record is on disk, so a marked
    point is always recoverable). Opening with [~resume:true] replays
    whatever survived a crash; each rehydrated feasible point is
    re-validated against the simulator
    ([Msim.Validate.check_result]) and quarantined — recomputed, with a
    [STORE_CORRUPT] warning — if it no longer checks out. *)
module Durable : sig
  type t

  val schema_version : int
  (** Version of the marshalled point payload; part of the sweep
      identity, so a payload-format change refuses to resume old
      stores instead of misreading them. *)

  val open_ :
    ?resume:bool ->
    path:string ->
    ?cm_list:int list ->
    ?setup_list:int list ->
    fb_list:int list ->
    Kernel_ir.Application.t ->
    Kernel_ir.Cluster.clustering ->
    (t, Diag.t) result
  (** Open (or create) the store at [path] and its journal at
      [path ^ ".journal"] for the sweep identified by the given
      application, clustering and axis lists.

      Without [~resume] (the default) an existing non-empty [path] is
      refused with a [SWEEP_MISMATCH] diagnostic — overwriting a
      previous run must be asked for. With [~resume:true] the files are
      opened, their recorded sweep identity is checked against the
      requested one (mismatch: [SWEEP_MISMATCH]), and surviving points
      are rehydrated. Corruption anywhere — a torn tail, a failed
      checksum, a point that fails re-validation — is quarantined and
      reported via {!warnings}, never fatal. *)

  val path : t -> string
  val identity : t -> string
  (** Hex digest of (application, clustering, axes, scheduler set,
      payload schema, store format) — what {!open_} checks on resume. *)

  val completed : t -> int
  (** Number of journalled-complete design points. *)

  val warnings : t -> Diag.t list
  (** Quarantine and recovery warnings accumulated since {!open_}:
      store-level corruption, rehydration failures, persist failures. *)

  val checkpoint : t -> unit
  (** Fsync both files. Async-signal-tolerant: takes no locks, so it is
      safe to call from a SIGINT/SIGTERM handler while workers are
      mid-append. *)

  val close : t -> unit
end

val sweep :
  ?jobs:int ->
  ?deadline_s:float ->
  ?retries:int ->
  ?cache:point Engine.Cache.t ->
  ?stats:Engine.Stats.t ->
  ?store:Durable.t ->
  ?cm_list:int list ->
  ?setup_list:int list ->
  fb_list:int list ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  point list
(** Full cross product, three schedulers per configuration, in order.

    [~jobs] (default 1) fans the design points out over an
    {!Engine.Pool} of that many domains; the point list (and therefore
    {!to_csv}) is byte-identical to the sequential [~jobs:1] path
    whatever the interleaving. [~cache] memoises points by
    (application, clustering, machine config, scheduler) digest, so
    design points repeated across sweeps are scheduled once. [~stats]
    accumulates per-scheduler timing and cache counters.

    [~store] makes the sweep durable: previously persisted points are
    replayed into the cache before any scheduling happens (so a resumed
    sweep recomputes nothing that was journalled complete), and each
    newly computed point is persisted as it finishes — not at the end —
    so a crash loses at most the points in flight. The store's sweep
    identity must match the requested axes and application
    (@raise Invalid_argument otherwise — open the store with
    {!Durable.open_} on the same arguments you pass here). A resumed
    sweep returns a point list byte-identical to an uninterrupted run.
    [~store] implies an in-memory cache even if [~cache] is not given.

    The sweep is fault-isolated: a design-point task that crashes (or
    exceeds [~deadline_s], or exhausts its [~retries] against injected
    faults) becomes an infeasible point carrying the failure in [diag];
    every other point is still computed and returned. Crashed points are
    never written to the cache or the store. An {!Engine.Faults} fault
    injected into a cache lookup degrades that lookup to a miss. *)

val to_csv : point list -> string

val all_infeasible_diag : point list -> Diag.t option
(** [Some diag] when the sweep produced no feasible point at all (or no
    points) — the condition under which [msched dse] exits nonzero.
    [None] as soon as one point is feasible. *)

val best : point list -> point option
(** The feasible point with the fewest cycles (ties: smaller frame
    buffer — cheaper silicon). *)

val pareto : point list -> point list
(** Feasible points not dominated in (fb_set_size, total_cycles): the
    memory-size / performance trade-off frontier, ascending by size. *)

val print_table : point list -> unit
