(* Reproductions of the paper's Figures 3 and 5 and of the section-6
   allocator-quality claims, plus our own ablation study. *)

module AA = Cds.Allocation_algorithm
module T1 = Workloads.Table1

let fmt = Format.std_formatter

(* -- Figure 5: FB allocation snapshots -------------------------------- *)

let figure5 () =
  Format.fprintf fmt
    "@\n== Figure 5: FB allocation for the 3-kernel cluster, RF=2 ==@\n@\n";
  let app = Workloads.Synthetic.figure5 () in
  let clustering = Workloads.Synthetic.figure5_clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:512 in
  let ctx = Sched.Sched_ctx.make app clustering in
  match Cds.Complete_data_scheduler.run_full ctx config with
  | Error d -> Format.fprintf fmt "infeasible: %s@\n" (Diag.to_string d)
  | Ok r ->
    let focus = Workloads.Synthetic.figure5_focus_cluster in
    let result =
      AA.run
        ~capture:(fun ~cluster_id -> cluster_id = focus)
        config app clustering ~rf:r.Cds.Complete_data_scheduler.rf
        ~retention:r.Cds.Complete_data_scheduler.retention ~round:0
    in
    Format.fprintf fmt "retained: %a@\n"
      Cds.Retention.pp_decision r.Cds.Complete_data_scheduler.retention;
    let snapshots = List.map (fun s -> s.AA.cells) result.AA.snapshots in
    let labels = List.map (fun s -> s.AA.caption) result.AA.snapshots in
    Format.fprintf fmt "%s@\n"
      (Fb_alloc.Layout.render_snapshots ~cell_width:8 ~labels snapshots);
    Format.fprintf fmt "splits needed: %d, placement failures: %d@\n"
      result.AA.splits
      (List.length result.AA.failures)

(* -- Figure 3: loop fission -------------------------------------------- *)

let figure3 () =
  Format.fprintf fmt
    "@\n== Figure 3: kernel scheduling graph under loop fission ==@\n@\n";
  let app = Workloads.Synthetic.figure3 () in
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  let clustering = Kernel_ir.Cluster.whole_application app in
  let rf =
    match
      Cds.Complete_data_scheduler.run_full
        (Sched.Sched_ctx.make app clustering)
        config
    with
    | Ok r -> r.Cds.Complete_data_scheduler.rf
    | Error _ -> 1
  in
  Format.fprintf fmt "(a) plain kernel sequence:@\n%s@\n"
    (Kernel_ir.Dot.kernel_graph app);
  Format.fprintf fmt "(b) after loop fission, RF=%d:@\n%s@\n" rf
    (Kernel_ir.Dot.loop_fission_graph app ~rf)

(* -- Section 6 allocator quality --------------------------------------- *)

let allocator_quality () =
  Format.fprintf fmt
    "@\n== Allocator quality on the 12 experiments (paper section 6) ==@\n@\n";
  let header = [ "exp"; "splits"; "failures"; "peak/bound" ] in
  let rows =
    List.map
      (fun (e : T1.experiment) ->
        match Cds.Pipeline.allocation_report e.T1.config e.T1.app e.T1.clustering with
        | Error err -> [ e.T1.id; "-"; err; "-" ]
        | Ok r ->
          let peak = Msutil.Listx.max_by snd r.AA.peak_words in
          [
            e.T1.id;
            string_of_int r.AA.splits;
            string_of_int (List.length r.AA.failures);
            Printf.sprintf "%d/%d" peak e.T1.config.Morphosys.Config.fb_set_size;
          ])
      (T1.all ())
  in
  Msutil.Pretty.table ~header ~rows fmt;
  Format.fprintf fmt
    "(paper: \"For all examples no data or result has to be split\")@\n"

(* -- Ablations ----------------------------------------------------------- *)

let ablations () =
  Format.fprintf fmt
    "@\n== Ablations: what each CDS ingredient buys (improvement vs Basic, \
     %%) ==@\n@\n";
  let header = [ "exp"; "full CDS"; "no retention"; "cross-set (future work)" ] in
  let improvement e ~retention ~cross_set =
    let c =
      Cds.Pipeline.run ~retention ~cross_set e.T1.config e.T1.app e.T1.clustering
    in
    match Cds.Pipeline.improvement c `Cds with
    | Some pct -> Msutil.Pretty.pct pct
    | None -> "n/a"
  in
  let rows =
    List.map
      (fun (e : T1.experiment) ->
        [
          e.T1.id;
          improvement e ~retention:true ~cross_set:false;
          improvement e ~retention:false ~cross_set:false;
          improvement e ~retention:true ~cross_set:true;
        ])
      (T1.all ())
  in
  Msutil.Pretty.table ~header ~rows fmt;
  (* extension study: MPEG with its constant tables marked invariant *)
  Format.fprintf fmt
    "@\nExtension: MPEG with iteration-invariant tables (qmat, headers):@\n";
  let app = Workloads.Mpeg.app_invariant () in
  let clustering = Workloads.Mpeg.clustering app in
  List.iter
    (fun fb ->
      let config = Morphosys.Config.m1 ~fb_set_size:fb in
      let c = Cds.Pipeline.run config app clustering in
      let pct which =
        match Cds.Pipeline.improvement c which with
        | Some p -> Msutil.Pretty.pct p
        | None -> "-"
      in
      Format.fprintf fmt "  FB=%s: DS %s, CDS %s (paper: 30/45 and 35/50)@\n"
        (Msutil.Pretty.kbytes fb) (pct `Ds) (pct `Cds))
    [ 2048; 3072 ]

(* -- TF-ordering ablation ----------------------------------------------- *)

let tf_ordering () =
  Format.fprintf fmt
    "@\n== Ablation: TF candidate ordering vs naive orders ==@\n@\n";
  let app = Workloads.Synthetic.retention_stress () in
  let clustering = Workloads.Synthetic.retention_stress_clustering app in
  let header = [ "FB set"; "tf"; "fifo"; "smallest"; "largest" ] in
  let avoided fb ranking =
    let config = Morphosys.Config.m1 ~fb_set_size:fb in
    let footprints = Sched.Data_scheduler.footprints app clustering in
    let rf =
      Sched.Reuse_factor.common ~fb_set_size:fb ~footprints
        ~iterations:app.Kernel_ir.Application.iterations
    in
    if rf < 1 then "-"
    else
      let d = Cds.Retention.choose ~ranking config app clustering ~rf in
      string_of_int d.Cds.Retention.avoided_words_per_iteration
  in
  let rows =
    List.map
      (fun fb ->
        Msutil.Pretty.kbytes fb
        :: List.map (avoided fb)
             [ `Tf; `Fifo; `Smallest_first; `Largest_first ])
      [ 600; 640; 700; 768; 1024 ]
  in
  Msutil.Pretty.table ~header ~rows fmt;
  Format.fprintf fmt
    "(external words avoided per iteration under each candidate order; the \
     greedy pass keeps a prefix, so the order matters when memory is tight)@\n"

(* -- DMA setup sensitivity ------------------------------------------------ *)

let dma_setup_sensitivity () =
  Format.fprintf fmt
    "@\n== Sensitivity: per-transfer DMA setup cost (MPEG, FB=2K) ==@\n@\n";
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let header = [ "setup cyc"; "DS%"; "CDS%"; "CDS cycles" ] in
  let rows =
    List.map
      (fun dma_setup_cycles ->
        let config =
          Morphosys.Config.make ~fb_set_size:2048 ~dma_setup_cycles ()
        in
        let c = Cds.Pipeline.run config app clustering in
        let pct which =
          match Cds.Pipeline.improvement c which with
          | Some p -> Msutil.Pretty.pct p
          | None -> "-"
        in
        [
          string_of_int dma_setup_cycles;
          pct `Ds;
          pct `Cds;
          (match c.Cds.Pipeline.cds with
          | Ok (s, _) ->
            string_of_int s.Cds.Pipeline.metrics.Msim.Metrics.total_cycles
          | Error _ -> "-");
        ])
      [ 0; 4; 16; 64 ]
  in
  Msutil.Pretty.table ~header ~rows fmt;
  Format.fprintf fmt
    "(retention also removes whole transfers, so its advantage grows with \
     the per-transfer cost)@\n"

(* -- control-code size ------------------------------------------------------ *)

let code_size () =
  Format.fprintf fmt
    "@\n== Control-code size: unrolled vs loop-rerolled programs ==@\n@\n";
  let header = [ "exp"; "unrolled"; "looped"; "ratio" ] in
  let rows =
    List.filter_map
      (fun (e : T1.experiment) ->
        match
          Cds.Complete_data_scheduler.run_full
            (Sched.Sched_ctx.make e.T1.app e.T1.clustering)
            e.T1.config
        with
        | Error _ -> None
        | Ok r ->
          let s = r.Cds.Complete_data_scheduler.schedule in
          let unrolled = Codegen.Instruction.size (Codegen.Emit.program s) in
          let looped =
            Codegen.Instruction.size (Codegen.Emit.program_looped s)
          in
          Some
            [
              e.T1.id;
              string_of_int unrolled;
              string_of_int looped;
              Printf.sprintf "%.1fx"
                (float_of_int unrolled /. float_of_int looped);
            ])
      (T1.all ())
  in
  Msutil.Pretty.table ~header ~rows fmt

(* -- kernel-scheduler heuristic quality ---------------------------------- *)

let heuristic_quality () =
  Format.fprintf fmt
    "@\n== Kernel-scheduler heuristics vs exhaustive search ==@\n@\n";
  let header = [ "app"; "exhaustive"; "greedy"; "beam(4)"; "greedy gap"; "beam gap" ] in
  let rows =
    List.filter_map
      (fun (name, app, config) ->
        let eval clustering =
          match
            Cds.Complete_data_scheduler.run_full
              (Sched.Sched_ctx.make app clustering)
              config
          with
          | Ok r ->
            Some
              (Sched.Schedule_cost.estimate config
                 r.Cds.Complete_data_scheduler.schedule)
          | Error _ -> None
        in
        match Sched.Kernel_scheduler.best app ~eval with
        | None -> None
        | Some (_, opt) ->
          let result f =
            match f app ~eval with
            | Some (_, c) -> Some c
            | None -> None
          in
          let gap = function
            | Some c ->
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int (c - opt) /. float_of_int opt)
            | None -> "-"
          in
          let show = function Some c -> string_of_int c | None -> "-" in
          let g = result Sched.Kernel_scheduler.greedy in
          let b = result (Sched.Kernel_scheduler.beam ~width:4) in
          Some [ name; string_of_int opt; show g; show b; gap g; gap b ])
      [
        ("E2", Workloads.Synthetic.e2 (), Morphosys.Config.m1 ~fb_set_size:2048);
        ("MPEG", Workloads.Mpeg.app (), Morphosys.Config.m1 ~fb_set_size:2048);
        ("ATR-FI", Workloads.Atr.fi (), Morphosys.Config.m1 ~fb_set_size:1024);
        ("E1", Workloads.Synthetic.e1 (), Morphosys.Config.m1 ~fb_set_size:2048);
      ]
  in
  Msutil.Pretty.table ~header ~rows fmt;
  Format.fprintf fmt
    "(estimated cycles of the clustering each search strategy selects)@\n"

let run () =
  figure5 ();
  figure3 ();
  allocator_quality ();
  ablations ();
  tf_ordering ();
  dma_setup_sensitivity ();
  code_size ();
  heuristic_quality ()
