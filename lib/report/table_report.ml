(* Reproduction of the paper's Table 1 and Figure 6: run the three
   schedulers on each of the twelve experiments and print measured vs paper
   numbers. *)

let fmt = Format.std_formatter

type row = {
  experiment : Workloads.Table1.experiment;
  comparison : Cds.Pipeline.comparison;
}

let run_rows () =
  List.map
    (fun (e : Workloads.Table1.experiment) ->
      {
        experiment = e;
        comparison = Cds.Pipeline.run e.config e.app e.clustering;
      })
    (Workloads.Table1.all ())

let pct = function Some f -> Msutil.Pretty.pct f | None -> "n/a"
let kwords words = Msutil.Pretty.kbytes words

let table1 rows =
  Format.fprintf fmt "@\n== Table 1: experimental results ==@\n@\n";
  let header =
    [
      "exp"; "N"; "n"; "TDS"; "DT"; "DT(p)"; "RF"; "RF(p)"; "FB"; "DS%";
      "DS%(p)"; "CDS%"; "CDS%(p)";
    ]
  in
  let to_row { experiment = e; comparison = c } =
    let paper = e.Workloads.Table1.paper in
    [
      e.Workloads.Table1.id;
      string_of_int (Kernel_ir.Cluster.n_clusters e.clustering);
      string_of_int
        (Msutil.Listx.max_by List.length
           (List.map
              (fun (cl : Kernel_ir.Cluster.t) -> cl.Kernel_ir.Cluster.kernels)
              e.clustering));
      kwords (Kernel_ir.Application.total_data_words e.app);
      (match Cds.Pipeline.dt_words c with
      | Some w -> kwords w
      | None -> "n/a");
      kwords (int_of_float (paper.dt_kwords *. 1024.));
      (match Cds.Pipeline.ds_rf c with Some rf -> string_of_int rf | None -> "-");
      string_of_int paper.rf;
      kwords e.config.Morphosys.Config.fb_set_size;
      pct (Cds.Pipeline.improvement c `Ds);
      Msutil.Pretty.pct paper.ds_pct;
      pct (Cds.Pipeline.improvement c `Cds);
      Msutil.Pretty.pct paper.cds_pct;
    ]
  in
  Msutil.Pretty.table ~header ~rows:(List.map to_row rows) fmt;
  Format.fprintf fmt
    "('(p)' columns are the paper's numbers; TDS/DT in words/iteration)@\n"

let figure6 rows =
  Format.fprintf fmt
    "@\n== Figure 6: relative execution improvement over Basic (%%) ==@\n@\n";
  List.iter
    (fun { experiment = e; comparison = c } ->
      let ds = Cds.Pipeline.improvement c `Ds in
      let cds = Cds.Pipeline.improvement c `Cds in
      let bar v = Msutil.Pretty.bar ~width:40 (Option.value ~default:0. v) 100. in
      Format.fprintf fmt "%-10s CDS %5s |%s@\n" e.Workloads.Table1.id
        (pct cds) (bar cds);
      Format.fprintf fmt "%-10s DS  %5s |%s@\n@\n" "" (pct ds) (bar ds))
    rows

let infeasibility () =
  Format.fprintf fmt "== MPEG feasibility at FB=1K (paper section 6) ==@\n@\n";
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  let ctx = Sched.Sched_ctx.make app clustering in
  let describe name =
    match Sched.Scheduler_registry.run name ctx config with
    | Ok (_ : Sched.Schedule.t) -> Format.fprintf fmt "%-6s: runs@\n" name
    | Error d ->
      Format.fprintf fmt "%-6s: infeasible (%s)@\n" name (Diag.to_string d)
  in
  List.iter describe Dse.schedulers

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "experiment,clusters,max_kernels,tds_words,dt_words,rf,fb_words,ds_pct,cds_pct,paper_rf,paper_ds_pct,paper_cds_pct\n";
  List.iter
    (fun { experiment = e; comparison = c } ->
      let paper = e.Workloads.Table1.paper in
      let opt_f = function Some v -> Printf.sprintf "%.1f" v | None -> "" in
      let opt_i = function Some v -> string_of_int v | None -> "" in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%s,%s,%d,%s,%s,%d,%.0f,%.0f\n"
           e.Workloads.Table1.id
           (Kernel_ir.Cluster.n_clusters e.clustering)
           (Msutil.Listx.max_by List.length
              (List.map
                 (fun (cl : Kernel_ir.Cluster.t) -> cl.Kernel_ir.Cluster.kernels)
                 e.clustering))
           (Kernel_ir.Application.total_data_words e.app)
           (opt_i (Cds.Pipeline.dt_words c))
           (opt_i (Cds.Pipeline.ds_rf c))
           e.config.Morphosys.Config.fb_set_size
           (opt_f (Cds.Pipeline.improvement c `Ds))
           (opt_f (Cds.Pipeline.improvement c `Cds))
           paper.rf paper.ds_pct paper.cds_pct))
    rows;
  Buffer.contents buf

let run () =
  let rows = run_rows () in
  table1 rows;
  figure6 rows;
  infeasibility ();
  rows
