let err ?kernel ?data ?cluster code fmt =
  Diag.v ?kernel ?data ?cluster code fmt

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun name ->
      let dup = Hashtbl.mem seen name in
      Hashtbl.replace seen name ();
      dup)
    names
  |> List.sort_uniq String.compare

let kernels_diags kernels =
  let ks =
    List.concat
      (List.mapi
         (fun i (k : Kernel.t) ->
           List.concat
             [
               (if k.id <> i then
                  [
                    err ~kernel:k.name Diag.Invalid_app
                      "kernel %S has id %d at position %d" k.name k.id i;
                  ]
                else []);
               (if k.name = "" then
                  [ err Diag.Invalid_app "kernel %d has an empty name" i ]
                else []);
               (if k.contexts <= 0 then
                  [
                    err ~kernel:k.name Diag.Invalid_app
                      "kernel %S has non-positive context words (%d)" k.name
                      k.contexts;
                  ]
                else []);
               (if k.exec_cycles <= 0 then
                  [
                    err ~kernel:k.name Diag.Invalid_app
                      "kernel %S has non-positive exec cycles (%d)" k.name
                      k.exec_cycles;
                  ]
                else []);
             ])
         kernels)
  in
  let dups =
    List.map
      (fun name ->
        err ~kernel:name Diag.Invalid_app "duplicate kernel name %S" name)
      (duplicates (List.map (fun (k : Kernel.t) -> k.name) kernels))
  in
  ks @ dups

(* Total re-statement of the [Data.make] invariants: instead of dying on
   the first violation, every broken property of every object is
   reported. *)
let data_diags ~n_kernels data =
  let per_object (d : Data.t) =
    let e fmt = err ~data:d.Data.name Diag.Invalid_app fmt in
    let kid_checks what kid =
      if kid < 0 || kid >= n_kernels then
        [
          e "data %S references unknown %s kernel %d" d.Data.name what kid;
        ]
      else []
    in
    let rec sorted = function
      | a :: (b :: _ as rest) -> a < b && sorted rest
      | _ -> true
    in
    List.concat
      [
        (if d.Data.name = "" then
           [ err Diag.Invalid_app "data object %d has an empty name" d.Data.id ]
         else []);
        (if d.Data.size <= 0 then
           [ e "data %S has non-positive size %d" d.Data.name d.Data.size ]
         else []);
        (match d.Data.producer with
        | Data.External -> if d.Data.consumers = [] then
            [ e "external data %S has no consumers" d.Data.name ]
          else []
        | Data.Produced_by k ->
          List.concat
            [
              kid_checks "producer" k;
              (if d.Data.consumers = [] && not d.Data.final then
                 [ e "result %S is dead (no consumer, not final)" d.Data.name ]
               else []);
              (if List.mem k d.Data.consumers then
                 [ e "kernel %d consumes its own result %S" k d.Data.name ]
               else []);
              (if List.exists (fun c -> c >= 0 && c < n_kernels && c < k)
                   d.Data.consumers
               then [ e "a consumer of %S precedes its producer" d.Data.name ]
               else []);
            ]);
        (if d.Data.invariant && d.Data.producer <> Data.External then
           [ e "produced data %S cannot be iteration-invariant" d.Data.name ]
         else []);
        (if not (sorted d.Data.consumers) then
           [ e "consumers of %S are not sorted and unique" d.Data.name ]
         else []);
        List.concat_map (kid_checks "consumer") d.Data.consumers;
      ]
  in
  let dups =
    List.map
      (fun name -> err ~data:name Diag.Invalid_app "duplicate data name %S" name)
      (duplicates (List.map (fun (d : Data.t) -> d.Data.name) data))
  in
  let id_dups =
    let ids = List.map (fun (d : Data.t) -> string_of_int d.Data.id) data in
    List.map
      (fun id -> err Diag.Invalid_app "duplicate data id %s" id)
      (duplicates ids)
  in
  List.concat_map per_object data @ dups @ id_dups

let application ~name ~kernels ~data ~iterations =
  ignore name;
  List.concat
    [
      (if iterations <= 0 then
         [ err Diag.Invalid_app "iterations must be positive (got %d)" iterations ]
       else []);
      (if kernels = [] then [ err Diag.Invalid_app "no kernels" ] else []);
      kernels_diags kernels;
      data_diags ~n_kernels:(List.length kernels) data;
    ]

let app (t : Application.t) =
  application ~name:t.Application.name
    ~kernels:(Array.to_list t.Application.kernels)
    ~data:t.Application.data ~iterations:t.Application.iterations

let partition ~n_kernels sizes =
  List.concat
    [
      List.filter_map
        (fun s ->
          if s <= 0 then
            Some
              (err Diag.Invalid_clustering "non-positive cluster size %d" s)
          else None)
        sizes;
      (let sum = List.fold_left ( + ) 0 sizes in
       if sum <> n_kernels then
         [
           err Diag.Invalid_clustering
             "cluster sizes sum to %d but the application has %d kernels" sum
             n_kernels;
         ]
       else []);
    ]

let clustering (app : Application.t) (cl : Cluster.clustering) =
  let n = Application.n_kernels app in
  let covered = List.concat_map (fun (c : Cluster.t) -> c.Cluster.kernels) cl in
  List.concat
    [
      (if covered <> List.init n (fun i -> i) then
         [
           err Diag.Invalid_clustering
             "clusters do not cover the kernel sequence 0..%d in order" (n - 1);
         ]
       else []);
      List.filter_map
        (fun (i, (c : Cluster.t)) ->
          if c.Cluster.id <> i then
            Some
              (err ~cluster:c.Cluster.id Diag.Invalid_clustering
                 "cluster ids are not consecutive (id %d at position %d)"
                 c.Cluster.id i)
          else None)
        (List.mapi (fun i c -> (i, c)) cl);
      List.filter_map
        (fun (c : Cluster.t) ->
          if c.Cluster.fb_set <> Cluster.set_of_index c.Cluster.id then
            Some
              (err ~cluster:c.Cluster.id Diag.Invalid_clustering
                 "cluster %d breaks the alternating FB-set assignment"
                 c.Cluster.id)
          else None)
        cl;
    ]

let config (c : Morphosys.Config.t) =
  match Morphosys.Config.validate c with
  | Ok () -> []
  | Error msg -> [ err Diag.Invalid_config "%s" msg ]

let all ?config:cfg app_t cl =
  List.concat
    [
      app app_t;
      clustering app_t cl;
      (match cfg with None -> [] | Some c -> config c);
    ]

let application_checked ~name ~kernels ~data ~iterations =
  match application ~name ~kernels ~data ~iterations with
  | _ :: _ as diags -> Error diags
  | [] -> (
    match Application.make ~name ~kernels ~data ~iterations with
    | app -> Ok app
    | exception e ->
      (* the checker is meant to be complete w.r.t. [Application.make];
         reaching this branch is a validator gap, reported structurally *)
      Error [ Diag.of_exn ~backtrace:(Printexc.get_backtrace ()) e ])
