module IE = Info_extractor

type t = {
  app : Application.t;
  clustering : Cluster.clustering;
  clusters : Cluster.t array;
  kernel_cluster : int array;
  data_index : Data.t option array;
  profiles : IE.cluster_profile array;
  consumed_by_cluster : Data.t list array;
  produced_by_cluster : Data.t list array;
  sharing : IE.shared list;
  tds : int;
}

let fail fmt = Format.kasprintf invalid_arg fmt

(* The whole module indexes by cluster id, so the ids must be the positions
   0..n-1 — exactly what [Cluster.validate] checks. We re-check here so a
   hand-built clustering that skipped validation fails loudly instead of
   silently reading the wrong profile (the failure mode of the old
   [List.nth profiles cluster.id] convention). *)
let clusters_array clustering =
  let clusters = Array.of_list clustering in
  if Array.length clusters = 0 then fail "Analysis.make: empty clustering";
  Array.iteri
    (fun i (c : Cluster.t) ->
      if c.Cluster.id <> i then
        fail
          "Analysis.make: cluster ids are not consecutive (cluster at \
           position %d has id %d; run Cluster.validate)"
          i c.Cluster.id)
    clusters;
  clusters

let kernel_cluster_array app clusters =
  let n = Application.n_kernels app in
  let owner = Array.make n (-1) in
  Array.iter
    (fun (c : Cluster.t) ->
      List.iter
        (fun kid ->
          if kid < 0 || kid >= n then
            fail "Analysis.make: cluster %d references unknown kernel %d"
              c.Cluster.id kid;
          if owner.(kid) >= 0 then
            fail "Analysis.make: kernel %d appears in clusters %d and %d" kid
              owner.(kid) c.Cluster.id;
          owner.(kid) <- c.Cluster.id)
        c.Cluster.kernels)
    clusters;
  Array.iteri
    (fun kid cid ->
      if cid < 0 then fail "Analysis.make: kernel %d is in no cluster" kid)
    owner;
  owner

let data_index_array (app : Application.t) =
  let max_id =
    List.fold_left (fun acc (d : Data.t) -> max acc d.Data.id) (-1)
      app.Application.data
  in
  let index = Array.make (max_id + 1) None in
  List.iter
    (fun (d : Data.t) ->
      match index.(d.Data.id) with
      | Some (prev : Data.t) ->
        fail "Analysis.make: data objects %S and %S share id %d" prev.Data.name
          d.Data.name d.Data.id
      | None -> index.(d.Data.id) <- Some d)
    app.Application.data;
  index

(* Reversed-accumulator buckets: one pass over [app.data] in declaration
   order, so every per-cluster / per-kernel list below keeps the order the
   reference [Info_extractor] filters produce. *)
let bucket_data (app : Application.t) ~kernel_cluster ~n_clusters =
  let n_kernels = Application.n_kernels app in
  let consumed = Array.make n_clusters [] in
  let produced = Array.make n_clusters [] in
  let produced_by_kernel = Array.make n_kernels [] in
  List.iter
    (fun (d : Data.t) ->
      let seen = Array.make n_clusters false in
      List.iter
        (fun k ->
          let cid = kernel_cluster.(k) in
          if not seen.(cid) then begin
            seen.(cid) <- true;
            consumed.(cid) <- d :: consumed.(cid)
          end)
        d.Data.consumers;
      match d.Data.producer with
      | Data.External -> ()
      | Data.Produced_by k ->
        produced.(kernel_cluster.(k)) <- d :: produced.(kernel_cluster.(k));
        produced_by_kernel.(k) <- d :: produced_by_kernel.(k))
    app.Application.data;
  let rev a = Array.map List.rev a in
  (rev consumed, rev produced, rev produced_by_kernel)

let profile_of_cluster app ~kernel_cluster ~consumed ~produced
    ~produced_by_kernel (c : Cluster.t) =
  let cid = c.Cluster.id in
  let in_cluster kid = kernel_cluster.(kid) = cid in
  let produced_in (d : Data.t) =
    match d.Data.producer with
    | Data.External -> false
    | Data.Produced_by k -> in_cluster k
  in
  let outlives (d : Data.t) =
    (* [produced_in] is implied for members of the produced bucket *)
    d.Data.final
    || List.exists (fun k -> kernel_cluster.(k) > cid) d.Data.consumers
  in
  (* consumers are sorted ascending (Data.make), so the last in-cluster
     consumer is the last in-cluster element of the list *)
  let last_consumer_in (d : Data.t) =
    List.fold_left
      (fun acc k -> if in_cluster k then Some k else acc)
      None d.Data.consumers
  in
  let external_inputs =
    List.filter (fun d -> not (produced_in d)) consumed.(cid)
  in
  let outliving = List.filter outlives produced.(cid) in
  let d_buckets = Hashtbl.create 16 in
  List.iter
    (fun (d : Data.t) ->
      match last_consumer_in d with
      | Some kid ->
        Hashtbl.replace d_buckets kid
          (d :: (try Hashtbl.find d_buckets kid with Not_found -> []))
      | None -> assert false (* consumed in the cluster by construction *))
    external_inputs;
  let kernel_profiles =
    List.map
      (fun kid ->
        let d_objects =
          List.rev (try Hashtbl.find d_buckets kid with Not_found -> [])
        in
        let mine = produced_by_kernel.(kid) in
        let rout_objects = List.filter outlives mine in
        let intermediate_objects =
          List.filter_map
            (fun (d : Data.t) ->
              if outlives d then None
              else
                match last_consumer_in d with
                | Some t -> Some (d, t)
                | None -> None)
            mine
        in
        { IE.kernel = kid; d_objects; rout_objects; intermediate_objects })
      c.Cluster.kernels
  in
  let contexts =
    Msutil.Listx.sum_by
      (fun kid -> (Application.kernel app kid).Kernel.contexts)
      c.Cluster.kernels
  in
  let compute_cycles =
    Msutil.Listx.sum_by
      (fun kid -> (Application.kernel app kid).Kernel.exec_cycles)
      c.Cluster.kernels
  in
  {
    IE.cluster = c;
    kernel_profiles;
    external_inputs;
    outliving;
    contexts;
    compute_cycles;
  }

let sharing_of (app : Application.t) ~kernel_cluster =
  List.filter_map
    (fun (d : Data.t) ->
      let consumer_clusters =
        List.map (fun k -> kernel_cluster.(k)) d.Data.consumers
        |> List.sort_uniq compare
      in
      match d.Data.producer with
      | Data.External ->
        if List.length consumer_clusters >= 2 then
          Some (IE.Shared_data { data = d; consumer_clusters })
        else None
      | Data.Produced_by k ->
        let producer_cluster = kernel_cluster.(k) in
        let later =
          List.filter (fun c -> c <> producer_cluster) consumer_clusters
        in
        if later <> [] then
          Some
            (IE.Shared_result
               { data = d; producer_cluster; consumer_clusters = later })
        else None)
    app.Application.data

let make app clustering =
  let clusters = clusters_array clustering in
  let kernel_cluster = kernel_cluster_array app clusters in
  let n_clusters = Array.length clusters in
  let consumed, produced, produced_by_kernel =
    bucket_data app ~kernel_cluster ~n_clusters
  in
  let profiles =
    Array.map
      (profile_of_cluster app ~kernel_cluster ~consumed ~produced
         ~produced_by_kernel)
      clusters
  in
  {
    app;
    clustering;
    clusters;
    kernel_cluster;
    data_index = data_index_array app;
    profiles;
    consumed_by_cluster = consumed;
    produced_by_cluster = produced;
    sharing = sharing_of app ~kernel_cluster;
    tds = Application.total_data_words app;
  }

let n_clusters t = Array.length t.clusters

let check_cluster_id t what id =
  if id < 0 || id >= n_clusters t then
    fail "Analysis.%s: bad cluster id %d (have %d clusters)" what id
      (n_clusters t)

let cluster t id =
  check_cluster_id t "cluster" id;
  t.clusters.(id)

let profile t id =
  check_cluster_id t "profile" id;
  t.profiles.(id)

let cluster_id_of_kernel t kid =
  if kid < 0 || kid >= Array.length t.kernel_cluster then
    fail "Analysis.cluster_id_of_kernel: bad kernel id %d" kid;
  t.kernel_cluster.(kid)

let cluster_of_kernel t kid = t.clusters.(cluster_id_of_kernel t kid)

let data t id =
  let bad () = fail "Analysis.data: unknown data id %d" id in
  if id < 0 || id >= Array.length t.data_index then bad ();
  match t.data_index.(id) with Some d -> d | None -> bad ()

let consumed_in_cluster t id =
  check_cluster_id t "consumed_in_cluster" id;
  t.consumed_by_cluster.(id)

let produced_in_cluster t id =
  check_cluster_id t "produced_in_cluster" id;
  t.produced_by_cluster.(id)

let profiles_list t = Array.to_list t.profiles
let sharing t = t.sharing
let tds t = t.tds
