(** Clusters: consecutive kernel runs assigned to alternating frame-buffer
    sets (paper §2). While one cluster computes out of its set, the DMA
    prepares the other set for the next cluster. *)

type t = {
  id : int;  (** position in cluster execution order (0-based) *)
  kernels : Kernel.id list;  (** consecutive, ascending *)
  fb_set : Morphosys.Frame_buffer.set;
}

type clustering = t list

val of_partition : Application.t -> int list -> clustering
(** [of_partition app sizes] splits the kernel sequence into consecutive
    clusters of the given sizes; cluster 0 gets set A, cluster 1 set B,
    alternating (the hardware double-buffering discipline).
    @raise Invalid_argument if the sizes are not positive or do not sum to
    the kernel count. *)

val singleton_per_kernel : Application.t -> clustering
(** One cluster per kernel — the Basic Scheduler's degenerate clustering. *)

val whole_application : Application.t -> clustering
(** A single cluster holding every kernel. *)

val validate : Application.t -> clustering -> (unit, string) result
(** Checks coverage (every kernel in exactly one cluster, in order),
    consecutive ids, and alternating set assignment. *)

val cluster_of_kernel : clustering -> Kernel.id -> t
(** @raise Invalid_argument naming the kernel id if it is in no
    cluster. *)

val cluster_of_kernel_opt : clustering -> Kernel.id -> t option

val find : clustering -> int -> t
(** Cluster by id. @raise Invalid_argument naming the id. *)

val find_opt : clustering -> int -> t option

val set_of_index : int -> Morphosys.Frame_buffer.set
(** The FB set the alternating discipline assigns to cluster [id]. *)

val same_set : t -> t -> bool
val n_clusters : clustering -> int
val partition_sizes : clustering -> int list
val pp : Format.formatter -> t -> unit
val pp_clustering : Format.formatter -> clustering -> unit
