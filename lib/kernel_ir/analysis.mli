(** Precomputed, immutable analysis context for one [(application,
    clustering)] pair — the indexed counterpart of {!Info_extractor}.

    The reference extractor recomputes cluster profiles from scratch with
    list scans ([List.nth], [List.mem], [Cluster.cluster_of_kernel]) every
    time a scheduler needs them, which makes a single scheduler run
    quadratic-to-cubic in application size. [Analysis.make] performs the
    same derivation once, with O(1) lookups, and the result is threaded
    through the schedulers. The profiles, sharing sets and orderings are
    {e byte-identical} to the reference implementation — a property the
    test suite checks on hundreds of random applications — so schedules
    built from a context equal the reference schedules exactly.

    The structure is immutable after construction (plain arrays and lists,
    no lazy cells or tables), so one context can be shared freely across
    engine worker domains. *)

type t = private {
  app : Application.t;
  clustering : Cluster.clustering;
  clusters : Cluster.t array;  (** indexed by cluster id *)
  kernel_cluster : int array;  (** kernel id -> cluster id *)
  data_index : Data.t option array;  (** data id -> object *)
  profiles : Info_extractor.cluster_profile array;
      (** indexed by cluster id; equal to [Info_extractor.profiles] *)
  consumed_by_cluster : Data.t list array;
      (** per cluster: every object some kernel of the cluster consumes,
          in application declaration order *)
  produced_by_cluster : Data.t list array;
      (** per cluster: every object produced inside it, declaration order *)
  sharing : Info_extractor.shared list;
      (** equal to [Info_extractor.sharing] *)
  tds : int;  (** total data words ({!Time_factor} denominator) *)
}

val make : Application.t -> Cluster.clustering -> t
(** Builds the context in near-linear time.
    @raise Invalid_argument when cluster ids are not consecutive positions
    (the [Cluster.validate] invariant — the error says so explicitly), when
    a kernel is covered by zero or two clusters, or when data ids collide. *)

val n_clusters : t -> int

val cluster : t -> int -> Cluster.t
(** By cluster id. @raise Invalid_argument on an unknown id. *)

val profile : t -> int -> Info_extractor.cluster_profile
(** By cluster id — replaces the fragile [List.nth profiles c.id].
    @raise Invalid_argument on an unknown id. *)

val profiles_list : t -> Info_extractor.cluster_profile list
(** All profiles in cluster-id order (equals [Info_extractor.profiles]). *)

val cluster_of_kernel : t -> Kernel.id -> Cluster.t
(** O(1) counterpart of [Cluster.cluster_of_kernel]. *)

val cluster_id_of_kernel : t -> Kernel.id -> int

val data : t -> int -> Data.t
(** By data id. @raise Invalid_argument on an unknown id. *)

val consumed_in_cluster : t -> int -> Data.t list
val produced_in_cluster : t -> int -> Data.t list

val sharing : t -> Info_extractor.shared list
val tds : t -> int
