(** Total pre-flight checking of applications, clusterings and machine
    configurations.

    The [make] constructors ({!Application.make}, {!Data.make},
    {!Cluster.of_partition}, [Morphosys.Config.make]) raise
    [Invalid_argument] on the {e first} violation they meet — right for
    programmatic construction, useless for triaging a malformed input.
    This module re-states every constructor invariant as a {e total}
    check that collects {e all} violations of an input as structured
    {!Diag.t} values (codes [Invalid_app] / [Invalid_clustering] /
    [Invalid_config], with the offending kernel/data/cluster recorded)
    and never raises.

    An input for which {!application} returns [[]] is guaranteed to be
    accepted by {!Application.make}; the hostile fuzzer
    ([msched fuzz --hostile]) enforces that completeness claim on
    mutated random applications. *)

val application :
  name:string ->
  kernels:Kernel.t list ->
  data:Data.t list ->
  iterations:int ->
  Diag.t list
(** All violations of the raw application ingredients: positive
    iterations, non-empty ordered kernel sequence, unique kernel/data
    names and data ids, per-object {!Data.make} invariants, and
    producer/consumer ids in range. *)

val app : Application.t -> Diag.t list
(** {!application} over an already-built value (expected [[]] — useful
    for auditing values deserialised or built through unchecked
    paths). *)

val application_checked :
  name:string ->
  kernels:Kernel.t list ->
  data:Data.t list ->
  iterations:int ->
  (Application.t, Diag.t list) result
(** Validate, then construct. Never raises: if the checker passes an
    input that {!Application.make} still rejects (a checker gap), the
    exception is returned as a diagnostic too. *)

val partition : n_kernels:int -> int list -> Diag.t list
(** Violations of a cluster-size partition ({!Cluster.of_partition}
    preconditions): positive sizes summing to the kernel count. *)

val clustering : Application.t -> Cluster.clustering -> Diag.t list
(** Violations of a built clustering: kernel coverage in order,
    consecutive ids, alternating FB sets. *)

val config : Morphosys.Config.t -> Diag.t list

val all :
  ?config:Morphosys.Config.t ->
  Application.t ->
  Cluster.clustering ->
  Diag.t list
(** Every violation of a whole scheduling problem. *)
