type t = {
  name : string;
  kernels : Kernel.t array;
  data : Data.t list;
  iterations : int;
}

let fail fmt = Format.kasprintf invalid_arg fmt

let check_unique what names =
  let sorted = List.sort String.compare names in
  let rec loop = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then fail "Application.make: duplicate %s name %S" what a
      else loop rest
    | _ -> ()
  in
  loop sorted

let make ~name ~kernels ~data ~iterations =
  if iterations <= 0 then fail "Application.make: iterations must be positive";
  if kernels = [] then fail "Application.make: no kernels";
  List.iteri
    (fun i (k : Kernel.t) ->
      if k.id <> i then
        fail "Application.make: kernel %S has id %d at position %d" k.name k.id i)
    kernels;
  check_unique "kernel" (List.map (fun (k : Kernel.t) -> k.name) kernels);
  check_unique "data" (List.map (fun (d : Data.t) -> d.name) data);
  let n = List.length kernels in
  let check_kid what (d : Data.t) kid =
    if kid < 0 || kid >= n then
      fail "Application.make: data %S references unknown %s kernel %d" d.name
        what kid
  in
  List.iter
    (fun (d : Data.t) ->
      (match d.producer with
      | Data.External -> ()
      | Data.Produced_by k -> check_kid "producer" d k);
      List.iter (check_kid "consumer" d) d.consumers)
    data;
  let data = List.sort (fun (a : Data.t) b -> compare a.id b.id) data in
  { name; kernels = Array.of_list kernels; data; iterations }

let n_kernels t = Array.length t.kernels

let kernel t id =
  if id < 0 || id >= n_kernels t then
    invalid_arg (Printf.sprintf "Application.kernel: bad id %d" id);
  t.kernels.(id)

let kernel_by_name_opt t name =
  Array.find_opt (fun (k : Kernel.t) -> k.name = name) t.kernels

let kernel_by_name t name =
  match kernel_by_name_opt t name with
  | Some k -> k
  | None ->
    invalid_arg
      (Printf.sprintf "Application.kernel_by_name: no kernel %S in app %S"
         name t.name)

let data_by_name_opt t name =
  List.find_opt (fun (d : Data.t) -> d.name = name) t.data

let data_by_name t name =
  match data_by_name_opt t name with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "Application.data_by_name: no data object %S in app %S"
         name t.name)

let inputs_of t kid = List.filter (fun d -> Data.consumed_by d kid) t.data

let outputs_of t kid =
  List.filter (fun (d : Data.t) -> d.producer = Data.Produced_by kid) t.data

let external_data t = List.filter Data.is_external t.data
let results t = List.filter Data.is_result t.data
let final_results t = List.filter (fun (d : Data.t) -> d.final) t.data

let total_data_words t = Msutil.Listx.sum_by (fun (d : Data.t) -> d.size) t.data

let total_context_words t =
  Array.to_list t.kernels
  |> Msutil.Listx.sum_by (fun (k : Kernel.t) -> k.contexts)

let pp fmt t =
  Format.fprintf fmt "@[<v>app %S (%d iterations)@,kernels:@," t.name
    t.iterations;
  Array.iter (fun k -> Format.fprintf fmt "  %a@," Kernel.pp k) t.kernels;
  Format.fprintf fmt "data:@,";
  List.iter (fun d -> Format.fprintf fmt "  %a@," Data.pp d) t.data;
  Format.fprintf fmt "@]"
