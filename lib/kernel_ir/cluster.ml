module Fb = Morphosys.Frame_buffer

type t = { id : int; kernels : Kernel.id list; fb_set : Fb.set }
type clustering = t list

let set_of_index i = if i mod 2 = 0 then Fb.Set_a else Fb.Set_b

let of_partition app sizes =
  let n = Application.n_kernels app in
  if List.exists (fun s -> s <= 0) sizes then
    invalid_arg "Cluster.of_partition: non-positive cluster size";
  if Msutil.Listx.sum sizes <> n then
    invalid_arg
      (Printf.sprintf
         "Cluster.of_partition: sizes sum to %d but the application has %d \
          kernels"
         (Msutil.Listx.sum sizes) n);
  let rec loop id start = function
    | [] -> []
    | size :: rest ->
      {
        id;
        kernels = List.init size (fun i -> start + i);
        fb_set = set_of_index id;
      }
      :: loop (id + 1) (start + size) rest
  in
  loop 0 0 sizes

let singleton_per_kernel app =
  of_partition app (List.init (Application.n_kernels app) (fun _ -> 1))

let whole_application app = of_partition app [ Application.n_kernels app ]

let validate app clustering =
  let n = Application.n_kernels app in
  let all = List.concat_map (fun c -> c.kernels) clustering in
  let expected = List.init n (fun i -> i) in
  if all <> expected then Error "clusters do not cover the kernel sequence"
  else if
    List.exists
      (fun c -> c.fb_set <> set_of_index c.id)
      clustering
  then Error "cluster set assignment does not alternate"
  else if
    List.mapi (fun i c -> c.id = i) clustering |> List.exists not
  then Error "cluster ids are not consecutive"
  else Ok ()

let cluster_of_kernel_opt clustering kid =
  List.find_opt (fun c -> List.mem kid c.kernels) clustering

let cluster_of_kernel clustering kid =
  match cluster_of_kernel_opt clustering kid with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Cluster.cluster_of_kernel: kernel %d is in no cluster"
         kid)

let find_opt clustering id = List.find_opt (fun c -> c.id = id) clustering

let find clustering id =
  match find_opt clustering id with
  | Some c -> c
  | None ->
    invalid_arg (Printf.sprintf "Cluster.find: no cluster with id %d" id)

let same_set a b = a.fb_set = b.fb_set
let n_clusters = List.length
let partition_sizes clustering = List.map (fun c -> List.length c.kernels) clustering

let pp fmt t =
  Format.fprintf fmt "Cl%d[%s]@%a" t.id
    (String.concat "," (List.map string_of_int t.kernels))
    Fb.pp_set t.fb_set

let pp_clustering fmt clustering =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") pp)
    clustering
