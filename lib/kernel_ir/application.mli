(** A complete application: an ordered kernel sequence, its data-flow, and
    the number of iterations the sequence is executed to process the whole
    input stream (paper §3: "composed of a sequence of kernels that are
    consecutively executed over a part of the input data, until all the data
    are processed"). *)

type t = private {
  name : string;
  kernels : Kernel.t array;  (** execution order; [kernels.(i).id = i] *)
  data : Data.t list;  (** every data object, ordered by id *)
  iterations : int;  (** total iterations [n] of the kernel sequence *)
}

val make :
  name:string -> kernels:Kernel.t list -> data:Data.t list -> iterations:int -> t
(** Validates the whole application:
    kernel ids are exactly [0 .. len-1] in order, kernel and data names are
    unique, every consumer/producer id refers to an existing kernel,
    [iterations > 0].
    @raise Invalid_argument with a diagnostic otherwise. *)

val n_kernels : t -> int
val kernel : t -> Kernel.id -> Kernel.t
(** @raise Invalid_argument on out-of-range id. *)

val kernel_by_name : t -> string -> Kernel.t
(** @raise Invalid_argument naming the missing kernel and the app. *)

val kernel_by_name_opt : t -> string -> Kernel.t option

val data_by_name : t -> string -> Data.t
(** @raise Invalid_argument naming the missing data object and the app. *)

val data_by_name_opt : t -> string -> Data.t option

val inputs_of : t -> Kernel.id -> Data.t list
(** Data objects consumed by the kernel, ordered by data id. *)

val outputs_of : t -> Kernel.id -> Data.t list
(** Data objects produced by the kernel, ordered by data id. *)

val external_data : t -> Data.t list
val results : t -> Data.t list
val final_results : t -> Data.t list

val total_data_words : t -> int
(** Total words of all data objects per iteration — the paper's TDS
    (total data and result sizes) denominator of the TF factor. *)

val total_context_words : t -> int
val pp : Format.formatter -> t -> unit
