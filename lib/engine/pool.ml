let recommended_jobs () = Domain.recommended_domain_count ()

exception Deadline_exceeded of float

(* Cooperative cancellation: the worker publishes the running task's
   deadline in domain-local storage; a well-behaved long task calls
   [checkpoint] at loop boundaries and is cancelled by the exception. *)
let deadline_key : float option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let checkpoint () =
  match Domain.DLS.get deadline_key with
  | None -> ()
  | Some d ->
    let now = Unix.gettimeofday () in
    if now > d then raise (Deadline_exceeded (now -. d))

(* Run one task to an [(value, (exn, backtrace)) result], enforcing the
   cooperative deadline and retrying injected (transient) faults up to
   [retries] times. Deadline overruns are never retried: the task already
   consumed its time budget. *)
let attempt ?deadline_s ?(retries = 0) f =
  let rec go retries_left =
    (match deadline_s with
    | None -> ()
    | Some s -> Domain.DLS.set deadline_key (Some (Unix.gettimeofday () +. s)));
    let outcome =
      match
        Faults.hit "pool";
        f ()
      with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Domain.DLS.set deadline_key None;
    match outcome with
    | Error (Faults.Injected _, _) when retries_left > 0 ->
      go (retries_left - 1)
    | outcome -> outcome
  in
  go retries

let check_jobs ~who jobs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Engine.Pool.%s: jobs must be >= 1 (got %d)" who jobs)

(* Work-stealing is overkill for coarse scheduler tasks: a shared atomic
   next-task counter gives dynamic load balancing with no queues, and the
   results array (one writer per slot, read only after the joins) keeps the
   output in task order regardless of which domain ran what. *)
let run_raw ~who ~jobs ?deadline_s ?retries (tasks : (unit -> 'a) array) =
  check_jobs ~who jobs;
  let n = Array.length tasks in
  let jobs = min jobs n in
  if jobs <= 1 then
    (* n = 0 lands here too: no domain is ever spawned for an empty array *)
    Array.map (fun f -> attempt ?deadline_s ?retries f) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (attempt ?deadline_s ?retries tasks.(i));
        worker ()
      end
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.map (function Some r -> r | None -> assert false) results
  end

(* Shared completion semantics of [run]/[map]: every task runs exactly
   once; the exception of the lowest-indexed failing task (with its
   original backtrace) is what the caller sees. *)
let extract results =
  Array.map
    (function
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let run ?(jobs = 1) tasks = extract (run_raw ~who:"run" ~jobs tasks)

let diag_of_failure (e, bt) =
  let backtrace = Printexc.raw_backtrace_to_string bt in
  match e with
  | Deadline_exceeded over ->
    Diag.v ~backtrace Diag.Task_timeout
      "task exceeded its cooperative deadline by %.3fs" over
  | Faults.Injected site ->
    Diag.v ~backtrace Diag.Fault_injected "injected fault at %s" site
  | e ->
    Diag.v ~backtrace Diag.Task_crashed "task raised %s" (Printexc.to_string e)

let run_results ?(jobs = 1) ?deadline_s ?retries tasks =
  Array.map
    (Result.map_error diag_of_failure)
    (run_raw ~who:"run_results" ~jobs ?deadline_s ?retries tasks)

let map ?jobs f xs =
  Array.to_list (run ?jobs (Array.of_list (List.map (fun x () -> f x) xs)))
