let recommended_jobs () = Domain.recommended_domain_count ()

(* Shared completion semantics for both paths: every task runs exactly
   once; the exception of the lowest-indexed failing task (with its
   original backtrace) is what the caller sees. *)
let extract results =
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let attempt f =
  match f () with
  | v -> Ok v
  | exception e -> Error (e, Printexc.get_raw_backtrace ())

(* Work-stealing is overkill for coarse scheduler tasks: a shared atomic
   next-task counter gives dynamic load balancing with no queues, and the
   results array (one writer per slot, read only after the joins) keeps the
   output in task order regardless of which domain ran what. *)
let run_parallel ~jobs (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      results.(i) <- Some (attempt tasks.(i));
      worker ()
    end
  in
  let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  extract results

let run ?(jobs = 1) tasks =
  let jobs = min jobs (Array.length tasks) in
  if jobs <= 1 then extract (Array.map (fun f -> Some (attempt f)) tasks)
  else run_parallel ~jobs tasks

let map ?jobs f xs =
  Array.to_list (run ?jobs (Array.of_list (List.map (fun x () -> f x) xs)))
