exception Injected of string

type plan = { seed : int; rate : float; sites : string list }

let plan ?(sites = []) ?(rate = 0.05) ~seed () =
  if rate < 0. || rate > 1. then
    invalid_arg "Engine.Faults.plan: rate must be in [0, 1]";
  { seed; rate; sites }

(* The armed plan is read on every [hit]; counters are touched only while a
   plan is armed, so the disarmed fast path is one atomic load. *)
let armed_plan : plan option Atomic.t = Atomic.make None

let mutex = Mutex.create ()
let counters : (string, int) Hashtbl.t = Hashtbl.create 8
let injections = ref 0

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let arm p =
  with_lock (fun () ->
      Hashtbl.reset counters;
      injections := 0);
  Atomic.set armed_plan (Some p)

let disarm () = Atomic.set armed_plan None
let armed () = Atomic.get armed_plan
let injected_count () = with_lock (fun () -> !injections)

(* The nth visit to a site fires iff hash(seed, site, n) falls under the
   rate: the firing set is a pure function of the plan, independent of which
   domain or task reaches the site. *)
let fires p ~site ~n =
  let h = Hashtbl.hash (p.seed, site, n) land 0xFFFFFF in
  float_of_int h < p.rate *. float_of_int 0x1000000

let hit site =
  match Atomic.get armed_plan with
  | None -> ()
  | Some p when p.sites <> [] && not (List.mem site p.sites) -> ()
  | Some p ->
    let fire =
      with_lock (fun () ->
          let n = Option.value ~default:0 (Hashtbl.find_opt counters site) in
          Hashtbl.replace counters site (n + 1);
          if fires p ~site ~n then begin
            incr injections;
            Some n
          end
          else None)
    in
    (match fire with
    | Some n -> raise (Injected (Printf.sprintf "%s#%d" site n))
    | None -> ())

let with_plan p f =
  arm p;
  Fun.protect ~finally:disarm f
