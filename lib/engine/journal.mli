(** Write-ahead sweep journal: the proof that on-disk results belong to
    one specific sweep, and which of its design points completed.

    A journal is a {!Store} whose first record binds the file to a sweep
    {e identity} — a digest covering the application, clustering, sweep
    axes, scheduler set and code/schema version. Opening an existing
    journal with a different identity is refused with a [SWEEP_MISMATCH]
    diagnostic: resumption must never mix results from two sweeps.

    Each completion {!mark} is appended {e after} the corresponding result
    record is durably in the result store, so a marked key is guaranteed
    to have its data on disk (a crash between the two writes merely loses
    the mark, and the point is recomputed on resume). Marks inherit the
    store's integrity checking: a truncated tail loses marks, never
    corrupts them. *)

type t

val open_ : ?create:bool -> identity:string -> string -> (t, Diag.t) result
(** Open or create the journal at a path, claiming a fresh journal for
    [identity] and verifying an existing one matches it. *)

val identity : t -> string

val warnings : t -> Diag.t list
(** Quarantine diagnostics from opening the underlying store. *)

val mark : t -> string -> unit
(** Durably record one design-point key as complete. Idempotent.
    @raise Invalid_argument on the reserved identity key. *)

val is_marked : t -> string -> bool

val marked : t -> int
(** Number of completion marks. *)

val checkpoint : t -> unit
(** Signal-safe fsync (see {!Store.checkpoint}). *)

val close : t -> unit

type info = {
  identity_prefix : string;  (** first 12 hex chars of the identity *)
  marks : int;
  corruption : Diag.t option;
}

val info : string -> (info, Diag.t) result
(** Read-only summary for [msched store info]. *)
