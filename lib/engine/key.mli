(** Content addressing for memo-cache keys.

    A design point is identified by what it computes from — the
    application, the clustering, the machine configuration, the scheduler
    name — not by where it appears in a sweep. Digesting those values
    gives a key that is stable across sweeps and across processes. *)

val digest_value_result : 'a -> (string, Diag.t) result
(** Hex MD5 of the value's [Marshal] representation. The value must be
    marshallable (pure data, no closures) — true of the kernel IR,
    clusterings and machine configurations. Structurally equal values
    yield equal digests. An unmarshalable value (closure, abstract block)
    is an [INVALID_APP] diagnostic, never an escaped exception — the form
    worker tasks must use. *)

val digest_value : 'a -> string
(** {!digest_value_result} for known-pure data.
    @raise Invalid_argument on an unmarshalable value. *)

val combine : string list -> string
(** Fold several components (digests, names, parameters rendered as
    strings) into one key. Component boundaries are preserved, so
    [combine ["ab"; "c"]] and [combine ["a"; "bc"]] differ. *)
