(** Content addressing for memo-cache keys.

    A design point is identified by what it computes from — the
    application, the clustering, the machine configuration, the scheduler
    name — not by where it appears in a sweep. Digesting those values
    gives a key that is stable across sweeps and across processes. *)

val digest_value : 'a -> string
(** Hex MD5 of the value's [Marshal] representation. The value must be
    marshallable (pure data, no closures) — true of the kernel IR,
    clusterings and machine configurations. Structurally equal values
    yield equal digests. *)

val combine : string list -> string
(** Fold several components (digests, names, parameters rendered as
    strings) into one key. Component boundaries are preserved, so
    [combine ["ab"; "c"]] and [combine ["a"; "bc"]] differ. *)
