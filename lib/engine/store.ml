(* Append-only, checksummed, content-addressed on-disk record log.

   File layout:
     header  = magic (13 bytes) | u32 format_version | u32 schema
     record  = u32 key_len | u32 payload_len | key | payload | md5(body)
   where body is everything before the 16-byte MD5 trailer. The header is
   created atomically (tmp file + rename); records are appended with a
   single full write under a mutex, so a crash — even SIGKILL — can only
   ever leave a truncated *tail*, which [open_] quarantines instead of
   failing. *)

let magic = "MSCHED-STORE\x00"
let format_version = 1
let header_len = String.length magic + 8
let digest_len = 16

let u32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let read_u32 s off = Int32.to_int (String.get_int32_be s off)

let corrupt ?(severity = Diag.Warning) fmt = Diag.v ~severity Diag.Store_corrupt fmt

(* -- read-only scanning -------------------------------------------------- *)

type scanned = {
  s_schema : int;
  s_records : (string * string) list;  (** physical records, file order *)
  s_good_bytes : int;  (** offset of the first byte that cannot be trusted *)
  s_total_bytes : int;
  s_corruption : Diag.t option;
}

let scan_string ~path raw =
  let total = String.length raw in
  if total = 0 then
    Error (corrupt ~severity:Diag.Error "store %s is empty (no header)" path)
  else if
    total < header_len
    || not (String.equal (String.sub raw 0 (String.length magic)) magic)
  then
    Error
      (corrupt ~severity:Diag.Error
         "%s is not a store file (bad or truncated magic header)" path)
  else
    let version = read_u32 raw (String.length magic) in
    if version <> format_version then
      Error
        (corrupt ~severity:Diag.Error
           "store %s has format version %d; this build reads version %d" path
           version format_version)
    else begin
      let schema = read_u32 raw (String.length magic + 4) in
      let rec go acc off =
        if off >= total then (List.rev acc, off, None)
        else
          let remaining = total - off in
          let bad msg =
            ( List.rev acc,
              off,
              Some
                (corrupt
                   "store %s: %s at byte %d — quarantining the %d trailing \
                    bytes (the affected points will be recomputed)"
                   path msg off remaining) )
          in
          if remaining < 8 then bad "truncated record header"
          else
            let klen = read_u32 raw off and plen = read_u32 raw (off + 4) in
            if
              klen < 0 || plen < 0
              || klen + plen + 8 + digest_len > remaining
            then bad "truncated or corrupt record"
            else
              let body_len = 8 + klen + plen in
              let body = String.sub raw off body_len in
              let digest = String.sub raw (off + body_len) digest_len in
              if not (String.equal (Digest.string body) digest) then
                bad "record checksum mismatch"
              else
                let key = String.sub raw (off + 8) klen in
                let payload = String.sub raw (off + 8 + klen) plen in
                go ((key, payload) :: acc) (off + body_len + digest_len)
      in
      let records, good, corruption = go [] header_len in
      Ok
        {
          s_schema = schema;
          s_records = records;
          s_good_bytes = good;
          s_total_bytes = total;
          s_corruption = corruption;
        }
    end

let scan path =
  match In_channel.with_open_bin path In_channel.input_all with
  | raw -> Result.map (fun sc -> (sc, raw)) (scan_string ~path raw)
  | exception Sys_error msg ->
    Error (corrupt ~severity:Diag.Error "cannot read store %s: %s" path msg)

(* Live view of a scan: last record per key wins (a re-appended key
   supersedes an earlier — possibly quarantined-in-content — record),
   keys kept in first-seen order. *)
let live_of_records records =
  let table = Hashtbl.create 64 in
  let order =
    List.fold_left
      (fun order (key, payload) ->
        let seen = Hashtbl.mem table key in
        Hashtbl.replace table key payload;
        if seen then order else key :: order)
      [] records
  in
  (table, List.rev order)

(* -- the open store ------------------------------------------------------ *)

type t = {
  path : string;
  schema : int;
  fd : Unix.file_descr;
  mutex : Mutex.t;
  table : (string, string) Hashtbl.t;
  mutable order : string list;  (* first-seen key order, reversed *)
  mutable physical : int;  (* records physically in the file *)
  mutable warnings : Diag.t list;  (* quarantine diags from open, in order *)
  mutable closed : bool;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let path t = t.path
let schema t = t.schema
let warnings t = t.warnings

(* Atomic creation: the header lands under the final name only via
   rename, so no reader can ever observe a half-written header. *)
let create_file ~schema path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  output_string oc (u32 format_version);
  output_string oc (u32 schema);
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

let quarantine_path path = path ^ ".quarantine"

(* Move the untrusted tail bytes aside so nothing is silently destroyed,
   then let the caller truncate the store back to its last good record. *)
let quarantine_tail path raw ~from =
  let tail = String.sub raw from (String.length raw - from) in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
      (quarantine_path path)
  in
  output_string oc tail;
  close_out oc

let open_ ?(create = true) ~schema path =
  let fresh =
    (not (Sys.file_exists path))
    || (Unix.stat path).Unix.st_size = 0 (* a pre-touched empty file *)
  in
  if fresh && not create then
    Error (corrupt ~severity:Diag.Error "no store at %s" path)
  else begin
    if fresh then create_file ~schema path;
    match scan path with
    | Error d -> Error d
    | Ok (sc, raw) ->
      if sc.s_schema <> schema then
        Error
          (Diag.v Diag.Sweep_mismatch
             "store %s has schema version %d; this code reads schema %d — \
              refusing to mix them"
             path sc.s_schema schema)
      else begin
        let warnings =
          match sc.s_corruption with
          | None -> []
          | Some d ->
            quarantine_tail path raw ~from:sc.s_good_bytes;
            [ d ]
        in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        (match sc.s_corruption with
        | Some _ -> Unix.ftruncate fd sc.s_good_bytes
        | None -> ());
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        let table, order = live_of_records sc.s_records in
        Ok
          {
            path;
            schema;
            fd;
            mutex = Mutex.create ();
            table;
            order = List.rev order;
            physical = List.length sc.s_records;
            warnings;
            closed = false;
          }
      end
  end

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)
let find t key = with_lock t (fun () -> Hashtbl.find_opt t.table key)

let iter f t =
  (* [t.order] is newest-first; rev_map restores first-seen order *)
  let snapshot =
    with_lock t (fun () ->
        List.rev_map (fun key -> (key, Hashtbl.find t.table key)) t.order)
  in
  List.iter (fun (key, payload) -> f ~key ~payload) snapshot

let write_fully fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let append t ~key ~payload =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Engine.Store.append: store is closed";
      match Hashtbl.find_opt t.table key with
      | Some live when String.equal live payload -> ()  (* already durable *)
      | existing ->
        let buf =
          Buffer.create (8 + String.length key + String.length payload)
        in
        Buffer.add_string buf (u32 (String.length key));
        Buffer.add_string buf (u32 (String.length payload));
        Buffer.add_string buf key;
        Buffer.add_string buf payload;
        let body = Buffer.contents buf in
        write_fully t.fd (body ^ Digest.string body);
        Hashtbl.replace t.table key payload;
        t.physical <- t.physical + 1;
        if existing = None then t.order <- key :: t.order)

(* Deliberately lock-free: fsync needs no shared state, so a SIGINT/SIGTERM
   handler may call this while worker domains are mid-append without any
   risk of deadlock. A record torn by the subsequent exit is exactly the
   truncated tail [open_] quarantines. *)
let checkpoint t =
  if not t.closed then
    try Unix.fsync t.fd with Unix.Unix_error _ -> ()

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
        (try Unix.close t.fd with Unix.Unix_error _ -> ());
        t.closed <- true
      end)

(* -- offline inspection -------------------------------------------------- *)

type verify_report = {
  v_schema : int;
  v_physical_records : int;
  v_distinct_keys : int;
  v_file_bytes : int;
  v_intact_bytes : int;
  v_corruption : Diag.t option;
}

let verify path =
  Result.map
    (fun (sc, _raw) ->
      let table, _ = live_of_records sc.s_records in
      {
        v_schema = sc.s_schema;
        v_physical_records = List.length sc.s_records;
        v_distinct_keys = Hashtbl.length table;
        v_file_bytes = sc.s_total_bytes;
        v_intact_bytes = sc.s_good_bytes;
        v_corruption = sc.s_corruption;
      })
    (scan path)

let contents path =
  Result.map
    (fun (sc, _raw) ->
      let table, order = live_of_records sc.s_records in
      List.map (fun key -> (key, Hashtbl.find table key)) order)
    (scan path)

type gc_report = {
  gc_kept : int;
  gc_dropped_records : int;
  gc_bytes_before : int;
  gc_bytes_after : int;
}

(* Compaction: rewrite the live view (last record per key, corrupt tail
   dropped) into a tmp file and rename it over the store — the same
   atomicity as creation, so a crash mid-gc leaves the original intact. *)
let gc path =
  match scan path with
  | Error d -> Error d
  | Ok (sc, _raw) ->
    let table, order = live_of_records sc.s_records in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc magic;
    output_string oc (u32 format_version);
    output_string oc (u32 sc.s_schema);
    List.iter
      (fun key ->
        let payload = Hashtbl.find table key in
        let buf = Buffer.create (8 + String.length key + String.length payload) in
        Buffer.add_string buf (u32 (String.length key));
        Buffer.add_string buf (u32 (String.length payload));
        Buffer.add_string buf key;
        Buffer.add_string buf payload;
        let body = Buffer.contents buf in
        output_string oc body;
        output_string oc (Digest.string body))
      order;
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp path;
    let after = (Unix.stat path).Unix.st_size in
    Ok
      {
        gc_kept = List.length order;
        gc_dropped_records = List.length sc.s_records - List.length order;
        gc_bytes_before = sc.s_total_bytes;
        gc_bytes_after = after;
      }
