(** Per-task timing and progress instrumentation for pool runs.

    One [Stats.t] accumulates, thread-safely, a labelled timing series
    (label = scheduler name in the DSE engine): task count, wall and CPU
    seconds, min/max wall per task — plus cache hit/miss totals reported
    by the sweep. Feed it to [Report.Dse.sweep ~stats] / [Report.Fuzz.run
    ~stats] and print it with {!pp} (the [--stats] CLI flag). *)

type entry = {
  label : string;
  count : int;  (** tasks run under this label *)
  wall : float;  (** summed wall-clock seconds *)
  cpu : float;  (** summed process CPU seconds (all domains) *)
  min_wall : float;
  max_wall : float;
}

type t

val create : unit -> t

val time : t -> label:string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its wall/CPU time to [label]. Re-raises
    whatever the thunk raises (the timing is still recorded). *)

val record : t -> label:string -> wall:float -> cpu:float -> unit
(** Charge an externally measured duration to [label]. *)

val note_cache : t -> hits:int -> misses:int -> unit
(** Accumulate cache counters observed by one sweep. *)

val note_store : t -> replayed:int -> quarantined:int -> unit
(** Accumulate on-disk store counters observed by one sweep: points
    rehydrated from the result store into the memo cache, and records
    quarantined (corrupt, truncated, or failing re-validation). *)

val entries : t -> entry list
(** Sorted by label. *)

val tasks_run : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
val store_replayed : t -> int
val store_quarantined : t -> int
val total_wall : t -> float

val pp : Format.formatter -> t -> unit
(** Table of per-label count / total / mean / min / max wall time, CPU
    time, and the cache totals when any were noted. *)
