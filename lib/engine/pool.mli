(** Fixed-size [Domain]-based worker pool with deterministic result order.

    [run ~jobs tasks] evaluates every task exactly once and returns the
    results in task order, whatever the interleaving of the workers: slot
    [i] of the output always holds the result of [tasks.(i)]. With
    [~jobs:1] (the default) the tasks run sequentially in the calling
    domain — the reference path parallel runs are compared against.

    Tasks must not themselves spawn domains per task and should be pure
    (or touch only domain-safe state): the pool guarantees each task runs
    once, but makes no promise about which domain runs it. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to this process. *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] evaluates the tasks on [min jobs (length tasks)]
    domains (the caller counts as one worker). If a task raises, every
    task still completes, then the exception of the lowest-indexed
    failing task is re-raised with its original backtrace — the same
    observable failure whatever the job count. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated on the pool, order
    preserved. *)
