(** Fixed-size [Domain]-based worker pool with deterministic result order
    and per-task fault isolation.

    [run ~jobs tasks] evaluates every task exactly once and returns the
    results in task order, whatever the interleaving of the workers: slot
    [i] of the output always holds the result of [tasks.(i)]. With
    [~jobs:1] (the default) the tasks run sequentially in the calling
    domain — the reference path parallel runs are compared against.

    [run_results] is the fault-isolated variant: one crashing, timed-out
    or fault-injected task yields an [Error] slot carrying a structured
    {!Diag.t} (with backtrace) while every other task's result is
    returned — one bad job never aborts a sweep.

    Tasks must not themselves spawn domains per task and should be pure
    (or touch only domain-safe state): the pool guarantees each task runs
    once (plus bounded retries when requested), but makes no promise
    about which domain runs it. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to this process. *)

exception Deadline_exceeded of float
(** Raised by {!checkpoint} inside a task that ran past its cooperative
    deadline; the payload is the overrun in seconds. *)

val checkpoint : unit -> unit
(** Cooperative cancellation point. Inside a pool task started with
    [~deadline_s], raises {!Deadline_exceeded} once the deadline has
    passed; a no-op everywhere else. Long-running tasks should call this
    at loop boundaries. *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] evaluates the tasks on [min jobs (length tasks)]
    domains (the caller counts as one worker). If a task raises, every
    task still completes, then the exception of the lowest-indexed
    failing task is re-raised with its original backtrace — the same
    observable failure whatever the job count.

    An empty task array returns [[||]] without spawning any domain.
    @raise Invalid_argument if [jobs < 1] (callers mapping "0 = auto"
    must resolve it with {!recommended_jobs} first). *)

val run_results :
  ?jobs:int ->
  ?deadline_s:float ->
  ?retries:int ->
  (unit -> 'a) array ->
  ('a, Diag.t) result array
(** Fault-isolated [run]: slot [i] is [Ok v] or [Error diag], where the
    diagnostic is [Task_timeout] for a cooperative-deadline overrun
    (see {!checkpoint}), [Fault_injected] for an {!Faults.Injected}
    fault, and [Task_crashed] (with backtrace) otherwise.

    [~deadline_s] arms a cooperative per-task deadline. [~retries]
    (default 0) re-runs a task that failed with an injected fault up to
    that many times — injected faults are transient by construction, so
    bounded retry absorbs them; crashes and deadline overruns are never
    retried.
    @raise Invalid_argument if [jobs < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated on the pool, order
    preserved. *)
