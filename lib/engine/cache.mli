(** Content-addressed memo cache, shared between sweeps and safe to use
    from pool workers.

    Keys are digests (see {!Key}); values are whatever the task computed.
    A key, once added, is never overwritten — the first value interned
    wins — so repeated design points across sweeps are scheduled once and
    every later lookup sees the identical value. Hit/miss counters feed
    {!Stats} and the [--stats] CLI output. *)

type 'a t

val create : ?size_hint:int -> unit -> 'a t

val find : 'a t -> string -> 'a option
(** Thread-safe lookup; bumps the hit or miss counter. Carries the
    {!Faults} injection site ["cache"]: under an armed fault plan a
    lookup may raise [Faults.Injected]. *)

val add : 'a t -> string -> 'a -> unit
(** Intern a value; a no-op if the key is already present. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key f] returns the cached value, or runs [f] and
    interns its result. [f] runs outside the lock, so two workers racing
    on the same key may both compute — but both then observe the single
    interned value, keeping results consistent.

    If [f] raises, the miss counter is rolled back before the exception
    propagates, so the retry that eventually fills the key counts one
    miss, not two. An injected lookup fault ([Faults] site ["cache"])
    degrades to a counter-neutral miss: the value is recomputed and
    interned instead of the fault escaping. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int

val clear : 'a t -> unit
(** Drop every entry and reset the counters.

    Interaction with a live on-disk store (see {!Store} and
    [Report.Dse.Durable]): [clear] empties {e only} the in-memory table —
    it never touches the store, so memory and disk cannot silently
    diverge. A store-backed sweep replays the persisted points back into
    the cache at the start of every run, so after a [clear] the next
    durable sweep repopulates the cache from disk with zero
    recomputation. *)
