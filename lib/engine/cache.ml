type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size_hint = 256) () =
  { mutex = Mutex.create (); table = Hashtbl.create size_hint;
    hits = 0; misses = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  Faults.hit "cache";
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some _ as hit ->
        t.hits <- t.hits + 1;
        hit
      | None ->
        t.misses <- t.misses + 1;
        None)

(* First value in wins; returns the canonical stored value. *)
let intern t key v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some existing -> existing
      | None ->
        Hashtbl.add t.table key v;
        v)

let add t key v = ignore (intern t key v)

let find_or_add t key f =
  match find t key with
  | Some v -> v
  | None -> (
    (* [f] runs outside the lock. If it raises, roll the miss counter
       back: the lookup that retries this key will count the miss again,
       so one logical computation is never counted as two misses. *)
    match f () with
    | v -> intern t key v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      with_lock t (fun () -> t.misses <- t.misses - 1);
      Printexc.raise_with_backtrace e bt)
  (* An injected lookup fault (Faults site "cache") degrades to a miss:
     compute without touching the counters and intern the result. *)
  | exception Faults.Injected _ -> intern t key (f ())

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
