(** Durable, checksummed, content-addressed on-disk record log.

    One store is one append-only file: a versioned header (format magic +
    format version + caller-chosen schema version) followed by records,
    each framed as [u32 key-length | u32 payload-length | key | payload]
    with a 16-byte MD5 trailer over the frame. The header is created
    atomically (tmp file + rename); each record is appended with a single
    full write under a mutex, so a crash — including SIGKILL mid-write —
    can only leave a truncated {e tail}.

    {!open_} never fails on a damaged tail: the untrusted bytes are moved
    to a [<path>.quarantine] sidecar, the store is truncated back to its
    last intact record, and the event is surfaced as a [STORE_CORRUPT]
    {!Diag.t} warning in {!warnings} — the caller recomputes whatever was
    lost. A destroyed header, a foreign format version, or a schema
    mismatch is a hard error: nothing in the file can be trusted.

    Keys are content digests (see {!Key}); the {e last} record for a key
    is its live value, so re-appending a key supersedes an earlier record
    (how quarantined-in-content records are repaired). Appending a key
    whose live payload is byte-identical is a no-op, keeping repeated
    sweeps from growing the file. {!gc} compacts to one record per key.

    Thread-safety: every operation on an open store is mutex-protected
    except {!checkpoint}, which is deliberately lock-free (fsync only) so
    signal handlers can flush without deadlocking against a mid-append
    worker domain. *)

type t

val format_version : int
(** Version of the file framing itself (header + record layout). *)

val open_ : ?create:bool -> schema:int -> string -> (t, Diag.t) result
(** Open (or with [create], default [true], create) the store at a path.
    [schema] is the caller's payload schema version, checked against the
    header. Tail corruption is quarantined (see above) and reported via
    {!warnings}; header/format/schema problems are returned as [Error]
    ([STORE_CORRUPT] or [SWEEP_MISMATCH] diagnostics). An existing empty
    file is treated as a fresh store. *)

val path : t -> string
val schema : t -> int

val warnings : t -> Diag.t list
(** Quarantine diagnostics collected while opening, in file order. *)

val length : t -> int
(** Distinct live keys. *)

val mem : t -> string -> bool
val find : t -> string -> string option
(** The live (latest) payload for a key. *)

val iter : (key:string -> payload:string -> unit) -> t -> unit
(** Live records in first-seen key order. *)

val append : t -> key:string -> payload:string -> unit
(** Durably append one record (single full write; no userspace
    buffering). A no-op when the key's live payload is identical; a new
    payload for an existing key supersedes it.
    @raise Invalid_argument on a closed store; I/O errors propagate as
    [Unix.Unix_error] for the caller's firewall to classify. *)

val checkpoint : t -> unit
(** [fsync] the store — the durability barrier. Lock-free and safe to
    call from a signal handler; I/O errors are swallowed. *)

val close : t -> unit
(** Checkpoint and release the descriptor. Idempotent. *)

(** {2 Offline inspection (read-only; never mutates the file)} *)

type verify_report = {
  v_schema : int;
  v_physical_records : int;  (** records in the file, duplicates included *)
  v_distinct_keys : int;
  v_file_bytes : int;
  v_intact_bytes : int;  (** prefix that passes every integrity check *)
  v_corruption : Diag.t option;  (** the quarantine diagnostic, if any *)
}

val verify : string -> (verify_report, Diag.t) result
(** Walk every record, checking framing and checksums. *)

val contents : string -> ((string * string) list, Diag.t) result
(** Live [(key, payload)] records in first-seen order; a corrupt tail is
    ignored (it would be quarantined by {!open_}). *)

type gc_report = {
  gc_kept : int;
  gc_dropped_records : int;  (** superseded duplicates + corrupt tail *)
  gc_bytes_before : int;
  gc_bytes_after : int;
}

val gc : string -> (gc_report, Diag.t) result
(** Compact to one record per key (atomic tmp-file + rename; a crash
    mid-gc leaves the original store untouched). *)
