let digest_value v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let combine parts =
  Digest.to_hex
    (Digest.string
       (String.concat ""
          (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts)))
