let digest_value_result v =
  match Marshal.to_string v [] with
  | repr -> Ok (Digest.to_hex (Digest.string repr))
  | exception Invalid_argument msg ->
    (* closures, abstract blocks, custom values without serialisers:
       surface a structured diagnostic instead of letting Invalid_argument
       escape from deep inside a worker *)
    Error
      (Diag.v Diag.Invalid_app
         "value is not content-addressable (%s): keys must be pure data"
         msg)

let digest_value v =
  match digest_value_result v with
  | Ok d -> d
  | Error d -> invalid_arg ("Engine.Key.digest_value: " ^ Diag.to_string d)

let combine parts =
  Digest.to_hex
    (Digest.string
       (String.concat ""
          (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts)))
