type entry = {
  label : string;
  count : int;
  wall : float;
  cpu : float;
  min_wall : float;
  max_wall : float;
}

type acc = {
  mutable count : int;
  mutable wall : float;
  mutable cpu : float;
  mutable min_wall : float;
  mutable max_wall : float;
}

type t = {
  mutex : Mutex.t;
  table : (string, acc) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable store_replayed : int;
  mutable store_quarantined : int;
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 8;
    cache_hits = 0; cache_misses = 0;
    store_replayed = 0; store_quarantined = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~label ~wall ~cpu =
  with_lock t (fun () ->
      let acc =
        match Hashtbl.find_opt t.table label with
        | Some acc -> acc
        | None ->
          let acc =
            { count = 0; wall = 0.; cpu = 0.;
              min_wall = infinity; max_wall = neg_infinity }
          in
          Hashtbl.add t.table label acc;
          acc
      in
      acc.count <- acc.count + 1;
      acc.wall <- acc.wall +. wall;
      acc.cpu <- acc.cpu +. cpu;
      if wall < acc.min_wall then acc.min_wall <- wall;
      if wall > acc.max_wall then acc.max_wall <- wall)

let time t ~label f =
  let w0 = Unix.gettimeofday () and c0 = Sys.time () in
  let finish () =
    record t ~label ~wall:(Unix.gettimeofday () -. w0) ~cpu:(Sys.time () -. c0)
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    finish ();
    Printexc.raise_with_backtrace e bt

let note_cache t ~hits ~misses =
  with_lock t (fun () ->
      t.cache_hits <- t.cache_hits + hits;
      t.cache_misses <- t.cache_misses + misses)

let note_store t ~replayed ~quarantined =
  with_lock t (fun () ->
      t.store_replayed <- t.store_replayed + replayed;
      t.store_quarantined <- t.store_quarantined + quarantined)

let entries t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun label (a : acc) es ->
          { label; count = a.count; wall = a.wall; cpu = a.cpu;
            min_wall = (if a.count = 0 then 0. else a.min_wall);
            max_wall = (if a.count = 0 then 0. else a.max_wall) }
          :: es)
        t.table [])
  |> List.sort (fun a b -> compare a.label b.label)

let tasks_run t =
  List.fold_left (fun n (e : entry) -> n + e.count) 0 (entries t)

let cache_hits t = with_lock t (fun () -> t.cache_hits)
let cache_misses t = with_lock t (fun () -> t.cache_misses)
let store_replayed t = with_lock t (fun () -> t.store_replayed)
let store_quarantined t = with_lock t (fun () -> t.store_quarantined)

let total_wall t =
  List.fold_left (fun s (e : entry) -> s +. e.wall) 0. (entries t)

let ms x = x *. 1000.

let pp ppf t =
  let es = entries t in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-10s %6s %10s %10s %10s %10s %10s@,"
    "label" "tasks" "wall ms" "mean ms" "min ms" "max ms" "cpu ms";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10s %6d %10.2f %10.3f %10.3f %10.3f %10.2f@,"
        e.label e.count (ms e.wall)
        (if e.count = 0 then 0. else ms (e.wall /. float_of_int e.count))
        (ms e.min_wall) (ms e.max_wall) (ms e.cpu))
    es;
  Format.fprintf ppf "total: %d tasks, %.2f ms wall" (tasks_run t)
    (ms (total_wall t));
  let h = cache_hits t and m = cache_misses t in
  if h + m > 0 then
    Format.fprintf ppf "; cache: %d hits / %d misses (%.0f%% hit rate)" h m
      (100. *. float_of_int h /. float_of_int (h + m));
  let r = store_replayed t and q = store_quarantined t in
  if r + q > 0 then
    Format.fprintf ppf "; store: %d replayed / %d quarantined" r q;
  Format.fprintf ppf "@]"
