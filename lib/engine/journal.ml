(* Write-ahead sweep manifest on top of Store: the first record binds the
   journal to one sweep identity; every later record is a completion mark
   for one design-point key. *)

let schema = 2
let identity_key = "@sweep-identity"

type t = { store : Store.t; identity : string }

let short d = if String.length d <= 12 then d else String.sub d 0 12

let open_ ?create ~identity path =
  match Store.open_ ?create ~schema path with
  | Error d -> Error d
  | Ok store -> (
    match Store.find store identity_key with
    | None ->
      (* fresh (or fully quarantined) journal: claim it for this sweep *)
      Store.append store ~key:identity_key ~payload:identity;
      Ok { store; identity }
    | Some id when String.equal id identity -> Ok { store; identity }
    | Some id ->
      Store.close store;
      Error
        (Diag.v Diag.Sweep_mismatch
           "journal %s belongs to a different sweep (identity %s…, this \
            sweep is %s…): refusing to resume — the application, axes, \
            scheduler set or code version changed; use a fresh --store path"
           path (short id) (short identity)))

let identity t = t.identity
let warnings t = Store.warnings t.store

let mark t key =
  if String.equal key identity_key then
    invalid_arg "Engine.Journal.mark: reserved key";
  Store.append t.store ~key ~payload:""

let is_marked t key =
  (not (String.equal key identity_key)) && Store.mem t.store key

let marked t =
  Store.length t.store - (if Store.mem t.store identity_key then 1 else 0)

let checkpoint t = Store.checkpoint t.store
let close t = Store.close t.store

type info = { identity_prefix : string; marks : int; corruption : Diag.t option }

let info path =
  match Store.verify path with
  | Error d -> Error d
  | Ok v -> (
    match Store.contents path with
    | Error d -> Error d
    | Ok records ->
      let identity_prefix =
        match List.assoc_opt identity_key records with
        | Some id -> short id
        | None -> "<unclaimed>"
      in
      let marks =
        List.length
          (List.filter (fun (k, _) -> not (String.equal k identity_key)) records)
      in
      Ok { identity_prefix; marks; corruption = v.Store.v_corruption })
