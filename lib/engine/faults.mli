(** Deterministic seeded fault injection.

    A {!plan} decides, purely from [(seed, site, n)], whether the [n]-th
    visit to an injection site raises {!Injected}: the set of firing
    visits is reproducible from the seed alone, whatever domain or task
    reaches the site (under parallel runs the *assignment* of firings to
    tasks follows the interleaving, but the firing count for a given
    number of visits does not). While no plan is armed every site is a
    single atomic load — the production fast path.

    Injection sites in this codebase:
    - ["pool"] — entry of every {!Pool} task;
    - ["cache"] — {!Cache.find} lookups ({!Cache.find_or_add} degrades an
      injected lookup fault to a miss and recomputes);
    - ["sched"] — entry of the Basic/DS/CDS scheduler [_diag] paths,
      which convert the fault into a [Fault_injected] diagnostic. *)

exception Injected of string
(** [Injected "site#n"] — the injected failure. Transient by
    construction: the visit counter has advanced, so a bounded retry
    (see {!Pool.run_results}) usually succeeds. *)

type plan = { seed : int; rate : float; sites : string list }

val plan : ?sites:string list -> ?rate:float -> seed:int -> unit -> plan
(** [sites = []] (default) injects at every site; [rate] (default 0.05)
    is the per-visit firing probability.
    @raise Invalid_argument if [rate] is outside [0, 1]. *)

val arm : plan -> unit
(** Install the plan globally and reset the visit counters — a fresh
    [arm] with the same plan reproduces the same firing sequence. *)

val disarm : unit -> unit
val armed : unit -> plan option

val hit : string -> unit
(** [hit site] registers a visit; raises {!Injected} when the armed plan
    fires. A no-op when disarmed or when the site is filtered out. *)

val injected_count : unit -> int
(** Faults fired since the last {!arm}. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] arms [p], runs [f], and disarms whatever happens. *)
