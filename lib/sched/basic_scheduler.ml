module IE = Kernel_ir.Info_extractor

let footprints app clustering =
  IE.profiles app clustering |> List.map Ds_formula.footprint_basic

let schedule_reference config app clustering =
  match Context_scheduler.plan config app clustering with
  | Error e -> Error ("basic: " ^ e)
  | Ok ctx_plan -> (
    let fps = footprints app clustering in
    match
      List.find_opt (fun fp -> fp > config.Morphosys.Config.fb_set_size) fps
    with
    | Some fp ->
      Error
        (Printf.sprintf
           "basic: cluster footprint %dw exceeds FB set of %dw (no \
            replacement)"
           fp config.Morphosys.Config.fb_set_size)
    | None ->
      Ok
        (Step_builder.build config app clustering ~rf:1 ~ctx_plan
           ~generators:(Xfer_gen.store_everything app clustering)
           ~scheduler:"basic"))

let schedule_ctx config (ctx : Sched_ctx.t) =
  let app = Sched_ctx.app ctx and clustering = Sched_ctx.clustering ctx in
  match Context_scheduler.plan_ctx config (Sched_ctx.analysis ctx) with
  | Error e -> Error ("basic: " ^ e)
  | Ok ctx_plan -> (
    let fps = Sched_ctx.basic_footprints_list ctx in
    match
      List.find_opt (fun fp -> fp > config.Morphosys.Config.fb_set_size) fps
    with
    | Some fp ->
      Error
        (Printf.sprintf
           "basic: cluster footprint %dw exceeds FB set of %dw (no \
            replacement)"
           fp config.Morphosys.Config.fb_set_size)
    | None ->
      Ok
        (Step_builder.build config app clustering ~rf:1 ~ctx_plan
           ~generators:
             (Xfer_gen.store_everything_ctx (Sched_ctx.analysis ctx))
           ~scheduler:"basic"))

let schedule config app clustering =
  schedule_ctx config (Sched_ctx.make app clustering)
