module IE = Kernel_ir.Info_extractor

let footprints app clustering =
  IE.profiles app clustering |> List.map Ds_formula.footprint_basic

let schedule_reference config app clustering =
  match Context_scheduler.plan config app clustering with
  | Error e -> Error ("basic: " ^ e)
  | Ok ctx_plan -> (
    let fps = footprints app clustering in
    match
      List.find_opt (fun fp -> fp > config.Morphosys.Config.fb_set_size) fps
    with
    | Some fp ->
      Error
        (Printf.sprintf
           "basic: cluster footprint %dw exceeds FB set of %dw (no \
            replacement)"
           fp config.Morphosys.Config.fb_set_size)
    | None ->
      Ok
        (Step_builder.build config app clustering ~rf:1 ~ctx_plan
           ~generators:(Xfer_gen.store_everything app clustering)
           ~scheduler:"basic"))

(* Index of the first footprint that does not fit the FB set, if any. *)
let overflow_cluster config fps =
  let rec go i = function
    | [] -> None
    | fp :: rest ->
      if fp > config.Morphosys.Config.fb_set_size then Some (i, fp)
      else go (i + 1) rest
  in
  go 0 fps

(* The single implementation: every public entry point below is a thin
   shim over [run]. *)
let run (ctx : Sched_ctx.t) (config : Morphosys.Config.t) =
  match Engine.Faults.hit "sched" with
  | exception Engine.Faults.Injected site ->
    Error
      (Diag.v ~scheduler:"basic" Diag.Fault_injected
         "injected fault at scheduler entry (%s)" site)
  | () -> (
    let app = Sched_ctx.app ctx and clustering = Sched_ctx.clustering ctx in
    match Context_scheduler.plan_of_analysis config (Sched_ctx.analysis ctx) with
    | Error d -> Error (Diag.with_scheduler "basic" d)
    | Ok ctx_plan -> (
      match overflow_cluster config (Sched_ctx.basic_footprints_list ctx) with
      | Some (cid, fp) ->
        Error
          (Diag.v ~scheduler:"basic" ~cluster:cid Diag.Fb_overflow
             "cluster footprint %dw exceeds FB set of %dw (no replacement)"
             fp config.Morphosys.Config.fb_set_size)
      | None ->
        Ok
          (Step_builder.build config app clustering ~rf:1 ~ctx_plan
             ~generators:
               (Xfer_gen.store_everything_ctx (Sched_ctx.analysis ctx))
             ~scheduler:"basic")))

(* compat shims *)
let schedule_ctx_diag config ctx = run ctx config
let schedule_ctx config ctx = Result.map_error Diag.to_string (run ctx config)
let schedule_diag config app clustering = run (Sched_ctx.make app clustering) config

let schedule config app clustering =
  Result.map_error Diag.to_string (run (Sched_ctx.make app clustering) config)

let scheduler : Scheduler_intf.t =
  (module struct
    let name = "basic"

    let describe =
      "Basic Scheduler (DATE'99 baseline): no data reuse, RF fixed at 1"

    let run = run
  end)

let () = Scheduler_registry.register scheduler
