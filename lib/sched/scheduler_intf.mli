(** First-class scheduler interface.

    A {e scheduler} is the unit the paper's evaluation compares (Basic vs.
    DS vs. CDS, Figure 6 / Table 1): a policy that maps one
    [(application, clustering)] scheduling context and one machine
    configuration to either a complete {!Schedule.t} or a structured
    {!Diag.t} explaining why the policy is infeasible there.

    Every scheduler in the stack implements this one module type and is a
    first-class value ({!t}) registered in {!Scheduler_registry}; the
    pipeline, the DSE sweep, the fuzzers and the CLI all dispatch through
    it. The historical per-scheduler entry points
    ([schedule] / [schedule_ctx] / [*_diag]) survive only as thin,
    byte-identical compat shims over {!S.run}. *)

module type S = sig
  val name : string
  (** Unique registry key, e.g. ["basic"], ["ds"], ["cds"]. Also the
      [scheduler] tag carried by schedules and diagnostics. *)

  val describe : string
  (** One human-readable line for listings ([msched schedulers]). *)

  val run : Sched_ctx.t -> Morphosys.Config.t -> (Schedule.t, Diag.t) result
  (** The canonical entry point: schedule the context's application on the
      given machine. Never raises on malformed-but-constructed input —
      every expected failure is a diagnostic. *)
end

type t = (module S)
(** A scheduler as a first-class value. *)

val name : t -> string
val describe : t -> string
val run : t -> Sched_ctx.t -> Morphosys.Config.t -> (Schedule.t, Diag.t) result
