(* The registry is populated by module-initialisation side effects (each
   scheduler registers itself when its compilation unit is linked; the
   sched and cds libraries are built with -linkall so registration cannot
   be dropped by the linker). Registration is serialised by a mutex;
   lookups after initialisation are read-only and safe to share across
   the engine's worker domains. *)

let lock = Mutex.create ()
let table : (string, Scheduler_intf.t) Hashtbl.t = Hashtbl.create 8

let register m =
  let name = Scheduler_intf.name m in
  Mutex.protect lock (fun () ->
      if Hashtbl.mem table name then
        invalid_arg
          (Printf.sprintf "Scheduler_registry.register: duplicate scheduler %S"
             name)
      else Hashtbl.add table name m)

let find name = Hashtbl.find_opt table name

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort compare

let all () =
  (* sorted by name: deterministic regardless of link / registration order *)
  List.filter_map (fun n -> Hashtbl.find_opt table n) (names ())

let mem name = Hashtbl.mem table name

let unknown name =
  Diag.v Diag.Invalid_config "unknown scheduler %S (have: %s)" name
    (String.concat ", " (names ()))

let find_exn name =
  match find name with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Scheduler_registry.find_exn: unknown scheduler %S \
                       (have: %s)"
         name
         (String.concat ", " (names ())))

let run name ctx config =
  match find name with
  | Some m -> Scheduler_intf.run m ctx config
  | None -> Error (unknown name)
