(** Scheduling context: a {!Kernel_ir.Analysis} context extended with the
    precomputed per-cluster DS-formula results every scheduler run needs —
    computed once per [(application, clustering)] pair and shared by the
    Basic, Data and Complete Data scheduler paths (and across design points
    of a DSE sweep, since none of it depends on the machine
    configuration). Immutable, hence safe to share across worker domains. *)

type t = {
  analysis : Kernel_ir.Analysis.t;
  splits : (int * int) array;
      (** by cluster id: {!Ds_formula.split} with no pinned objects — the
          [(per_iteration, constant)] pair the reuse-factor bound uses *)
  footprints : int array;
      (** by cluster id: {!Ds_formula.closed_form}, no pinned objects *)
  basic_footprints : int array;
      (** by cluster id: {!Ds_formula.footprint_basic} (no replacement) *)
}

val make : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering -> t
(** Builds the analysis context and the formula arrays.
    @raise Invalid_argument under the {!Kernel_ir.Analysis.make}
    conditions (non-consecutive cluster ids, uncovered kernels). *)

val of_analysis : Kernel_ir.Analysis.t -> t

val analysis : t -> Kernel_ir.Analysis.t
val app : t -> Kernel_ir.Application.t
val clustering : t -> Kernel_ir.Cluster.clustering

val profile : t -> int -> Kernel_ir.Info_extractor.cluster_profile
(** By cluster id. @raise Invalid_argument on an unknown id. *)

val splits_list : t -> (int * int) list
(** Equal to [Data_scheduler.footprints_split app clustering]. *)

val footprints_list : t -> int list
val basic_footprints_list : t -> int list
