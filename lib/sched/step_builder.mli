(** Shared machinery turning per-cluster transfer lists into the pipelined
    step sequence all three schedulers (Basic, DS, CDS) emit.

    Execution order is rounds x clusters. While execution step [s] computes,
    the DMA channel (a) stores the outliving results of step [s-1], (b)
    loads the data of step [s+1] and (c) loads the contexts of step [s+1].
    A transfer may only overlap the computation if it does not touch the
    computing cluster's FB set; offending transfers are emitted in a
    standalone DMA step between the two computations (this happens at the
    round wrap-around when the cluster count is odd). *)

type generators = {
  loads :
    Kernel_ir.Cluster.t -> round:int -> iters:int -> base_iter:int ->
    Morphosys.Dma.t list;
      (** data to bring into the cluster's set before it runs (one transfer
          per object instance, labelled ["name@iter"]) *)
  stores :
    Kernel_ir.Cluster.t -> round:int -> iters:int -> base_iter:int ->
    Morphosys.Dma.t list;
      (** results to drain from the cluster's set after it runs *)
}

type selectors = {
  load_objects : Kernel_ir.Cluster.t -> round:int -> Kernel_ir.Data.t list;
      (** the objects behind [generators.loads] for that cluster/round *)
  store_objects : Kernel_ir.Cluster.t -> round:int -> Kernel_ir.Data.t list;
}
(** The object-level view behind a {!generators}: the transfer lists are
    one instance per (object, iteration) — one total for an invariant
    object — so {!estimate} can cost a schedule from the objects alone. *)

val build :
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  rf:int ->
  ctx_plan:Context_scheduler.plan ->
  generators:generators ->
  scheduler:string ->
  Schedule.t
(** @raise Invalid_argument if [rf < 1]. [cross_set] is recorded in the
    schedule for the validator (default false). *)

val estimate :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  rf:int ->
  ctx_plan:Context_scheduler.plan ->
  selectors:selectors ->
  int
(** Exactly [Schedule_cost.estimate config (build ...)] for the generators
    derived from [selectors], computed without materialising any transfer
    list — the cheap inner loop of the schedulers' RF searches (they rank
    every candidate RF with this and build only the winning schedule).
    The equivalence suite checks the agreement on random applications.
    @raise Invalid_argument if [rf < 1]. *)
