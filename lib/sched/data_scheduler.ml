module IE = Kernel_ir.Info_extractor

let log_src = Logs.Src.create "sched" ~doc:"Data scheduler decisions"

module Log = (val Logs.src_log log_src)

let default_efficiency = 0.85

let footprints app clustering =
  IE.profiles app clustering |> List.map (fun p -> Ds_formula.closed_form p)

let footprints_split app clustering =
  IE.profiles app clustering |> List.map (fun p -> Ds_formula.split p)

let packable_words efficiency (config : Morphosys.Config.t) =
  if efficiency <= 0. || efficiency > 1. then
    invalid_arg "Data_scheduler: alloc_efficiency must be in (0, 1]";
  int_of_float (efficiency *. float_of_int config.fb_set_size)

let reuse_factor_of_splits ~alloc_efficiency (config : Morphosys.Config.t)
    ~iterations splits =
  Reuse_factor.common_split
    ~fb_set_size:(packable_words alloc_efficiency config)
    ~footprints:splits ~iterations

let reuse_factor ?(alloc_efficiency = default_efficiency)
    (config : Morphosys.Config.t) app clustering =
  reuse_factor_of_splits ~alloc_efficiency config
    ~iterations:app.Kernel_ir.Application.iterations
    (footprints_split app clustering)

(* Build one schedule per candidate reuse factor and keep the fastest (ties
   go to the larger RF, which frees more CM bandwidth). The largest
   memory-allowed RF is not always fastest: batching RF iterations of
   transfers can exceed what an imbalanced pipeline can hide. *)
let best_by_rf config ~rf_max ~build =
  let candidates = List.init rf_max (fun i -> i + 1) in
  let best =
    List.fold_left
      (fun acc rf ->
        let schedule = build rf in
        let cycles = Schedule_cost.estimate config schedule in
        match acc with
        | Some (_, best_cycles) when best_cycles < cycles -> acc
        | _ -> Some (schedule, cycles))
      None candidates
  in
  match best with
  | Some (schedule, cycles) ->
    Log.debug (fun m ->
        m "chose rf=%d (%d cycles) out of rf_max=%d"
          schedule.Schedule.rf cycles rf_max);
    schedule
  | None -> invalid_arg "Data_scheduler.best_by_rf: rf_max must be >= 1"

let schedule_reference ?(alloc_efficiency = default_efficiency) config app
    clustering =
  match Context_scheduler.plan config app clustering with
  | Error e -> Error ("ds: " ^ e)
  | Ok ctx_plan -> (
    match reuse_factor ~alloc_efficiency config app clustering with
    | 0 ->
      Error
        (Printf.sprintf
           "ds: some cluster's DS(C)=%dw exceeds the packable %dw of the FB \
            set"
           (Msutil.Listx.max_by (fun x -> x) (footprints app clustering))
           (packable_words alloc_efficiency config))
    | rf_max ->
      Ok
        (best_by_rf config ~rf_max ~build:(fun rf ->
             Step_builder.build config app clustering ~rf ~ctx_plan
               ~generators:(Xfer_gen.plain app clustering)
               ~scheduler:"ds")))

(* The single implementation: every public entry point below is a thin
   shim over [run_with] / [run]. *)
let run_with ?(alloc_efficiency = default_efficiency) (ctx : Sched_ctx.t)
    (config : Morphosys.Config.t) =
  match Engine.Faults.hit "sched" with
  | exception Engine.Faults.Injected site ->
    Error
      (Diag.v ~scheduler:"ds" Diag.Fault_injected
         "injected fault at scheduler entry (%s)" site)
  | () -> (
  let app = Sched_ctx.app ctx and clustering = Sched_ctx.clustering ctx in
  match Context_scheduler.plan_of_analysis config (Sched_ctx.analysis ctx) with
  | Error d -> Error (Diag.with_scheduler "ds" d)
  | Ok ctx_plan -> (
    match
      reuse_factor_of_splits ~alloc_efficiency config
        ~iterations:app.Kernel_ir.Application.iterations
        (Sched_ctx.splits_list ctx)
    with
    | 0 ->
      Error
        (Diag.v ~scheduler:"ds" Diag.No_feasible_rf
           "some cluster's DS(C)=%dw exceeds the packable %dw of the FB set"
           (Msutil.Listx.max_by (fun x -> x) (Sched_ctx.footprints_list ctx))
           (packable_words alloc_efficiency config))
    | rf_max ->
      (* Same RF choice as [best_by_rf], but each candidate factor is
         costed with [Step_builder.estimate] (identical cycles) and only
         the winning schedule is materialised. *)
      let analysis = Sched_ctx.analysis ctx in
      let selectors = Xfer_gen.plain_selectors_ctx analysis in
      let best_rf, best_cycles =
        List.fold_left
          (fun acc rf ->
            let cycles =
              Step_builder.estimate config app clustering ~rf ~ctx_plan
                ~selectors
            in
            match acc with
            | Some (_, best_cycles) when best_cycles < cycles -> acc
            | _ -> Some (rf, cycles))
          None
          (List.init rf_max (fun i -> i + 1))
        |> Option.get
      in
      Log.debug (fun m ->
          m "chose rf=%d (%d cycles) out of rf_max=%d" best_rf best_cycles
            rf_max);
      Ok
        (Step_builder.build config app clustering ~rf:best_rf ~ctx_plan
           ~generators:(Xfer_gen.plain_ctx analysis)
           ~scheduler:"ds")))

let run ctx config = run_with ctx config

(* compat shims *)
let schedule_ctx_diag ?alloc_efficiency config ctx =
  run_with ?alloc_efficiency ctx config

let schedule_ctx ?alloc_efficiency config ctx =
  Result.map_error Diag.to_string (run_with ?alloc_efficiency ctx config)

let schedule_diag ?alloc_efficiency config app clustering =
  run_with ?alloc_efficiency (Sched_ctx.make app clustering) config

let schedule ?alloc_efficiency config app clustering =
  Result.map_error Diag.to_string
    (run_with ?alloc_efficiency (Sched_ctx.make app clustering) config)

let scheduler : Scheduler_intf.t =
  (module struct
    let name = "ds"

    let describe =
      "Data Scheduler (ISSS'01): in-place replacement, loop fission, no \
       inter-cluster reuse"

    let run = run
  end)

let () = Scheduler_registry.register scheduler
