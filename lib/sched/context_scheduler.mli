(** The context scheduler (substrate from Maestre et al., ISSS'99): decides
    which clusters' context sets stay resident in the context memory across
    rounds and which must be reloaded every round because the CM is too
    small to hold everything.

    Policy: clusters are pinned greedily by descending context size while
    the pinned total still leaves room for the largest pair of consecutive
    unpinned clusters (the running one and the prefetched one must coexist).
    Pinned clusters transfer their contexts only on the first round. *)

type plan = {
  pinned : int list;  (** cluster ids resident for the whole run *)
  reloaded : int list;  (** cluster ids reloaded every round *)
  reserve : int;  (** CM words kept free for unpinned rotation *)
}

val plan_app :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (plan, Diag.t) result
(** Canonical list-based planner. [Error] is a [Cm_overflow] diagnostic
    naming the offending cluster when some single cluster's contexts
    exceed the CM capacity — no schedule can run that clustering. *)

val plan_of_analysis :
  Morphosys.Config.t -> Kernel_ir.Analysis.t -> (plan, Diag.t) result
(** Canonical indexed planner: the per-cluster context words come from the
    analysis context's profiles instead of being re-summed from the
    application. This is the entry point the schedulers use. *)

val plan :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (plan, string) result
(** Compat shim: {!plan_app} with [Diag.to_string] errors. *)

val plan_diag :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (plan, Diag.t) result
(** Compat shim for {!plan_app}. *)

val plan_ctx :
  Morphosys.Config.t -> Kernel_ir.Analysis.t -> (plan, string) result
(** Compat shim: {!plan_of_analysis} with [Diag.to_string] errors. *)

val plan_ctx_diag :
  Morphosys.Config.t -> Kernel_ir.Analysis.t -> (plan, Diag.t) result
(** Compat shim for {!plan_of_analysis}. *)

val context_words :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.t -> int
(** Context words of a cluster's kernels. *)

val load_words_for_round :
  plan -> app:Kernel_ir.Application.t ->
  clustering:Kernel_ir.Cluster.clustering -> cluster:Kernel_ir.Cluster.t ->
  round:int -> int
(** Context words the DMA must move for [cluster] at the given round: its
    full context set on round 0, afterwards only if it is not pinned. *)

val pp_plan : Format.formatter -> plan -> unit
