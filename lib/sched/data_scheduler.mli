(** The Data Scheduler of Sanchez-Elez et al., ISSS'01 [5] — the paper's
    direct predecessor. It performs intra-cluster data management: dead
    inputs and dead intermediates are replaced in place by new results, so a
    cluster only needs [DS(C)] words ({!Ds_formula}); the frame-buffer slack
    is spent on loop fission — every kernel executes RF consecutive
    iterations, so contexts are loaded [ceil(n/RF)] times instead of [n].
    It does NOT minimise inter-cluster data transfers: data shared among
    clusters is reloaded by each consumer cluster and shared results travel
    through external memory.

    Its allocation algorithm (single-ended first-fit, no regularity) wastes
    part of the frame buffer to fragmentation; the paper's §5 presents the
    Complete Data Scheduler's allocator as an improvement that "reduces
    fragmentation" and thereby "allows it to increase RF". We model this as
    an {e allocation efficiency}: the Data Scheduler can only pack
    [alloc_efficiency * fb_set_size] words (default {!default_efficiency}),
    while the CDS allocator uses the whole set. *)

val default_efficiency : float
(** 0.85 — the fraction of the FB set the [5] allocator packs usefully. *)

val run_with :
  ?alloc_efficiency:float ->
  Sched_ctx.t ->
  Morphosys.Config.t ->
  (Schedule.t, Diag.t) result
(** The single implementation every other entry point shims over.
    [Error] is a [No_feasible_rf] or [Cm_overflow] diagnostic when even
    RF = 1 does not fit (some [DS(C)] exceeds the packable fraction of
    the FB set) or the context memory cannot hold some cluster.
    @raise Invalid_argument if [alloc_efficiency] is outside (0, 1]. *)

val run : Sched_ctx.t -> Morphosys.Config.t -> (Schedule.t, Diag.t) result
(** The canonical entry point ({!Scheduler_intf.S.run}): {!run_with} at
    the default allocation efficiency. *)

val scheduler : Scheduler_intf.t
(** The Data Scheduler as a first-class value, registered in
    {!Scheduler_registry} under ["ds"]. *)

val schedule :
  ?alloc_efficiency:float ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, string) result
(** Compat shim: {!run_with} on a fresh context, [Diag.to_string] errors.
    Callers scheduling the same [(app, clustering)] repeatedly should
    build one {!Sched_ctx} and use {!run_with}. *)

val schedule_ctx :
  ?alloc_efficiency:float ->
  Morphosys.Config.t ->
  Sched_ctx.t ->
  (Schedule.t, string) result
(** Compat shim: {!run_with} with [Diag.to_string] errors. *)

val schedule_diag :
  ?alloc_efficiency:float ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, Diag.t) result
(** Compat shim: {!run_with} on a fresh context. *)

val schedule_ctx_diag :
  ?alloc_efficiency:float ->
  Morphosys.Config.t ->
  Sched_ctx.t ->
  (Schedule.t, Diag.t) result
(** Compat shim: {!run_with} with the historical argument order. *)

val schedule_reference :
  ?alloc_efficiency:float ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, string) result
(** The original list-based implementation, retained verbatim as the
    equivalence oracle for the indexed path (and as the baseline the
    scaling bench times against). Produces schedules byte-identical to
    {!schedule}. *)

val footprints :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering -> int list
(** Per-cluster replacement footprints [DS(C)] (one iteration, invariant
    tables included). *)

val footprints_split :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering -> (int * int) list
(** Per-cluster [(per_iteration, constant)] footprints
    ({!Ds_formula.split}) — the form the reuse-factor bound uses. *)

val reuse_factor :
  ?alloc_efficiency:float ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  int
(** The largest common RF the frame buffer allows the Data Scheduler
    (0 = infeasible). The scheduler then picks the {e fastest} RF up to this
    bound ({!best_by_rf}). *)

val best_by_rf :
  Morphosys.Config.t -> rf_max:int -> build:(int -> Schedule.t) -> Schedule.t
(** [best_by_rf config ~rf_max ~build] builds a schedule for every RF in
    [1..rf_max] and returns the one with the smallest estimated execution
    time ({!Schedule_cost}); ties prefer the larger RF.
    @raise Invalid_argument if [rf_max < 1]. *)
