module Cluster = Kernel_ir.Cluster
module Application = Kernel_ir.Application

type plan = { pinned : int list; reloaded : int list; reserve : int }

let context_words app (c : Cluster.t) =
  Msutil.Listx.sum_by
    (fun kid -> (Application.kernel app kid).Kernel_ir.Kernel.contexts)
    c.Cluster.kernels

(* Largest combined context size of two consecutively-executed unpinned
   clusters (including the wrap-around pair), since the prefetch of the next
   cluster overlaps the current one. A single unpinned cluster needs only
   its own space. *)
let rotation_reserve sizes unpinned =
  match unpinned with
  | [] -> 0
  | [ c ] -> List.assoc c sizes
  | _ ->
    let ids = List.sort compare unpinned in
    let pairs =
      (* consecutive in execution order = consecutive ids, cyclically *)
      List.map2
        (fun a b -> List.assoc a sizes + List.assoc b sizes)
        ids
        (Msutil.Listx.drop 1 ids @ [ List.hd ids ])
    in
    Msutil.Listx.max_by (fun x -> x) pairs

let plan_sizes (config : Morphosys.Config.t) sizes =
  match
    List.find_opt (fun (_, w) -> w > config.cm_capacity) sizes
  with
  | Some (id, w) ->
    Error
      (Diag.v ~cluster:id Diag.Cm_overflow
         "cluster %d needs %d context words but the CM holds only %d" id w
         config.cm_capacity)
  | None ->
    (* Greedy pinning, largest first: pinning big context sets saves the
       most reload traffic. *)
    let by_size_desc =
      List.sort (fun (_, a) (_, b) -> compare b a) sizes
    in
    let pinned, unpinned =
      List.fold_left
        (fun (pinned, unpinned) (id, w) ->
          let pinned_words =
            Msutil.Listx.sum_by (fun i -> List.assoc i sizes) pinned
          in
          let remaining = List.filter (fun i -> i <> id) unpinned in
          if
            pinned_words + w + rotation_reserve sizes remaining
            <= config.cm_capacity
          then (id :: pinned, remaining)
          else (pinned, unpinned))
        ([], List.map fst sizes)
        by_size_desc
    in
    Ok
      {
        pinned = List.sort compare pinned;
        reloaded = List.sort compare unpinned;
        reserve = rotation_reserve sizes unpinned;
      }

let plan_app (config : Morphosys.Config.t) app clustering =
  plan_sizes config
    (List.map (fun c -> (c.Cluster.id, context_words app c)) clustering)

(* The profile already carries each cluster's context-word sum, so the
   indexed path plans without touching the application again. *)
let plan_of_analysis (config : Morphosys.Config.t)
    (analysis : Kernel_ir.Analysis.t) =
  plan_sizes config
    (Array.to_list
       (Array.map
          (fun (p : Kernel_ir.Info_extractor.cluster_profile) ->
            (p.Kernel_ir.Info_extractor.cluster.Cluster.id,
             p.Kernel_ir.Info_extractor.contexts))
          analysis.Kernel_ir.Analysis.profiles))

(* compat shims over the two canonical planners *)
let plan_diag config app clustering = plan_app config app clustering

let plan config app clustering =
  Result.map_error Diag.to_string (plan_app config app clustering)

let plan_ctx_diag config analysis = plan_of_analysis config analysis

let plan_ctx config analysis =
  Result.map_error Diag.to_string (plan_of_analysis config analysis)

let load_words_for_round plan ~app ~clustering ~cluster ~round =
  ignore clustering;
  let words = context_words app cluster in
  if round = 0 then words
  else if List.mem cluster.Cluster.id plan.pinned then 0
  else words

let pp_plan fmt t =
  Format.fprintf fmt "pinned=[%s] reloaded=[%s] reserve=%dw"
    (String.concat ";" (List.map string_of_int t.pinned))
    (String.concat ";" (List.map string_of_int t.reloaded))
    t.reserve
