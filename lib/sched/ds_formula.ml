module IE = Kernel_ir.Info_extractor
module Data = Kernel_ir.Data

let is_pinned pinned (d : Data.t) =
  List.exists (fun (p : Data.t) -> p.id = d.id) pinned

let strip_pinned pinned (p : IE.kernel_profile) =
  {
    p with
    IE.d_objects = List.filter (fun d -> not (is_pinned pinned d)) p.IE.d_objects;
  }

let pinned_words pinned =
  Msutil.Listx.sum_by (fun (d : Data.t) -> d.size) pinned

let closed_form ?(pinned = []) (profile : IE.cluster_profile) =
  let kps = List.map (strip_pinned pinned) profile.IE.kernel_profiles in
  let indexed = List.mapi (fun pos p -> (pos, p)) kps in
  let peak_at i =
    let d_part =
      Msutil.Listx.sum_by
        (fun (pos, p) -> if pos >= i then IE.d_words p else 0)
        indexed
    in
    let rout_part =
      Msutil.Listx.sum_by
        (fun (pos, p) -> if pos <= i then IE.rout_words p else 0)
        indexed
    in
    let inter_part =
      Msutil.Listx.sum_by
        (fun (pos, p) ->
          if pos > i then 0
          else
            Msutil.Listx.sum_by
              (fun ((d : Data.t), t) ->
                (* [t] is a kernel id; compare through its position *)
                let t_pos =
                  match
                    Msutil.Listx.index_of
                      (fun k -> k = t)
                      profile.IE.cluster.Kernel_ir.Cluster.kernels
                  with
                  | Some pos -> pos
                  | None -> assert false (* t is in the cluster by construction *)
                in
                if t_pos >= i then d.size else 0)
              p.IE.intermediate_objects)
        indexed
    in
    d_part + rout_part + inter_part
  in
  let n = List.length kps in
  let peaks = List.init n peak_at in
  Msutil.Listx.max_by (fun x -> x) peaks + pinned_words pinned

let by_simulation ?(pinned = []) (profile : IE.cluster_profile) =
  let kps = List.map (strip_pinned pinned) profile.IE.kernel_profiles in
  (* Residency as a running total: start with every cluster input loaded,
     add outputs at each kernel, release after last use. *)
  let initial = Msutil.Listx.sum_by IE.d_words kps in
  let n = List.length kps in
  let kp_at pos = List.nth kps pos in
  let live = ref initial in
  let peak = ref initial in
  for i = 0 to n - 1 do
    let p = kp_at i in
    (* kernel i produces its results *)
    live := !live + IE.rout_words p + IE.intermediate_words p;
    if !live > !peak then peak := !live;
    (* inputs whose last consumer is kernel i die *)
    live := !live - IE.d_words p;
    (* intermediates whose last consumer is kernel i die *)
    let died =
      Msutil.Listx.sum_by
        (fun kp ->
          Msutil.Listx.sum_by
            (fun ((d : Data.t), t) ->
              if t = p.IE.kernel then d.size else 0)
            kp.IE.intermediate_objects)
        kps
    in
    live := !live - died
  done;
  !peak + pinned_words pinned

(* Linear-sweep evaluation of the same maximum: [peak_at i] differs from
   [peak_at (i-1)] only by suffix/prefix sums and by the intermediates whose
   [producer..last-consumer] interval opens or closes at [i], so one pass
   with difference arrays visits every object once instead of once per
   kernel position. Produces the same integer as [closed_form] (the
   equivalence suite checks this on random applications). *)
let closed_form_fast ?(pinned = []) (profile : IE.cluster_profile) =
  let kps = profile.IE.kernel_profiles in
  let n = List.length kps in
  if n = 0 then pinned_words pinned
  else begin
    let pinned_ids = Hashtbl.create (List.length pinned + 1) in
    List.iter (fun (d : Data.t) -> Hashtbl.replace pinned_ids d.id ()) pinned;
    let pos_of = Hashtbl.create (n * 2) in
    List.iteri
      (fun pos k -> Hashtbl.replace pos_of k pos)
      profile.IE.cluster.Kernel_ir.Cluster.kernels;
    let d_suffix = Array.make (n + 1) 0 in
    let rout = Array.make n 0 in
    (* diff.(i) accumulates interval openings minus closings; its running
       sum at position i is the live intermediate words crossing i *)
    let diff = Array.make (n + 1) 0 in
    List.iteri
      (fun pos (p : IE.kernel_profile) ->
        d_suffix.(pos) <-
          Msutil.Listx.sum_by
            (fun (d : Data.t) ->
              if Hashtbl.mem pinned_ids d.id then 0 else d.size)
            p.IE.d_objects;
        rout.(pos) <- IE.rout_words p;
        List.iter
          (fun ((d : Data.t), t) ->
            let t_pos =
              match Hashtbl.find_opt pos_of t with
              | Some pos -> pos
              | None -> assert false (* t is in the cluster by construction *)
            in
            diff.(pos) <- diff.(pos) + d.size;
            diff.(t_pos + 1) <- diff.(t_pos + 1) - d.size)
          p.IE.intermediate_objects)
      kps;
    for i = n - 1 downto 0 do
      d_suffix.(i) <- d_suffix.(i) + d_suffix.(i + 1)
    done;
    let best = ref 0 and rout_prefix = ref 0 and inter = ref 0 in
    for i = 0 to n - 1 do
      rout_prefix := !rout_prefix + rout.(i);
      inter := !inter + diff.(i);
      let peak = d_suffix.(i) + !rout_prefix + !inter in
      if peak > !best then best := peak
    done;
    !best + pinned_words pinned
  end

let split_with ~closed_form ~pinned (profile : IE.cluster_profile) =
  let invariant_inputs =
    List.filter (fun (d : Data.t) -> d.Data.invariant) profile.IE.external_inputs
  in
  let invariant_pinned =
    List.filter (fun (d : Data.t) -> d.Data.invariant) pinned
  in
  let constants =
    Msutil.Listx.uniq
      (fun (a : Data.t) b -> a.Data.id = b.Data.id)
      (invariant_inputs @ invariant_pinned)
  in
  let regular_pinned =
    List.filter (fun (d : Data.t) -> not d.Data.invariant) pinned
  in
  let constant_words = pinned_words constants in
  let per_iteration =
    closed_form ~pinned:(constants @ regular_pinned) profile - constant_words
  in
  (per_iteration, constant_words)

let split ?(pinned = []) profile =
  split_with ~closed_form:(fun ~pinned p -> closed_form ~pinned p) ~pinned
    profile

let split_fast ?(pinned = []) profile =
  split_with ~closed_form:(fun ~pinned p -> closed_form_fast ~pinned p) ~pinned
    profile

let footprint_basic (profile : IE.cluster_profile) =
  let inputs =
    Msutil.Listx.sum_by
      (fun (d : Data.t) -> d.size)
      profile.IE.external_inputs
  in
  let produced =
    Msutil.Listx.sum_by
      (fun p -> IE.rout_words p + IE.intermediate_words p)
      profile.IE.kernel_profiles
  in
  inputs + produced
