module Cluster = Kernel_ir.Cluster
module Application = Kernel_ir.Application
module Dma = Morphosys.Dma
module Fb = Morphosys.Frame_buffer

type generators = {
  loads :
    Cluster.t -> round:int -> iters:int -> base_iter:int -> Dma.t list;
  stores :
    Cluster.t -> round:int -> iters:int -> base_iter:int -> Dma.t list;
}

(* The object-level view behind a [generators]: which data objects a
   cluster loads / stores in a given round. The transfer lists are derived
   mechanically from these (one instance per iteration, one for an
   invariant object), so a cost can be computed from the objects alone
   without materialising labelled transfers — see [estimate]. *)
type selectors = {
  load_objects : Cluster.t -> round:int -> Kernel_ir.Data.t list;
  store_objects : Cluster.t -> round:int -> Kernel_ir.Data.t list;
}

type execution = {
  cluster : Cluster.t;
  round : int;
  iters : int;
  base_iter : int;
}

let executions app clustering ~rf =
  let n = app.Application.iterations in
  let total_rounds = (n + rf - 1) / rf in
  List.concat_map
    (fun round ->
      let base_iter = round * rf in
      let iters = min rf (n - base_iter) in
      List.map (fun cluster -> { cluster; round; iters; base_iter }) clustering)
    (List.init total_rounds (fun r -> r))

(* A transfer may overlap a computation on [set] unless it reads or writes
   that same FB set; context loads go to the CM and always overlap. *)
let can_overlap ~computing_set (tr : Dma.t) =
  match tr.Dma.kind with
  | Dma.Context -> true
  | Dma.Data { set; _ } -> set <> computing_set

let compute_cycles config app (e : execution) =
  let per_iter =
    Msutil.Listx.sum_by
      (fun kid -> (Application.kernel app kid).Kernel_ir.Kernel.exec_cycles)
      e.cluster.Cluster.kernels
  in
  (* one context broadcast per kernel per round (loop fission lets each
     kernel keep its configuration for all the round's iterations) *)
  let reconfig =
    Msutil.Listx.sum_by
      (fun kid ->
        Morphosys.Rc_array.reconfigure_cycles config
          ~contexts:(Application.kernel app kid).Kernel_ir.Kernel.contexts)
      e.cluster.Cluster.kernels
  in
  (e.iters * per_iter) + reconfig

let build ?(cross_set = false) config app clustering ~rf ~ctx_plan ~generators
    ~scheduler =
  if rf < 1 then invalid_arg "Step_builder.build: rf must be >= 1";
  let execs = Array.of_list (executions app clustering ~rf) in
  let s_max = Array.length execs in
  let loads_of s =
    if s >= s_max then []
    else
      let e = execs.(s) in
      generators.loads e.cluster ~round:e.round ~iters:e.iters
        ~base_iter:e.base_iter
  in
  let stores_of s =
    if s < 0 || s >= s_max then []
    else
      let e = execs.(s) in
      generators.stores e.cluster ~round:e.round ~iters:e.iters
        ~base_iter:e.base_iter
  in
  let ctx_of s =
    if s >= s_max then []
    else
      let e = execs.(s) in
      let words =
        Context_scheduler.load_words_for_round ctx_plan ~app ~clustering
          ~cluster:e.cluster ~round:e.round
      in
      if words = 0 then []
      else
        [
          Dma.context_load
            ~kernel:(Printf.sprintf "Cl%d" e.cluster.Cluster.id)
            ~words;
        ]
  in
  let steps = ref [] in
  let emit step = steps := step :: !steps in
  (* Priming step: everything execution 0 needs, nothing to overlap with. *)
  emit
    {
      Schedule.compute = None;
      dma = ctx_of 0 @ loads_of 0;
      note = "prime first cluster";
    };
  for s = 0 to s_max - 1 do
    let e = execs.(s) in
    let prep = stores_of (s - 1) @ loads_of (s + 1) @ ctx_of (s + 1) in
    let overlapped, deferred =
      List.partition (can_overlap ~computing_set:e.cluster.Cluster.fb_set) prep
    in
    emit
      {
        Schedule.compute =
          Some
            {
              Schedule.cluster = e.cluster;
              round = e.round;
              iterations = e.iters;
              compute_cycles = compute_cycles config app e;
            };
        dma = overlapped;
        note = "";
      };
    if deferred <> [] then
      emit
        { Schedule.compute = None; dma = deferred; note = "set conflict stall" }
  done;
  (* Drain: results of the last execution. *)
  let final_stores = stores_of (s_max - 1) in
  if final_stores <> [] then
    emit { Schedule.compute = None; dma = final_stores; note = "final drain" };
  {
    Schedule.scheduler;
    app;
    clustering;
    rf;
    cross_set;
    steps = List.rev !steps;
  }

(* Exactly [Schedule_cost.estimate config (build ... ~generators)] for the
   generators derived from [selectors], computed from per-execution
   (cost, transfer-count) aggregates: an object contributes one instance
   per iteration of the round (one total when invariant), and every
   instance costs [dma_setup + words * per-word]. Replicates [build]'s step
   structure — prime, per-execution overlap/stall partition, final drain —
   without materialising any transfer list, so scheduler RF searches can
   rank every candidate factor and build only the winner. *)
let estimate (config : Morphosys.Config.t) app clustering ~rf ~ctx_plan
    ~selectors =
  if rf < 1 then invalid_arg "Step_builder.estimate: rf must be >= 1";
  let execs = Array.of_list (executions app clustering ~rf) in
  let s_max = Array.length execs in
  let data_cost words =
    config.Morphosys.Config.dma_setup_cycles
    + (words * config.Morphosys.Config.data_cycles_per_word)
  in
  let agg objects ~iters =
    List.fold_left
      (fun (cost, count) (d : Kernel_ir.Data.t) ->
        let inst = if d.Kernel_ir.Data.invariant then 1 else iters in
        (cost + (inst * data_cost d.Kernel_ir.Data.size), count + inst))
      (0, 0) objects
  in
  let loads =
    Array.map
      (fun e -> agg (selectors.load_objects e.cluster ~round:e.round) ~iters:e.iters)
      execs
  in
  let stores =
    Array.map
      (fun e ->
        agg (selectors.store_objects e.cluster ~round:e.round) ~iters:e.iters)
      execs
  in
  let ctx =
    Array.map
      (fun e ->
        let words =
          Context_scheduler.load_words_for_round ctx_plan ~app ~clustering
            ~cluster:e.cluster ~round:e.round
        in
        if words = 0 then (0, 0)
        else
          ( config.Morphosys.Config.dma_setup_cycles
            + (words * config.Morphosys.Config.context_cycles_per_word),
            1 ))
      execs
  in
  let get arr s = if s < 0 || s >= s_max then (0, 0) else arr.(s) in
  let set_of s = execs.(s).cluster.Cluster.fb_set in
  (* prime step: pure DMA, nothing to overlap with *)
  let total = ref (fst (get ctx 0) + fst (get loads 0)) in
  for s = 0 to s_max - 1 do
    let set = set_of s in
    let ov = ref (fst (get ctx (s + 1))) in
    let def_cost = ref 0 and def_count = ref 0 in
    let route (cost, count) ~conflicts =
      if conflicts then begin
        def_cost := !def_cost + cost;
        def_count := !def_count + count
      end
      else ov := !ov + cost
    in
    route (get stores (s - 1)) ~conflicts:(s - 1 >= 0 && set_of (s - 1) = set);
    route (get loads (s + 1)) ~conflicts:(s + 1 < s_max && set_of (s + 1) = set);
    total := !total + max !ov (compute_cycles config app execs.(s));
    if !def_count > 0 then total := !total + !def_cost
  done;
  let drain_cost, drain_count = get stores (s_max - 1) in
  if drain_count > 0 then total := !total + drain_cost;
  !total
