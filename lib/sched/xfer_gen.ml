module IE = Kernel_ir.Info_extractor
module Data = Kernel_ir.Data
module Dma = Morphosys.Dma

let instances ~objects ~iters ~base_iter f =
  List.concat_map
    (fun (d : Data.t) ->
      if d.Data.invariant then
        (* one constant copy serves every iteration of the round *)
        [ f ~label:(Schedule.instance_label d.name ~iter:0) ~words:d.size ]
      else
        List.init iters (fun i ->
            f ~label:(Schedule.instance_label d.name ~iter:(base_iter + i))
              ~words:d.size))
    objects

let loads_for_objects ~set ~objects ~iters ~base_iter =
  instances ~objects ~iters ~base_iter (fun ~label ~words ->
      Dma.data_load ~set ~label ~words)

let stores_for_objects ~set ~objects ~iters ~base_iter =
  instances ~objects ~iters ~base_iter (fun ~label ~words ->
      Dma.data_store ~set ~label ~words)

(* Every generator is the mechanical expansion of a [Step_builder.selectors]
   — same object choice, one labelled transfer per instance — so the
   selectors stay the single source of truth for both the transfer lists
   and the schedulers' cheap cost estimates. *)
let generators_of_selectors (sel : Step_builder.selectors) =
  {
    Step_builder.loads =
      (fun c ~round ~iters ~base_iter ->
        loads_for_objects ~set:c.Kernel_ir.Cluster.fb_set
          ~objects:(sel.Step_builder.load_objects c ~round)
          ~iters ~base_iter);
    stores =
      (fun c ~round ~iters ~base_iter ->
        stores_for_objects ~set:c.Kernel_ir.Cluster.fb_set
          ~objects:(sel.Step_builder.store_objects c ~round)
          ~iters ~base_iter);
  }

let selectors_of ~profile_of ~stored_objects =
  {
    Step_builder.load_objects =
      (fun c ~round:_ -> (profile_of c).IE.external_inputs);
    store_objects = (fun c ~round:_ -> stored_objects (profile_of c));
  }

let generators_of ~profile_of ~stored_objects =
  generators_of_selectors (selectors_of ~profile_of ~stored_objects)

let make_generators app clustering ~stored_objects =
  let profiles = IE.profiles app clustering in
  let profile_of (c : Kernel_ir.Cluster.t) =
    List.nth profiles c.Kernel_ir.Cluster.id
  in
  generators_of ~profile_of ~stored_objects

let ctx_profile_of (analysis : Kernel_ir.Analysis.t) (c : Kernel_ir.Cluster.t) =
  Kernel_ir.Analysis.profile analysis c.Kernel_ir.Cluster.id

let make_generators_ctx analysis ~stored_objects =
  generators_of ~profile_of:(ctx_profile_of analysis) ~stored_objects

let stored_outliving (p : IE.cluster_profile) = p.IE.outliving

let stored_everything (p : IE.cluster_profile) =
  List.concat_map
    (fun kp -> kp.IE.rout_objects @ List.map fst kp.IE.intermediate_objects)
    p.IE.kernel_profiles

let plain app clustering =
  make_generators app clustering ~stored_objects:stored_outliving

let store_everything app clustering =
  make_generators app clustering ~stored_objects:stored_everything

let plain_ctx analysis =
  make_generators_ctx analysis ~stored_objects:stored_outliving

let store_everything_ctx analysis =
  make_generators_ctx analysis ~stored_objects:stored_everything

let plain_selectors_ctx analysis =
  selectors_of
    ~profile_of:(ctx_profile_of analysis)
    ~stored_objects:stored_outliving

let store_everything_selectors_ctx analysis =
  selectors_of
    ~profile_of:(ctx_profile_of analysis)
    ~stored_objects:stored_everything
