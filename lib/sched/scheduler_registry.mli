(** Registry of the first-class schedulers ({!Scheduler_intf.S}).

    Basic and DS register themselves here when [lib/sched] is linked; CDS
    (and its cross-set variant) when [lib/cds] is. Everything downstream —
    {!Cds.Pipeline} (including the degradation ladder), [Report.Dse],
    [Report.Fuzz] and the [msched] CLI ([--scheduler NAME],
    [msched schedulers]) — dispatches by name through this table, so adding
    a fourth scheduling policy is one [register] call, not a three-surface
    fork. *)

val register : Scheduler_intf.t -> unit
(** Publish a scheduler under its [name].
    @raise Invalid_argument if the name is already registered (the table
    is left unchanged). *)

val find : string -> Scheduler_intf.t option

val find_exn : string -> Scheduler_intf.t
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val run :
  string ->
  Sched_ctx.t ->
  Morphosys.Config.t ->
  (Schedule.t, Diag.t) result
(** [run name ctx config] dispatches to the named scheduler; an unknown
    name yields an [Invalid_config] diagnostic (never raises), which is
    what a degradation ladder built from user-supplied tier names wants. *)

val all : unit -> Scheduler_intf.t list
(** Every registered scheduler, sorted by name — deterministic regardless
    of link or registration order. *)

val names : unit -> string list
(** [List.map Scheduler_intf.name (all ())]. *)

val mem : string -> bool
