(** The Basic Scheduler — the comparison baseline from Maestre et al.,
    DATE'99 [3]: kernel scheduling with double-buffered transfer overlap but
    *no data reuse*. Every cluster input is loaded from external memory for
    every iteration, every produced result — intermediates included — is
    written back (no liveness analysis), dead data is never replaced in
    place (so the whole cluster footprint — all inputs plus all results —
    must fit one FB set), and the reuse factor is fixed at 1, so contexts
    not resident in the CM are reloaded on every iteration. *)

val run : Sched_ctx.t -> Morphosys.Config.t -> (Schedule.t, Diag.t) result
(** The canonical entry point ({!Scheduler_intf.S.run}) — the single
    implementation every other entry point shims over. [Error] is an
    [Fb_overflow] or [Cm_overflow] diagnostic naming the offending
    cluster when its no-replacement footprint exceeds the FB set size or
    its contexts exceed the CM — the paper notes Basic cannot run MPEG
    with a 1K frame buffer. *)

val scheduler : Scheduler_intf.t
(** The Basic scheduler as a first-class value, registered in
    {!Scheduler_registry} under ["basic"]. *)

val schedule :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, string) result
(** Compat shim: {!run} on a fresh context, [Diag.to_string] errors. *)

val schedule_ctx :
  Morphosys.Config.t -> Sched_ctx.t -> (Schedule.t, string) result
(** Compat shim: {!run} with [Diag.to_string] errors. *)

val schedule_diag :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, Diag.t) result
(** Compat shim: {!run} on a fresh context. *)

val schedule_ctx_diag :
  Morphosys.Config.t -> Sched_ctx.t -> (Schedule.t, Diag.t) result
(** Compat shim: {!run} with the historical argument order. *)

val schedule_reference :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, string) result
(** Original list-based implementation, kept as the equivalence oracle
    for the indexed path. *)

val footprints :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering -> int list
(** Per-cluster no-replacement footprints (one iteration). *)
