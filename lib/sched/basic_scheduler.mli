(** The Basic Scheduler — the comparison baseline from Maestre et al.,
    DATE'99 [3]: kernel scheduling with double-buffered transfer overlap but
    *no data reuse*. Every cluster input is loaded from external memory for
    every iteration, every produced result — intermediates included — is
    written back (no liveness analysis), dead data is never replaced in
    place (so the whole cluster footprint — all inputs plus all results —
    must fit one FB set), and the reuse factor is fixed at 1, so contexts
    not resident in the CM are reloaded on every iteration. *)

val schedule :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, string) result
(** [Error] when a cluster's no-replacement footprint exceeds the FB set
    size or its contexts exceed the CM — the paper notes Basic cannot run
    MPEG with a 1K frame buffer. *)

val schedule_ctx :
  Morphosys.Config.t -> Sched_ctx.t -> (Schedule.t, string) result
(** {!schedule} over a precomputed scheduling context. *)

val schedule_diag :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, Diag.t) result
(** Structured variant of {!schedule}: failures are [Fb_overflow] or
    [Cm_overflow] diagnostics naming the offending cluster.  The string
    APIs are shims over this via {!Diag.to_string}. *)

val schedule_ctx_diag :
  Morphosys.Config.t -> Sched_ctx.t -> (Schedule.t, Diag.t) result
(** {!schedule_diag} over a precomputed scheduling context. *)

val schedule_reference :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Schedule.t, string) result
(** Original list-based implementation, kept as the equivalence oracle
    for the indexed path. *)

val footprints :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering -> int list
(** Per-cluster no-replacement footprints (one iteration). *)
