module type S = sig
  val name : string
  val describe : string
  val run : Sched_ctx.t -> Morphosys.Config.t -> (Schedule.t, Diag.t) result
end

type t = (module S)

let name (m : t) =
  let module M = (val m) in
  M.name

let describe (m : t) =
  let module M = (val m) in
  M.describe

let run (m : t) ctx config =
  let module M = (val m) in
  M.run ctx config
