(** The cluster footprint formula DS(C) of paper §3 — the maximum number of
    frame-buffer words a cluster needs for ONE iteration when dead inputs
    and dead intermediate results are replaced in place by new results.

    With loop fission the cluster stores the data of RF consecutive
    iterations, so the space constraint is [rf * ds_c <= fb_set_size].

    Two independent implementations are provided and property-tested against
    each other: the paper's closed-form maximum and a symbolic execution of
    the kernel sequence. *)

val closed_form : ?pinned:Kernel_ir.Data.t list -> Kernel_ir.Info_extractor.cluster_profile -> int
(** The paper's formula
    [DS(C) = max_i ( sum_{j>=i} d_j + sum_{j<=i} rout_j
                     + sum_{j<=i} sum_{t>=i} r_jt )]
    where [i], [j], [t] range over the cluster's kernel positions.

    [pinned] lists objects the Complete Data Scheduler retains in the FB for
    the whole cluster window: they are charged for the full duration and
    excluded from the positional [d_j] terms (retention must not double
    count an object that is both retained and consumed here). *)

val by_simulation : ?pinned:Kernel_ir.Data.t list -> Kernel_ir.Info_extractor.cluster_profile -> int
(** Ground truth: walks the kernel sequence, loading all cluster inputs up
    front, adding each kernel's outputs when it executes and releasing
    objects after their last in-cluster use; reports the peak residency. *)

val closed_form_fast :
  ?pinned:Kernel_ir.Data.t list ->
  Kernel_ir.Info_extractor.cluster_profile ->
  int
(** Same value as {!closed_form}, computed in one linear sweep with
    difference arrays instead of one quadratic pass per kernel position —
    the form the indexed scheduler paths use. Property-tested equal to
    {!closed_form} and {!by_simulation}. *)

val split :
  ?pinned:Kernel_ir.Data.t list ->
  Kernel_ir.Info_extractor.cluster_profile ->
  int * int
(** [(per_iteration, constant)] — iteration-invariant tables (the cluster's
    own invariant inputs plus any invariant pinned objects) are charged once
    regardless of the reuse factor, everything else per iteration; the space
    constraint is [rf * per_iteration + constant <= fb_set_size]. Without
    invariant data, [split p = (closed_form p, 0)]. *)

val split_fast :
  ?pinned:Kernel_ir.Data.t list ->
  Kernel_ir.Info_extractor.cluster_profile ->
  int * int
(** Same pair as {!split}, evaluated through {!closed_form_fast}. *)

val footprint_basic : Kernel_ir.Info_extractor.cluster_profile -> int
(** The Basic Scheduler's footprint: no replacement — all inputs and all
    results of the cluster are resident simultaneously. *)
