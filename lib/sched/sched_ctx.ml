module Analysis = Kernel_ir.Analysis

type t = {
  analysis : Analysis.t;
  splits : (int * int) array;
  footprints : int array;
  basic_footprints : int array;
}

let of_analysis (analysis : Analysis.t) =
  {
    analysis;
    splits = Array.map (fun p -> Ds_formula.split_fast p) analysis.Analysis.profiles;
    footprints =
      Array.map (fun p -> Ds_formula.closed_form_fast p) analysis.Analysis.profiles;
    basic_footprints =
      Array.map Ds_formula.footprint_basic analysis.Analysis.profiles;
  }

let make app clustering = of_analysis (Analysis.make app clustering)

let analysis t = t.analysis
let app t = t.analysis.Analysis.app
let clustering t = t.analysis.Analysis.clustering
let profile t id = Analysis.profile t.analysis id
let splits_list t = Array.to_list t.splits
let footprints_list t = Array.to_list t.footprints
let basic_footprints_list t = Array.to_list t.basic_footprints
