(** Transfer-list generators shared by the Basic and Data schedulers: every
    cluster input produced outside the cluster is loaded for every
    iteration, every outliving result is stored for every iteration. The
    Complete Data Scheduler refines these by skipping retained objects. *)

val plain :
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  Step_builder.generators
(** The Data Scheduler's traffic: load cluster inputs, store only the
    results that outlive the cluster (intermediates die on chip). *)

val store_everything :
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  Step_builder.generators
(** The Basic Scheduler's traffic: same loads, but every produced result —
    intermediates included — is written back to external memory (no
    liveness analysis, the "no data reuse" baseline). *)

val plain_ctx : Kernel_ir.Analysis.t -> Step_builder.generators
(** {!plain} over a precomputed analysis context: profiles come from the
    context's O(1) by-id array instead of a fresh
    {!Kernel_ir.Info_extractor.profiles} list walk. *)

val store_everything_ctx : Kernel_ir.Analysis.t -> Step_builder.generators
(** {!store_everything} over a precomputed analysis context. *)

val plain_selectors_ctx : Kernel_ir.Analysis.t -> Step_builder.selectors
(** The object selection behind {!plain_ctx}, for
    {!Step_builder.estimate}. *)

val store_everything_selectors_ctx :
  Kernel_ir.Analysis.t -> Step_builder.selectors
(** The object selection behind {!store_everything_ctx}. *)

val generators_of_selectors :
  Step_builder.selectors -> Step_builder.generators
(** Mechanical expansion of an object selection into labelled transfer
    lists: one transfer per (object, iteration) instance, one total for an
    invariant object. *)

val loads_for_objects :
  set:Morphosys.Frame_buffer.set ->
  objects:Kernel_ir.Data.t list ->
  iters:int ->
  base_iter:int ->
  Morphosys.Dma.t list
(** One load per (object, iteration) instance, labelled ["name@iter"]. *)

val stores_for_objects :
  set:Morphosys.Frame_buffer.set ->
  objects:Kernel_ir.Data.t list ->
  iters:int ->
  base_iter:int ->
  Morphosys.Dma.t list
