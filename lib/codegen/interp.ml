module Fb = Morphosys.Frame_buffer
module Cm = Morphosys.Context_memory

type result = {
  cycles : int;
  dma_busy_cycles : int;
  context_words_loaded : int;
  data_words_loaded : int;
  data_words_stored : int;
  context_evictions : int;
  instructions_retired : int;
}

exception Fault of string

let fault fmt = Format.kasprintf (fun m -> raise (Fault m)) fmt

type state = {
  config : Morphosys.Config.t;
  cm : Cm.t;
  fb_resident : (Fb.set * string, unit) Hashtbl.t;
  mutable clock : int;
  mutable dma_available : int;  (* time the DMA channel becomes free *)
  mutable dma_busy : int;
  mutable ctx_words : int;
  mutable load_words : int;
  mutable store_words : int;
  mutable evictions : int;
  mutable retired : int;
  mutable cm_order : string list;  (* least-recently-loaded first *)
  mutable halted : bool;
}

let issue_dma state cost =
  let start = max state.dma_available state.clock in
  state.dma_available <- start + cost;
  state.dma_busy <- state.dma_busy + cost

let touch_cm state label =
  state.cm_order <- List.filter (fun l -> l <> label) state.cm_order @ [ label ]

let load_context state ~label ~words =
  if words > Cm.capacity state.cm then
    fault "context set %s (%dw) exceeds the CM (%dw)" label words
      (Cm.capacity state.cm);
  if not (Cm.resident state.cm ~kernel:label) then begin
    while Cm.free_words state.cm < words do
      match state.cm_order with
      | oldest :: rest ->
        Cm.evict state.cm ~kernel:oldest;
        state.cm_order <- rest;
        state.evictions <- state.evictions + 1
      | [] -> fault "CM accounting inconsistency while loading %s" label
    done;
    Cm.load state.cm ~kernel:label ~words
  end;
  touch_cm state label;
  issue_dma state
    (state.config.Morphosys.Config.dma_setup_cycles
    + (words * state.config.Morphosys.Config.context_cycles_per_word));
  state.ctx_words <- state.ctx_words + words

let resolve_instance ~induction name iter =
  match Instruction.resolve iter ~induction with
  | Ok i -> Sched.Schedule.instance_label name ~iter:i
  | Error msg -> fault "%s" msg

let rec step state ~induction (insn : Instruction.t) =
  state.retired <- state.retired + 1;
  match insn with
  | Instruction.Comment _ -> ()
  | Instruction.Ldctxt { label; words } -> load_context state ~label ~words
  | Instruction.Ldfb { set; name; iter; words } ->
    let label = resolve_instance ~induction name iter in
    Hashtbl.replace state.fb_resident (set, label) ();
    issue_dma state
      (state.config.Morphosys.Config.dma_setup_cycles
      + (words * state.config.Morphosys.Config.data_cycles_per_word));
    state.load_words <- state.load_words + words
  | Instruction.Stfb { set; name; iter; words } ->
    let label = resolve_instance ~induction name iter in
    if not (Hashtbl.mem state.fb_resident (set, label)) then
      fault "store of %s from set %s but it is not resident" label
        (Fb.set_to_string set);
    issue_dma state
      (state.config.Morphosys.Config.dma_setup_cycles
      + (words * state.config.Morphosys.Config.data_cycles_per_word));
    state.store_words <- state.store_words + words
  | Instruction.Dma_wait -> state.clock <- max state.clock state.dma_available
  | Instruction.Cbcast { contexts; _ } ->
    state.clock <-
      state.clock
      + Morphosys.Rc_array.reconfigure_cycles state.config ~contexts
  | Instruction.Execute { kernel; cycles; iterations } ->
    if cycles <= 0 || iterations <= 0 then
      fault "execute %s with non-positive duration" kernel;
    state.clock <- state.clock + (cycles * iterations)
  | Instruction.Wrfb { set; name; iter } ->
    let label = resolve_instance ~induction name iter in
    Hashtbl.replace state.fb_resident (set, label) ()
  | Instruction.Loop { start; stride; count; body } ->
    if count < 0 then fault "loop with negative count";
    for i = 0 to count - 1 do
      List.iter
        (fun insn ->
          if not state.halted then
            step state ~induction:(Some (start + (i * stride))) insn)
        body
    done
  | Instruction.Halt -> state.halted <- true

let run config program =
  let state =
    {
      config;
      cm = Cm.create config;
      fb_resident = Hashtbl.create 256;
      clock = 0;
      dma_available = 0;
      dma_busy = 0;
      ctx_words = 0;
      load_words = 0;
      store_words = 0;
      evictions = 0;
      retired = 0;
      cm_order = [];
      halted = false;
    }
  in
  List.iter
    (fun insn -> if not state.halted then step state ~induction:None insn)
    program;
  if not state.halted then fault "program ended without halt";
  {
    cycles = state.clock;
    dma_busy_cycles = state.dma_busy;
    context_words_loaded = state.ctx_words;
    data_words_loaded = state.load_words;
    data_words_stored = state.store_words;
    context_evictions = state.evictions;
    instructions_retired = state.retired;
  }

(* Diagnostic firewall over [run]: machine faults (and any malformed
   program the stepper trips over) come back as structured diagnostics
   instead of exceptions. *)
let run_result config program =
  match run config program with
  | r -> Ok r
  | exception Fault msg -> Error (Diag.v Diag.Sim_divergence "%s" msg)
  | exception e ->
    Error (Diag.of_exn ~backtrace:(Printexc.get_backtrace ()) e)

let pp_result fmt r =
  Format.fprintf fmt
    "cycles=%d dma_busy=%d ctx=%dw loads=%dw stores=%dw evictions=%d insns=%d"
    r.cycles r.dma_busy_cycles r.context_words_loaded r.data_words_loaded
    r.data_words_stored r.context_evictions r.instructions_retired
