module Dma = Morphosys.Dma
module Schedule = Sched.Schedule
module Application = Kernel_ir.Application

let instruction_of_transfer (tr : Dma.t) =
  match tr.Dma.kind with
  | Dma.Context -> [ Instruction.Ldctxt { label = tr.Dma.label; words = tr.words } ]
  | Dma.Data { set; direction } -> (
    match Schedule.parse_label tr.Dma.label with
    | None ->
      invalid_arg ("Emit: unparsable data transfer label " ^ tr.Dma.label)
    | Some (name, iter) -> (
      match direction with
      | Dma.Load ->
        [ Instruction.Ldfb
            { set; name; iter = Instruction.Abs iter; words = tr.words } ]
      | Dma.Store ->
        [ Instruction.Stfb
            { set; name; iter = Instruction.Abs iter; words = tr.words } ]))

let compute_instructions app ~rf (c : Schedule.computation) =
  let set = c.Schedule.cluster.Kernel_ir.Cluster.fb_set in
  let base_iter = c.Schedule.round * rf in
  List.concat_map
    (fun kid ->
      let k = Application.kernel app kid in
      let writes =
        List.concat_map
          (fun (d : Kernel_ir.Data.t) ->
            List.init c.Schedule.iterations (fun i ->
                Instruction.Wrfb
                  {
                    set;
                    name = d.Kernel_ir.Data.name;
                    iter = Instruction.Abs (base_iter + i);
                  }))
          (Application.outputs_of app kid)
      in
      Instruction.Cbcast
        { kernel = k.Kernel_ir.Kernel.name; contexts = k.contexts }
      :: Instruction.Execute
           {
             kernel = k.Kernel_ir.Kernel.name;
             cycles = k.exec_cycles;
             iterations = c.Schedule.iterations;
           }
      :: writes)
    c.Schedule.cluster.Kernel_ir.Cluster.kernels

let step_instructions ?(with_comment = true) schedule i (step : Schedule.step) =
  let header =
    match step.Schedule.compute with
    | Some c ->
      Printf.sprintf "step %d: Cl%d round %d x%d" i
        c.Schedule.cluster.Kernel_ir.Cluster.id c.Schedule.round
        c.Schedule.iterations
    | None ->
      Printf.sprintf "step %d: dma%s" i
        (if step.Schedule.note = "" then ""
         else " (" ^ step.Schedule.note ^ ")")
  in
  (if with_comment then [ Instruction.Comment header ] else [])
  @ List.concat_map instruction_of_transfer step.Schedule.dma
  @ (match step.Schedule.compute with
    | Some c ->
      compute_instructions schedule.Schedule.app ~rf:schedule.Schedule.rf c
    | None -> [])
  @ [ Instruction.Dma_wait ]

let program (schedule : Schedule.t) =
  List.concat (List.mapi (step_instructions schedule) schedule.Schedule.steps)
  @ [ Instruction.Halt ]

(* -- loop rerolling ------------------------------------------------------ *)

(* Which round a step belongs to: a compute step knows; a pure-DMA step
   inherits the round of the computation before it (the priming step gets
   round 0). *)
let rounds_of_steps steps =
  let current = ref 0 in
  List.map
    (fun (step : Schedule.step) ->
      (match step.Schedule.compute with
      | Some c -> current := c.Schedule.round
      | None -> ());
      (step, !current))
    steps

let relify ~app ~base program =
  let invariant name =
    match Application.data_by_name_opt app name with
    | Some d -> d.Kernel_ir.Data.invariant
    | None -> false
  in
  List.filter_map
    (fun insn ->
      match insn with
      | Instruction.Comment _ -> None
      | Instruction.Ldfb ({ iter = Instruction.Abs i; name; _ } as r)
        when not (invariant name) ->
        Some (Instruction.Ldfb { r with iter = Instruction.Rel (i - base) })
      | Instruction.Stfb ({ iter = Instruction.Abs i; name; _ } as r)
        when not (invariant name) ->
        Some (Instruction.Stfb { r with iter = Instruction.Rel (i - base) })
      | Instruction.Wrfb ({ iter = Instruction.Abs i; name; _ } as r)
        when not (invariant name) ->
        Some (Instruction.Wrfb { r with iter = Instruction.Rel (i - base) })
      | other -> Some other)
    program

let program_looped (schedule : Schedule.t) =
  let rf = schedule.Schedule.rf in
  let total_rounds = Schedule.rounds schedule in
  if total_rounds < 3 then program schedule
  else begin
    let by_round = rounds_of_steps schedule.Schedule.steps in
    let segment r =
      List.concat
        (List.mapi
           (fun i (step, round) ->
             if round = r then step_instructions schedule i step else [])
           by_round)
    in
    (* middle rounds 1 .. R-2 must be identical once iteration references
       are made round-relative *)
    let middle = List.init (total_rounds - 2) (fun i -> i + 1) in
    let relified =
      List.map
        (fun r -> relify ~app:schedule.Schedule.app ~base:(r * rf) (segment r))
        middle
    in
    match relified with
    | [] -> program schedule
    | first :: rest when List.for_all (fun seg -> seg = first) rest ->
      segment 0
      @ [
          Instruction.Comment
            (Printf.sprintf "rounds 1..%d" (total_rounds - 2));
          Instruction.Loop
            {
              start = rf;
              stride = rf;
              count = total_rounds - 2;
              body = first;
            };
          Instruction.Comment (Printf.sprintf "round %d" (total_rounds - 1));
        ]
      @ segment (total_rounds - 1)
      @ [ Instruction.Halt ]
    | _ -> program schedule (* non-uniform rounds: keep the unrolled form *)
  end

(* Diagnostic firewall over [program]: hand-built or corrupted schedules
   whose transfer labels do not lower surface as diagnostics, not
   [Invalid_argument]. *)
let program_result schedule = Diag.guard (fun () -> program schedule)
