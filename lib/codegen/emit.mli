(** The code generator: lowers a data/context schedule to the TinyRISC
    control program that realises it on the machine.

    Each schedule step becomes: its DMA transfers (asynchronous), then — for
    a compute step — one context broadcast and one [Execute] per kernel of
    the cluster (loop fission: each kernel runs all the step's iterations
    consecutively), then a [Dma_wait] barrier. The program's interpreted
    timing is cycle-identical to {!Msim.Executor} by construction (a test
    asserts it on every workload and scheduler). *)

val program : Sched.Schedule.t -> Instruction.program
(** Fully unrolled: one instruction sequence per schedule step, absolute
    iteration references. *)

val program_result :
  Sched.Schedule.t -> (Instruction.program, Diag.t) Stdlib.result
(** Exception firewall over {!program}: a schedule whose transfer labels
    do not lower (hand-built or corrupted) comes back as an
    [Invalid_app] diagnostic instead of an [Invalid_argument]. *)

val program_looped : Sched.Schedule.t -> Instruction.program
(** Compact form: the uniform middle rounds are rerolled into one
    zero-overhead {!Instruction.constructor-Loop} with round-relative DMA
    references (real code-generator output: code size O(clusters), not
    O(iterations)). Falls back to the unrolled form when rounds are not
    uniform (fewer than three rounds, or a ragged final round changing the
    prefetch pattern). [Instruction.unroll] of the result equals {!program}
    modulo comments — property-tested. *)
