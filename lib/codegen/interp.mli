(** Interpreter for TinyRISC control programs, replaying them against the
    MorphoSys machine model.

    The model: the core issues asynchronous DMA requests (serviced serially
    by the single channel), broadcasts contexts and runs kernels; [Dma_wait]
    joins the channel. Context loads go through {!Morphosys.Context_memory},
    evicting the least-recently-loaded non-busy context set when the CM is
    full; frame-buffer residency is tracked by label (capacity is the
    allocator's concern and checked there).

    On schedules produced by the schedulers in this repository the
    interpreted cycle count is identical to {!Msim}'s executor — a test
    asserts it across all workloads. *)

type result = {
  cycles : int;  (** wall-clock cycles at [Halt] *)
  dma_busy_cycles : int;  (** DMA channel busy time *)
  context_words_loaded : int;
  data_words_loaded : int;
  data_words_stored : int;
  context_evictions : int;  (** CM sets evicted to make room *)
  instructions_retired : int;
}

exception Fault of string
(** Raised on machine faults: storing a label that is not resident in the
    frame buffer, a context set larger than the whole CM, or a program
    without [Halt]. *)

val run : Morphosys.Config.t -> Instruction.program -> result
(** @raise Fault on a machine fault (see {!Fault}). *)

val run_result :
  Morphosys.Config.t -> Instruction.program -> (result, Diag.t) Stdlib.result
(** Exception firewall over {!run}: a machine fault becomes a
    [Sim_divergence] diagnostic; any other escaping exception is
    classified by {!Diag.of_exn}. *)

val pp_result : Format.formatter -> result -> unit
