type scheduled = { schedule : Sched.Schedule.t; metrics : Msim.Metrics.t }

type tier = [ `Basic | `Ds | `Cds ]

type degradation = {
  delivered : tier option;
  chain : (tier * Diag.t) list;
}

type comparison = {
  app : Kernel_ir.Application.t;
  config : Morphosys.Config.t;
  clustering : Kernel_ir.Cluster.clustering;
  basic : (scheduled, string) result;
  ds : (scheduled, string) result;
  cds : (scheduled * Complete_data_scheduler.result, string) result;
  degradation : degradation option;
}

let tier_name = function `Basic -> "basic" | `Ds -> "ds" | `Cds -> "cds"

let simulate ~validate config schedule =
  if validate then Msim.Validate.check_exn schedule;
  { schedule; metrics = Msim.Executor.run config schedule }

let run ?(validate = true) ?(retention = true) ?(cross_set = false)
    ?(degrade = false) config app clustering =
  (* one analysis context serves all three scheduler paths *)
  let ctx = Sched.Sched_ctx.make app clustering in
  if not degrade then
    let basic =
      Result.map
        (simulate ~validate config)
        (Sched.Basic_scheduler.schedule_ctx config ctx)
    in
    let ds =
      Result.map
        (simulate ~validate config)
        (Sched.Data_scheduler.schedule_ctx config ctx)
    in
    let cds =
      Result.map
        (fun (r : Complete_data_scheduler.result) ->
          (simulate ~validate config r.Complete_data_scheduler.schedule, r))
        (Complete_data_scheduler.schedule_ctx ~retention ~cross_set config ctx)
    in
    { app; config; clustering; basic; ds; cds; degradation = None }
  else
    (* Graceful mode: nothing raises. Validation failures (and any other
       exception a tier's path throws) become that tier's diagnostic and
       the comparison records the CDS -> DS -> Basic degradation chain. *)
    let sim ~scheduler schedule =
      Diag.protect ~scheduler ~code:Diag.Sim_divergence (fun () ->
          simulate ~validate config schedule)
    in
    let basic_d =
      Result.bind
        (Sched.Basic_scheduler.schedule_ctx_diag config ctx)
        (sim ~scheduler:"basic")
    in
    let ds_d =
      Result.bind
        (Sched.Data_scheduler.schedule_ctx_diag config ctx)
        (sim ~scheduler:"ds")
    in
    let cds_d =
      Result.bind
        (Complete_data_scheduler.schedule_ctx_diag ~retention ~cross_set
           config ctx)
        (fun (r : Complete_data_scheduler.result) ->
          Result.map
            (fun s -> (s, r))
            (sim ~scheduler:"cds" r.Complete_data_scheduler.schedule))
    in
    let chain, delivered =
      let rec walk acc = function
        | [] -> (List.rev acc, None)
        | (tier, Ok ()) :: _ -> (List.rev acc, Some tier)
        | (tier, Error d) :: rest -> walk ((tier, d) :: acc) rest
      in
      walk []
        [
          (`Cds, Result.map ignore cds_d);
          (`Ds, Result.map ignore ds_d);
          (`Basic, Result.map ignore basic_d);
        ]
    in
    {
      app;
      config;
      clustering;
      basic = Result.map_error Diag.to_string basic_d;
      ds = Result.map_error Diag.to_string ds_d;
      cds = Result.map_error Diag.to_string cds_d;
      degradation = Some { delivered; chain };
    }

let degraded_schedule t =
  match t.degradation with
  | None | Some { delivered = None; _ } -> None
  | Some { delivered = Some tier; _ } ->
    let scheduled =
      match tier with
      | `Cds -> Result.to_option t.cds |> Option.map fst
      | `Ds -> Result.to_option t.ds
      | `Basic -> Result.to_option t.basic
    in
    Option.map (fun s -> (tier, s)) scheduled

let pp_degradation fmt d =
  List.iter
    (fun (tier, diag) ->
      Format.fprintf fmt "%s unavailable: %s@." (tier_name tier)
        (Diag.render diag))
    d.chain;
  match d.delivered with
  | Some tier -> Format.fprintf fmt "delivered by %s@." (tier_name tier)
  | None -> Format.fprintf fmt "no scheduler tier is feasible@."

let improvement t which =
  match (t.basic, which) with
  | Error _, _ -> None
  | Ok baseline, `Ds ->
    Result.to_option t.ds
    |> Option.map (fun s ->
           Msim.Metrics.improvement_over ~baseline:baseline.metrics s.metrics)
  | Ok baseline, `Cds ->
    Result.to_option t.cds
    |> Option.map (fun (s, _) ->
           Msim.Metrics.improvement_over ~baseline:baseline.metrics s.metrics)

let ds_rf t =
  match t.cds with
  | Ok (_, r) -> Some r.Complete_data_scheduler.rf
  | Error _ -> (
    match t.ds with
    | Ok s -> Some s.schedule.Sched.Schedule.rf
    | Error _ -> None)

let dt_words t =
  match t.cds with
  | Ok (_, r) ->
    Some r.Complete_data_scheduler.data_words_avoided_per_iteration
  | Error _ -> None

let auto_clustering ?(scheduler = `Cds) config app =
  let eval clustering =
    let schedule =
      match scheduler with
      | `Basic -> Sched.Basic_scheduler.schedule config app clustering
      | `Ds -> Sched.Data_scheduler.schedule config app clustering
      | `Cds ->
        Result.map
          (fun (r : Complete_data_scheduler.result) ->
            r.Complete_data_scheduler.schedule)
          (Complete_data_scheduler.schedule config app clustering)
    in
    match schedule with
    | Ok s -> Some (Msim.Executor.run config s).Msim.Metrics.total_cycles
    | Error _ -> None
  in
  Sched.Kernel_scheduler.best app ~eval

let allocation_report config app clustering =
  let ctx = Sched.Sched_ctx.make app clustering in
  Result.map
    (fun (r : Complete_data_scheduler.result) ->
      Allocation_algorithm.run ~analysis:(Sched.Sched_ctx.analysis ctx) config
        app clustering ~rf:r.Complete_data_scheduler.rf
        ~retention:r.Complete_data_scheduler.retention ~round:0)
    (Complete_data_scheduler.schedule_ctx config ctx)
