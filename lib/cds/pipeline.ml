type scheduled = { schedule : Sched.Schedule.t; metrics : Msim.Metrics.t }

type comparison = {
  app : Kernel_ir.Application.t;
  config : Morphosys.Config.t;
  clustering : Kernel_ir.Cluster.clustering;
  basic : (scheduled, string) result;
  ds : (scheduled, string) result;
  cds : (scheduled * Complete_data_scheduler.result, string) result;
}

let simulate ~validate config schedule =
  if validate then Msim.Validate.check_exn schedule;
  { schedule; metrics = Msim.Executor.run config schedule }

let run ?(validate = true) ?(retention = true) ?(cross_set = false) config app
    clustering =
  (* one analysis context serves all three scheduler paths *)
  let ctx = Sched.Sched_ctx.make app clustering in
  let basic =
    Result.map
      (simulate ~validate config)
      (Sched.Basic_scheduler.schedule_ctx config ctx)
  in
  let ds =
    Result.map
      (simulate ~validate config)
      (Sched.Data_scheduler.schedule_ctx config ctx)
  in
  let cds =
    Result.map
      (fun (r : Complete_data_scheduler.result) ->
        (simulate ~validate config r.Complete_data_scheduler.schedule, r))
      (Complete_data_scheduler.schedule_ctx ~retention ~cross_set config ctx)
  in
  { app; config; clustering; basic; ds; cds }

let improvement t which =
  match (t.basic, which) with
  | Error _, _ -> None
  | Ok baseline, `Ds ->
    Result.to_option t.ds
    |> Option.map (fun s ->
           Msim.Metrics.improvement_over ~baseline:baseline.metrics s.metrics)
  | Ok baseline, `Cds ->
    Result.to_option t.cds
    |> Option.map (fun (s, _) ->
           Msim.Metrics.improvement_over ~baseline:baseline.metrics s.metrics)

let ds_rf t =
  match t.cds with
  | Ok (_, r) -> Some r.Complete_data_scheduler.rf
  | Error _ -> (
    match t.ds with
    | Ok s -> Some s.schedule.Sched.Schedule.rf
    | Error _ -> None)

let dt_words t =
  match t.cds with
  | Ok (_, r) ->
    Some r.Complete_data_scheduler.data_words_avoided_per_iteration
  | Error _ -> None

let auto_clustering ?(scheduler = `Cds) config app =
  let eval clustering =
    let schedule =
      match scheduler with
      | `Basic -> Sched.Basic_scheduler.schedule config app clustering
      | `Ds -> Sched.Data_scheduler.schedule config app clustering
      | `Cds ->
        Result.map
          (fun (r : Complete_data_scheduler.result) ->
            r.Complete_data_scheduler.schedule)
          (Complete_data_scheduler.schedule config app clustering)
    in
    match schedule with
    | Ok s -> Some (Msim.Executor.run config s).Msim.Metrics.total_cycles
    | Error _ -> None
  in
  Sched.Kernel_scheduler.best app ~eval

let allocation_report config app clustering =
  let ctx = Sched.Sched_ctx.make app clustering in
  Result.map
    (fun (r : Complete_data_scheduler.result) ->
      Allocation_algorithm.run ~analysis:(Sched.Sched_ctx.analysis ctx) config
        app clustering ~rf:r.Complete_data_scheduler.rf
        ~retention:r.Complete_data_scheduler.retention ~round:0)
    (Complete_data_scheduler.schedule_ctx config ctx)
