type scheduled = { schedule : Sched.Schedule.t; metrics : Msim.Metrics.t }

let default_ladder = [ "cds"; "ds"; "basic" ]

type degradation = {
  delivered : string option;
  chain : (string * Diag.t) list;
  fallback : scheduled option;
}

type comparison = {
  app : Kernel_ir.Application.t;
  config : Morphosys.Config.t;
  clustering : Kernel_ir.Cluster.clustering;
  basic : (scheduled, string) result;
  ds : (scheduled, string) result;
  cds : (scheduled * Complete_data_scheduler.result, string) result;
  degradation : degradation option;
}

let simulate ~validate config schedule =
  if validate then Msim.Validate.check_exn schedule;
  { schedule; metrics = Msim.Executor.run config schedule }

let run ?(validate = true) ?(retention = true) ?(cross_set = false)
    ?(degrade = false) ?(ladder = default_ladder) config app clustering =
  (* one analysis context serves every scheduler in the registry *)
  let ctx = Sched.Sched_ctx.make app clustering in
  if not degrade then
    let basic =
      Result.map
        (simulate ~validate config)
        (Result.map_error Diag.to_string
           (Sched.Scheduler_registry.run "basic" ctx config))
    in
    let ds =
      Result.map
        (simulate ~validate config)
        (Result.map_error Diag.to_string
           (Sched.Scheduler_registry.run "ds" ctx config))
    in
    let cds =
      Result.map
        (fun (r : Complete_data_scheduler.result) ->
          (simulate ~validate config r.Complete_data_scheduler.schedule, r))
        (Result.map_error Diag.to_string
           (Complete_data_scheduler.run_full ~retention ~cross_set ctx config))
    in
    { app; config; clustering; basic; ds; cds; degradation = None }
  else
    (* Graceful mode: nothing raises. Validation failures (and any other
       exception a tier's path throws) become that tier's diagnostic and
       the comparison records the degradation chain down the ladder
       (default CDS -> DS -> Basic). *)
    let sim ~scheduler schedule =
      Diag.protect ~scheduler ~code:Diag.Sim_divergence (fun () ->
          simulate ~validate config schedule)
    in
    let basic_d =
      Result.bind
        (Sched.Scheduler_registry.run "basic" ctx config)
        (sim ~scheduler:"basic")
    in
    let ds_d =
      Result.bind
        (Sched.Scheduler_registry.run "ds" ctx config)
        (sim ~scheduler:"ds")
    in
    let cds_d =
      Result.bind
        (Complete_data_scheduler.run_full ~retention ~cross_set ctx config)
        (fun (r : Complete_data_scheduler.result) ->
          Result.map
            (fun s -> (s, r))
            (sim ~scheduler:"cds" r.Complete_data_scheduler.schedule))
    in
    (* The three standard tiers above are reused when the ladder names
       them; any other name dispatches through the registry, so a custom
       ladder (say ["cds-xset"; "ds"]) degrades — and reports — exactly
       the tiers the caller asked for. *)
    let attempt name =
      match name with
      | "basic" -> basic_d
      | "ds" -> ds_d
      | "cds" -> Result.map fst cds_d
      | _ ->
        Result.bind
          (Sched.Scheduler_registry.run name ctx config)
          (sim ~scheduler:name)
    in
    let rec walk acc = function
      | [] -> { delivered = None; chain = List.rev acc; fallback = None }
      | name :: rest -> (
        match attempt name with
        | Ok s ->
          { delivered = Some name; chain = List.rev acc; fallback = Some s }
        | Error d -> walk ((name, d) :: acc) rest)
    in
    {
      app;
      config;
      clustering;
      basic = Result.map_error Diag.to_string basic_d;
      ds = Result.map_error Diag.to_string ds_d;
      cds = Result.map_error Diag.to_string cds_d;
      degradation = Some (walk [] ladder);
    }

let degraded_schedule t =
  match t.degradation with
  | Some { delivered = Some name; fallback = Some s; _ } -> Some (name, s)
  | _ -> None

let pp_degradation fmt d =
  List.iter
    (fun (name, diag) ->
      Format.fprintf fmt "%s unavailable: %s@." name (Diag.render diag))
    d.chain;
  match d.delivered with
  | Some name -> Format.fprintf fmt "delivered by %s@." name
  | None -> Format.fprintf fmt "no scheduler tier is feasible@."

let improvement t which =
  match (t.basic, which) with
  | Error _, _ -> None
  | Ok baseline, `Ds ->
    Result.to_option t.ds
    |> Option.map (fun s ->
           Msim.Metrics.improvement_over ~baseline:baseline.metrics s.metrics)
  | Ok baseline, `Cds ->
    Result.to_option t.cds
    |> Option.map (fun (s, _) ->
           Msim.Metrics.improvement_over ~baseline:baseline.metrics s.metrics)

let ds_rf t =
  match t.cds with
  | Ok (_, r) -> Some r.Complete_data_scheduler.rf
  | Error _ -> (
    match t.ds with
    | Ok s -> Some s.schedule.Sched.Schedule.rf
    | Error _ -> None)

let dt_words t =
  match t.cds with
  | Ok (_, r) ->
    Some r.Complete_data_scheduler.data_words_avoided_per_iteration
  | Error _ -> None

let auto_clustering ?store ?(scheduler = "cds") config app =
  let compute clustering =
    match
      Sched.Scheduler_registry.run scheduler
        (Sched.Sched_ctx.make app clustering)
        config
    with
    | Ok s -> Some (Msim.Executor.run config s).Msim.Metrics.total_cycles
    | Error _ -> None
  in
  let eval clustering =
    match store with
    | None -> compute clustering
    | Some store -> (
      (* Memoise each candidate's simulated cycle count in the result
         store, so re-running the search after a crash (or in a later
         session) only schedules clusterings it has not seen. Anything
         that goes wrong with the store — an unmarshalable key, a
         corrupt payload — degrades to recomputation. *)
      match
        Engine.Key.digest_value_result (app, clustering, config, scheduler)
      with
      | Error _ -> compute clustering
      | Ok digest -> (
        let key = Engine.Key.combine [ "auto-clustering"; digest ] in
        let cached =
          match Engine.Store.find store key with
          | None -> None
          | Some payload -> (
            match (Marshal.from_string payload 0 : int option) with
            | cycles -> Some cycles
            | exception _ -> None)
        in
        match cached with
        | Some cycles -> cycles
        | None ->
          let cycles = compute clustering in
          Engine.Store.append store ~key
            ~payload:(Marshal.to_string (cycles : int option) []);
          cycles))
  in
  Sched.Kernel_scheduler.best app ~eval

let allocation_report config app clustering =
  let ctx = Sched.Sched_ctx.make app clustering in
  Result.map
    (fun (r : Complete_data_scheduler.result) ->
      Allocation_algorithm.run ~analysis:(Sched.Sched_ctx.analysis ctx) config
        app clustering ~rf:r.Complete_data_scheduler.rf
        ~retention:r.Complete_data_scheduler.retention ~round:0)
    (Result.map_error Diag.to_string
       (Complete_data_scheduler.run_full ctx config))
