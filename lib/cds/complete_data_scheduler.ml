module IE = Kernel_ir.Info_extractor
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data

type result = {
  schedule : Sched.Schedule.t;
  retention : Retention.decision;
  rf : int;
  data_words_avoided_per_iteration : int;
}

(* An object can have one retention candidate per FB set (the same shared
   datum may be retained in both sets), so the skip test quantifies over all
   retained candidates for the object. *)
let skipped retained (d : Data.t) ~cluster_id ~skip =
  List.exists
    (fun c -> (Sharing.data c).Data.id = d.Data.id && skip c ~cluster_id)
    retained

let selectors_of ~profile_of (decision : Retention.decision) =
  let load_objects (c : Cluster.t) ~round =
    let is_retained (d : Data.t) =
      List.exists
        (fun cand -> (Sharing.data cand).Data.id = d.Data.id)
        decision.retained
    in
    List.filter
      (fun (d : Data.t) ->
        (* a retained invariant table is loaded exactly once, by its first
           consumer cluster on round 0 *)
        if d.Data.invariant && is_retained d && round > 0 then false
        else
          not
            (skipped decision.retained d ~cluster_id:c.Cluster.id
               ~skip:Sharing.skips_load))
      (profile_of c).IE.external_inputs
  in
  let store_objects (c : Cluster.t) ~round:_ =
    List.filter
      (fun d ->
        not
          (skipped decision.retained d ~cluster_id:c.Cluster.id
             ~skip:Sharing.skips_store))
      (profile_of c).IE.outliving
  in
  { Sched.Step_builder.load_objects; store_objects }

let generators_of ~profile_of decision =
  Sched.Xfer_gen.generators_of_selectors (selectors_of ~profile_of decision)

let generators app clustering decision =
  let profiles = IE.profiles app clustering in
  generators_of
    ~profile_of:(fun (c : Cluster.t) -> List.nth profiles c.Cluster.id)
    decision

let ctx_profile_of (analysis : Kernel_ir.Analysis.t) (c : Cluster.t) =
  Kernel_ir.Analysis.profile analysis c.Cluster.id

(* Same object choice as [selectors_of], but the retained candidates are
   bucketed by data id up front, so the per-object retention tests in the
   selector hot path are O(bucket) — at most one candidate per FB set —
   instead of a scan of the whole retained list. *)
let selectors_indexed ~profile_of (decision : Retention.decision) =
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun (cand : Sharing.t) ->
      let id = (Sharing.data cand).Data.id in
      let prev = try Hashtbl.find by_id id with Not_found -> [] in
      Hashtbl.replace by_id id (cand :: prev))
    decision.retained;
  let bucket (d : Data.t) =
    try Hashtbl.find by_id d.Data.id with Not_found -> []
  in
  let skipped d ~cluster_id ~skip =
    List.exists (fun c -> skip c ~cluster_id) (bucket d)
  in
  let load_objects (c : Cluster.t) ~round =
    List.filter
      (fun (d : Data.t) ->
        if d.Data.invariant && round > 0 && bucket d <> [] then false
        else
          not (skipped d ~cluster_id:c.Cluster.id ~skip:Sharing.skips_load))
      (profile_of c).IE.external_inputs
  in
  let store_objects (c : Cluster.t) ~round:_ =
    List.filter
      (fun d ->
        not (skipped d ~cluster_id:c.Cluster.id ~skip:Sharing.skips_store))
      (profile_of c).IE.outliving
  in
  { Sched.Step_builder.load_objects; store_objects }

let selectors_ctx analysis decision =
  selectors_indexed ~profile_of:(ctx_profile_of analysis) decision

let generators_ctx analysis decision =
  Sched.Xfer_gen.generators_of_selectors (selectors_ctx analysis decision)

let schedule_reference ?(retention = true) ?(cross_set = false)
    (config : Morphosys.Config.t) app clustering =
  match Sched.Context_scheduler.plan config app clustering with
  | Error e -> Error ("cds: " ^ e)
  | Ok ctx_plan -> (
    (* The CDS allocator packs the whole set (paper §5: minimal memory, no
       fragmentation), so its RF bound is computed against the full FB
       size; among the feasible factors the scheduler keeps the fastest
       (retention is recomputed per candidate — pinned copies scale with
       RF). *)
    match
      Sched.Reuse_factor.common_split ~fb_set_size:config.fb_set_size
        ~footprints:(Sched.Data_scheduler.footprints_split app clustering)
        ~iterations:app.Kernel_ir.Application.iterations
    with
    | 0 ->
      Error
        (Printf.sprintf
           "cds: some cluster's DS(C) exceeds the FB set of %dw"
           config.fb_set_size)
    | rf_max ->
      let scheduler_name = if cross_set then "cds-xset" else "cds" in
      let candidate rf =
        let decision =
          if retention then
            Retention.choose ~cross_set config app clustering ~rf
          else Retention.none
        in
        let schedule =
          Sched.Step_builder.build ~cross_set config app clustering ~rf
            ~ctx_plan
            ~generators:(generators app clustering decision)
            ~scheduler:scheduler_name
        in
        (schedule, decision)
      in
      let chosen, decision =
        (* keep the fastest; ties prefer the larger RF *)
        List.fold_left
          (fun acc rf ->
            let (schedule, _) as cand = candidate rf in
            let cycles = Sched.Schedule_cost.estimate config schedule in
            match acc with
            | Some (_, best_cycles) when best_cycles < cycles -> acc
            | _ -> Some (cand, cycles))
          None
          (List.init rf_max (fun i -> i + 1))
        |> Option.get |> fst
      in
      Ok
        {
          schedule = chosen;
          retention = decision;
          rf = chosen.Sched.Schedule.rf;
          data_words_avoided_per_iteration =
            decision.Retention.avoided_words_per_iteration;
        })

(* The single implementation: every other entry point — including the
   registry-facing [run] — is a thin shim over [run_full]. *)
let run_full ?(retention = true) ?(cross_set = false)
    (ctx : Sched.Sched_ctx.t) (config : Morphosys.Config.t) =
  match Engine.Faults.hit "sched" with
  | exception Engine.Faults.Injected site ->
    Error
      (Diag.v ~scheduler:"cds" Diag.Fault_injected
         "injected fault at scheduler entry (%s)" site)
  | () -> (
  let app = Sched.Sched_ctx.app ctx in
  let clustering = Sched.Sched_ctx.clustering ctx in
  let analysis = Sched.Sched_ctx.analysis ctx in
  match Sched.Context_scheduler.plan_of_analysis config analysis with
  | Error d -> Error (Diag.with_scheduler "cds" d)
  | Ok ctx_plan -> (
    match
      Sched.Reuse_factor.common_split ~fb_set_size:config.fb_set_size
        ~footprints:(Sched.Sched_ctx.splits_list ctx)
        ~iterations:app.Kernel_ir.Application.iterations
    with
    | 0 ->
      Error
        (Diag.v ~scheduler:"cds" Diag.No_feasible_rf
           "some cluster's DS(C) exceeds the FB set of %dw"
           config.fb_set_size)
    | rf_max ->
      let scheduler_name = if cross_set then "cds-xset" else "cds" in
      (* RF search without materialising a schedule per candidate factor:
         each RF is costed with [Step_builder.estimate] (exactly the
         cycles [Schedule_cost] would report for the built schedule) and
         only the winner is built. Retention ablated means the decision is
         RF-independent — computed once. *)
      let none_decision = if retention then None else Some Retention.none in
      let decision_for rf =
        match none_decision with
        | Some d -> d
        | None -> Retention.choose_ctx ~cross_set config ctx ~rf
      in
      let chosen_rf, decision =
        (* keep the fastest; ties prefer the larger RF *)
        List.fold_left
          (fun acc rf ->
            let decision = decision_for rf in
            let cycles =
              Sched.Step_builder.estimate config app clustering ~rf ~ctx_plan
                ~selectors:(selectors_ctx analysis decision)
            in
            match acc with
            | Some (_, _, best_cycles) when best_cycles < cycles -> acc
            | _ -> Some (rf, decision, cycles))
          None
          (List.init rf_max (fun i -> i + 1))
        |> Option.get
        |> fun (rf, d, _) -> (rf, d)
      in
      let chosen =
        Sched.Step_builder.build ~cross_set config app clustering
          ~rf:chosen_rf ~ctx_plan
          ~generators:(generators_ctx analysis decision)
          ~scheduler:scheduler_name
      in
      Ok
        {
          schedule = chosen;
          retention = decision;
          rf = chosen.Sched.Schedule.rf;
          data_words_avoided_per_iteration =
            decision.Retention.avoided_words_per_iteration;
        }))

let run ctx config = Result.map (fun r -> r.schedule) (run_full ctx config)

(* compat shims *)
let schedule_ctx_diag ?retention ?cross_set config ctx =
  run_full ?retention ?cross_set ctx config

let schedule_ctx ?retention ?cross_set config ctx =
  Result.map_error Diag.to_string (run_full ?retention ?cross_set ctx config)

let schedule_diag ?retention ?cross_set config app clustering =
  run_full ?retention ?cross_set (Sched.Sched_ctx.make app clustering) config

let schedule ?retention ?cross_set config app clustering =
  Result.map_error Diag.to_string
    (run_full ?retention ?cross_set (Sched.Sched_ctx.make app clustering)
       config)

(* Warning-severity diagnostics for retention candidates the TF test turned
   down — surfaced by the pipeline's verbose mode, never fatal. *)
let retention_warnings (decision : Retention.decision) =
  List.map
    (fun (cand, reason) ->
      let d = Sharing.data cand in
      Diag.v ~severity:Diag.Warning ~scheduler:"cds" ~data:d.Data.name
        Diag.Retention_rejected "candidate %S not retained: %s" d.Data.name
        reason)
    decision.Retention.rejected

let retention_diags decision = retention_warnings decision

let scheduler : Sched.Scheduler_intf.t =
  (module struct
    let name = "cds"

    let describe =
      "Complete Data Scheduler (DATE'02): fragmentation-free allocation + \
       TF-driven retention of shared data"

    let run = run
  end)

let scheduler_xset : Sched.Scheduler_intf.t =
  (module struct
    let name = "cds-xset"

    let describe =
      "Complete Data Scheduler with the future-work cross-set reuse enabled"

    let run ctx config =
      Result.map (fun r -> r.schedule) (run_full ~cross_set:true ctx config)
  end)

let () =
  Sched.Scheduler_registry.register scheduler;
  Sched.Scheduler_registry.register scheduler_xset
