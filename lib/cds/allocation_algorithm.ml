module IE = Kernel_ir.Info_extractor
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data
module Fb = Morphosys.Frame_buffer
module Layout = Fb_alloc.Layout
module Free_list = Fb_alloc.Free_list

type snapshot = { caption : string; cells : string option array }

type result = {
  snapshots : snapshot list;
  stats : (Fb.set * Fb_alloc.Frag_stats.t) list;
  splits : int;
  peak_words : (int * int) list;
  failures : string list;
}

type state = {
  layout_a : Layout.t;
  layout_b : Layout.t;
  retained : Sharing.t list;
  mutable snapshots : snapshot list;
  mutable failures : string list;
  mutable peaks : (int * int) list;
}

let layout state = function
  | Fb.Set_a -> state.layout_a
  | Fb.Set_b -> state.layout_b

let label = Sched.Schedule.instance_label

let snap state set caption =
  state.snapshots <-
    { caption; cells = Layout.snapshot (layout state set) } :: state.snapshots

let place state set ~name ~g ~words ~from =
  let lay = layout state set in
  let lbl = label name ~iter:g in
  if not (Layout.placed lay ~label:lbl) then
    match Layout.place lay ~label:lbl ~words ~from with
    | Some (_ : Layout.placement) -> ()
    | None -> state.failures <- lbl :: state.failures

let release_if_placed state set ~name ~g =
  let lay = layout state set in
  let lbl = label name ~iter:g in
  if Layout.placed lay ~label:lbl then Layout.release lay ~label:lbl

(* Does some retained candidate keep this object in [set] beyond cluster
   [cid]? Then its space must not be released yet. *)
let pinned_beyond state set ~cid (name : string) app =
  match Kernel_ir.Application.data_by_name_opt app name with
  | None -> false
  | Some d ->
    List.exists
      (fun (c : Sharing.t) ->
        c.Sharing.set = set
        && (Sharing.data c).Data.id = d.Data.id
        && snd c.Sharing.window > cid)
      state.retained

let is_retained state (d : Data.t) set =
  List.exists
    (fun (c : Sharing.t) ->
      c.Sharing.set = set && (Sharing.data c).Data.id = d.Data.id)
    state.retained

let run ?analysis ?(capture = fun ~cluster_id:_ -> true)
    (config : Morphosys.Config.t) app clustering ~rf
    ~(retention : Retention.decision) ~round =
  if rf < 1 then invalid_arg "Allocation_algorithm.run: rf must be >= 1";
  if round < 0 then invalid_arg "Allocation_algorithm.run: negative round";
  let state =
    {
      layout_a = Layout.create ~size:config.fb_set_size;
      layout_b = Layout.create ~size:config.fb_set_size;
      retained = retention.Retention.retained;
      snapshots = [];
      failures = [];
      peaks = [];
    }
  in
  let base = round * rf in
  let iters_of (d : Data.t) =
    if d.Data.invariant then [ 0 ] else List.init rf (fun i -> base + i)
  in
  let iters g_fun = List.iter g_fun (List.init rf (fun i -> base + i)) in
  let profiles =
    match analysis with
    | Some a -> Kernel_ir.Analysis.profiles_list a
    | None -> IE.profiles app clustering
  in
  List.iter
    (fun (prof : IE.cluster_profile) ->
      let c = prof.IE.cluster in
      let cid = c.Cluster.id in
      let set = c.Cluster.fb_set in
      let lay = layout state set in
      let cap = capture ~cluster_id:cid in
      let peak = ref (Layout.size lay - Layout.free_words lay) in
      let track () =
        peak := max !peak (Layout.size lay - Layout.free_words lay)
      in
      if cap then snap state set (Printf.sprintf "pre-Cl%d" cid);
      (* 1. Shared data this cluster loads and later clusters reuse:
            longest retention window first, upper addresses. *)
      let shared_here =
        List.filter
          (fun (cand : Sharing.t) ->
            cand.Sharing.set = set
            && cand.Sharing.first_cluster = cid
            &&
            match cand.Sharing.shared with
            | IE.Shared_data _ -> true
            | IE.Shared_result _ -> false)
          state.retained
        |> List.sort (fun a b ->
               compare (snd b.Sharing.window) (snd a.Sharing.window))
      in
      List.iter
        (fun (cand : Sharing.t) ->
          let d = Sharing.data cand in
          List.iter
            (fun g ->
              place state set ~name:d.Data.name ~g ~words:d.Data.size
                ~from:Free_list.Upper)
            (iters_of d))
        shared_here;
      (* 2. The cluster's remaining input data: inputs of later kernels
            first (they stay longest), upper addresses. Objects already
            resident (retained by an earlier cluster) are skipped. *)
      List.iter
        (fun (kp : IE.kernel_profile) ->
          List.iter
            (fun (d : Data.t) ->
              List.iter
                (fun g ->
                  place state set ~name:d.Data.name ~g ~words:d.Data.size
                    ~from:Free_list.Upper)
                (iters_of d))
            kp.IE.d_objects)
        (List.rev prof.IE.kernel_profiles);
      track ();
      if cap then snap state set (Printf.sprintf "Cl%d-load" cid);
      (* 3. Execute kernels (kernel-major: each kernel runs its RF
            iterations consecutively), placing results and releasing dead
            objects after every execution. *)
      List.iter
        (fun (kp : IE.kernel_profile) ->
          let kname = (Kernel_ir.Application.kernel app kp.IE.kernel).name in
          iters (fun g ->
              (* results that outlive the cluster: retained shared results
                 to the upper region, stored results to the lower region *)
              List.iter
                (fun (d : Data.t) ->
                  let from =
                    if is_retained state d set then Free_list.Upper
                    else Free_list.Lower
                  in
                  place state set ~name:d.Data.name ~g ~words:d.Data.size ~from)
                kp.IE.rout_objects;
              (* intermediates: farthest consumer first, lower region *)
              List.iter
                (fun ((d : Data.t), _) ->
                  place state set ~name:d.Data.name ~g ~words:d.Data.size
                    ~from:Free_list.Lower)
                (List.sort
                   (fun (_, t1) (_, t2) -> compare t2 t1)
                   kp.IE.intermediate_objects);
              track ();
              (* release: inputs whose last consumer this kernel is (an
                 invariant table has one shared copy, freed after the
                 kernel's final iteration of the round) *)
              List.iter
                (fun (d : Data.t) ->
                  if not (pinned_beyond state set ~cid d.Data.name app) then
                    if d.Data.invariant then begin
                      if g = base + rf - 1 then
                        release_if_placed state set ~name:d.Data.name ~g:0
                    end
                    else release_if_placed state set ~name:d.Data.name ~g)
                kp.IE.d_objects;
              (* release: intermediates this kernel consumed last *)
              List.iter
                (fun (other : IE.kernel_profile) ->
                  List.iter
                    (fun ((d : Data.t), t) ->
                      if t = kp.IE.kernel then
                        release_if_placed state set ~name:d.Data.name ~g)
                    other.IE.intermediate_objects)
                prof.IE.kernel_profiles;
              if cap then
                snap state set (Printf.sprintf "Cl%d-%s#%d" cid kname g)))
        prof.IE.kernel_profiles;
      (* 4. End of cluster: outliving results are drained to external
            memory and everything not retained for a later cluster is
            released. *)
      List.iter
        (fun (p : Layout.placement) ->
          match Sched.Schedule.parse_label p.Layout.label with
          | Some (name, g) when g >= base && g < base + rf ->
            if not (pinned_beyond state set ~cid name app) then
              Layout.release lay ~label:p.Layout.label
          | Some _ | None -> ())
        (Layout.placements lay);
      state.peaks <- (cid, !peak) :: state.peaks;
      if cap then snap state set (Printf.sprintf "post-Cl%d" cid))
    profiles;
  {
    snapshots = List.rev state.snapshots;
    stats =
      [
        (Fb.Set_a, Fb_alloc.Frag_stats.of_layout state.layout_a);
        (Fb.Set_b, Fb_alloc.Frag_stats.of_layout state.layout_b);
      ];
    splits = Layout.splits state.layout_a + Layout.splits state.layout_b;
    peak_words = List.rev state.peaks;
    failures = List.rev state.failures;
  }
