(** The Complete Data Scheduler — the paper's contribution.

    Builds on the Data Scheduler: same cluster footprints [DS(C)] and the
    same loop-fission scheme, but (a) its fragmentation-free allocator packs
    the whole frame-buffer set, so its common reuse factor RF can exceed the
    Data Scheduler's (paper §5: the improved allocation "allows it to
    increase RF"), and (b) it retains TF-chosen shared data and shared
    results in the frame buffer ({!Retention}), so that

    - a shared datum is loaded once per iteration instead of once per
      consumer cluster, and
    - a retained shared result neither travels to external memory nor is
      reloaded by its consumer clusters (final results still perform their
      mandatory store).

    [~retention:false] ablates the retention pass (the schedule then equals
    the Data Scheduler's); [~cross_set:true] enables the future-work
    cross-set reuse. *)

type result = {
  schedule : Sched.Schedule.t;
  retention : Retention.decision;
  rf : int;
  data_words_avoided_per_iteration : int;
      (** the paper's DT column of Table 1 *)
}

val run_full :
  ?retention:bool ->
  ?cross_set:bool ->
  Sched.Sched_ctx.t ->
  Morphosys.Config.t ->
  (result, Diag.t) Stdlib.result
(** The single implementation every other entry point shims over. Returns
    the rich {!result} (retention decision, RF, DT words) the pipeline and
    reports need. [Error] is a [No_feasible_rf] or [Cm_overflow]
    diagnostic under the same conditions as the Data Scheduler (some
    [DS(C)] exceeding the FB set even at RF = 1, or context-memory
    overflow). Profile and DS-formula lookups are O(1) through the
    context; the retention pass runs incrementally
    ({!Retention.choose_ctx}). *)

val run :
  Sched.Sched_ctx.t ->
  Morphosys.Config.t ->
  (Sched.Schedule.t, Diag.t) Stdlib.result
(** The canonical entry point ({!Sched.Scheduler_intf.S.run}):
    {!run_full} projected onto its schedule. *)

val scheduler : Sched.Scheduler_intf.t
(** The Complete Data Scheduler as a first-class value, registered in
    {!Sched.Scheduler_registry} under ["cds"]. *)

val scheduler_xset : Sched.Scheduler_intf.t
(** {!run_full} with [~cross_set:true], registered under ["cds-xset"] —
    the future-work cross-set reuse as a separately selectable policy. *)

val schedule :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (result, string) Stdlib.result
(** Compat shim: {!run_full} on a fresh context, [Diag.to_string] errors.
    Callers scheduling the same [(app, clustering)] repeatedly should
    build one {!Sched.Sched_ctx} and use {!run_full}. *)

val schedule_ctx :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Sched.Sched_ctx.t ->
  (result, string) Stdlib.result
(** Compat shim: {!run_full} with [Diag.to_string] errors. *)

val schedule_diag :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (result, Diag.t) Stdlib.result
(** Compat shim: {!run_full} on a fresh context. *)

val schedule_ctx_diag :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Sched.Sched_ctx.t ->
  (result, Diag.t) Stdlib.result
(** Compat shim: {!run_full} with the historical argument order. *)

val retention_warnings : Retention.decision -> Diag.t list
(** One [Warning]-severity [Retention_rejected] diagnostic per candidate
    the retention pass declined, carrying the data name and the reason. *)

val retention_diags : Retention.decision -> Diag.t list
(** Compat shim for {!retention_warnings}. *)

val schedule_reference :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (result, string) Stdlib.result
(** The original list-based implementation, retained verbatim: the
    equivalence oracle for the indexed path and the baseline the scaling
    bench times against. Produces results byte-identical to
    {!schedule}. *)
