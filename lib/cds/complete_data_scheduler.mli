(** The Complete Data Scheduler — the paper's contribution.

    Builds on the Data Scheduler: same cluster footprints [DS(C)] and the
    same loop-fission scheme, but (a) its fragmentation-free allocator packs
    the whole frame-buffer set, so its common reuse factor RF can exceed the
    Data Scheduler's (paper §5: the improved allocation "allows it to
    increase RF"), and (b) it retains TF-chosen shared data and shared
    results in the frame buffer ({!Retention}), so that

    - a shared datum is loaded once per iteration instead of once per
      consumer cluster, and
    - a retained shared result neither travels to external memory nor is
      reloaded by its consumer clusters (final results still perform their
      mandatory store).

    [~retention:false] ablates the retention pass (the schedule then equals
    the Data Scheduler's); [~cross_set:true] enables the future-work
    cross-set reuse. *)

type result = {
  schedule : Sched.Schedule.t;
  retention : Retention.decision;
  rf : int;
  data_words_avoided_per_iteration : int;
      (** the paper's DT column of Table 1 *)
}

val schedule :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (result, string) Stdlib.result
(** [Error] under the same conditions as the Data Scheduler (some [DS(C)]
    exceeding the FB set even at RF = 1, or context-memory overflow).
    Builds a {!Sched.Sched_ctx} internally; callers scheduling the same
    [(app, clustering)] repeatedly should build one and use
    {!schedule_ctx}. *)

val schedule_ctx :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Sched.Sched_ctx.t ->
  (result, string) Stdlib.result
(** {!schedule} over a precomputed scheduling context: profile and
    DS-formula lookups are O(1), the retention pass runs incrementally
    ({!Retention.choose_ctx}), the no-retention case computes its
    generators once, and the per-RF loop reuses generators when
    successive reuse factors retain the same candidate set. *)

val schedule_diag :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (result, Diag.t) Stdlib.result
(** Structured variant of {!schedule}: failures are [No_feasible_rf] or
    [Cm_overflow] diagnostics carrying the offending cluster where known.
    The string APIs are shims over this via {!Diag.to_string}. *)

val schedule_ctx_diag :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Sched.Sched_ctx.t ->
  (result, Diag.t) Stdlib.result
(** {!schedule_diag} over a precomputed scheduling context. *)

val retention_diags : Retention.decision -> Diag.t list
(** One [Warning]-severity [Retention_rejected] diagnostic per candidate
    the retention pass declined, carrying the data name and the reason. *)

val schedule_reference :
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (result, string) Stdlib.result
(** The original list-based implementation, retained verbatim: the
    equivalence oracle for the indexed path and the baseline the scaling
    bench times against. Produces results byte-identical to
    {!schedule}. *)
