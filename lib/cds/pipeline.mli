(** End-to-end compilation pipeline: kernel scheduling (clustering search),
    the three data schedulers (Basic / DS / CDS), simulation, validation and
    allocator statistics — everything Table 1 and Figure 6 need for one
    experiment. Scheduler dispatch goes through {!Sched.Scheduler_registry},
    so the degradation ladder and the clustering search accept any
    registered scheduler by name. *)

type scheduled = { schedule : Sched.Schedule.t; metrics : Msim.Metrics.t }

val default_ladder : string list
(** [["cds"; "ds"; "basic"]] — the degradation ladder, best first. *)

type degradation = {
  delivered : string option;
      (** the best ladder entry that produced a valid simulated schedule;
          [None] when every entry failed *)
  chain : (string * Diag.t) list;
      (** the failures encountered walking the ladder, in order, up to
          (excluding) the delivered entry — names come from the ladder
          (i.e. the registry), not from a hard-coded tier list *)
  fallback : scheduled option;
      (** the delivered schedule itself; carried here because a custom
          ladder may deliver a scheduler that has no column in
          {!comparison} *)
}

type comparison = {
  app : Kernel_ir.Application.t;
  config : Morphosys.Config.t;
  clustering : Kernel_ir.Cluster.clustering;
  basic : (scheduled, string) result;
  ds : (scheduled, string) result;
  cds : (scheduled * Complete_data_scheduler.result, string) result;
  degradation : degradation option;
      (** [Some] iff the comparison was produced by [run ~degrade:true] *)
}

val run :
  ?validate:bool ->
  ?retention:bool ->
  ?cross_set:bool ->
  ?degrade:bool ->
  ?ladder:string list ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  comparison
(** Schedules the application three ways on the given clustering and
    simulates each result. With [validate] (default true) every produced
    schedule is checked by {!Msim.Validate} first.

    With [degrade] (default false) the pipeline never raises: each tier's
    failure — infeasibility, validation divergence, any exception — is
    captured as a structured diagnostic, and [degradation] records the
    fallback chain down [ladder] (default {!default_ladder}) together
    with the tier that finally delivered ({!degraded_schedule}). Ladder
    entries beyond the standard three are resolved through
    {!Sched.Scheduler_registry}; unknown names fail that rung with an
    [Invalid_config] diagnostic and the walk continues.
    @raise Failure if validation finds a violation (a scheduler bug) and
    [degrade] is false. *)

val degraded_schedule : comparison -> (string * scheduled) option
(** The schedule the degradation ladder delivered — the best feasible tier
    with its registry name — or [None] when every tier failed (or [run]
    ran without [~degrade]). *)

val pp_degradation : Format.formatter -> degradation -> unit
(** Renders the chain, one ["<name> unavailable: <diag>"] line per failed
    tier, then the delivering tier. *)

val improvement : comparison -> [ `Ds | `Cds ] -> float option
(** Relative execution improvement over the Basic Scheduler in percent
    (Figure 6); [None] when either party is infeasible. *)

val ds_rf : comparison -> int option
(** The reuse factor DS/CDS achieved (Table 1's RF column). *)

val dt_words : comparison -> int option
(** Data words avoided per iteration by CDS retention (Table 1's DT). *)

val auto_clustering :
  ?store:Engine.Store.t ->
  ?scheduler:string ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  (Kernel_ir.Cluster.clustering * int) option
(** Kernel-scheduler search: the clustering minimising the named
    scheduler's simulated cycles (default ["cds"]; any
    {!Sched.Scheduler_registry} name is accepted); [None] when no
    partition is feasible — or the name is unknown.

    [?store] memoises each candidate clustering's cycle count in an
    {!Engine.Store}, keyed by (application, clustering, config,
    scheduler) digest, so an interrupted search resumes without
    rescheduling candidates it already evaluated. Store failures
    degrade to recomputation — the search result never depends on the
    store's health. *)

val allocation_report :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Allocation_algorithm.result, string) result
(** Runs the Figure 4 allocator for round 0 of the CDS schedule. *)
