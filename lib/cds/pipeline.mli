(** End-to-end compilation pipeline: kernel scheduling (clustering search),
    the three data schedulers (Basic / DS / CDS), simulation, validation and
    allocator statistics — everything Table 1 and Figure 6 need for one
    experiment. *)

type scheduled = { schedule : Sched.Schedule.t; metrics : Msim.Metrics.t }

type tier = [ `Basic | `Ds | `Cds ]
(** The degradation ladder, best first: CDS, then DS, then Basic. *)

type degradation = {
  delivered : tier option;
      (** the best tier that produced a valid simulated schedule; [None]
          when even Basic is infeasible *)
  chain : (tier * Diag.t) list;
      (** the failures encountered walking CDS -> DS -> Basic, in order,
          up to (excluding) the delivered tier *)
}

type comparison = {
  app : Kernel_ir.Application.t;
  config : Morphosys.Config.t;
  clustering : Kernel_ir.Cluster.clustering;
  basic : (scheduled, string) result;
  ds : (scheduled, string) result;
  cds : (scheduled * Complete_data_scheduler.result, string) result;
  degradation : degradation option;
      (** [Some] iff the comparison was produced by [run ~degrade:true] *)
}

val tier_name : tier -> string
(** ["basic"] / ["ds"] / ["cds"]. *)

val run :
  ?validate:bool ->
  ?retention:bool ->
  ?cross_set:bool ->
  ?degrade:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  comparison
(** Schedules the application three ways on the given clustering and
    simulates each result. With [validate] (default true) every produced
    schedule is checked by {!Msim.Validate} first.

    With [degrade] (default false) the pipeline never raises: each tier's
    failure — infeasibility, validation divergence, any exception — is
    captured as a structured diagnostic, and [degradation] records the
    CDS -> DS -> Basic fallback chain together with the tier that finally
    delivered ({!degraded_schedule}).
    @raise Failure if validation finds a violation (a scheduler bug) and
    [degrade] is false. *)

val degraded_schedule : comparison -> (tier * scheduled) option
(** The schedule the degradation ladder delivered — the best feasible tier
    — or [None] when every tier failed (or [run] ran without [~degrade]
    and the delivered tier cannot be identified). *)

val pp_degradation : Format.formatter -> degradation -> unit
(** Renders the chain, one ["<tier> unavailable: <diag>"] line per failed
    tier, then the delivering tier. *)

val improvement : comparison -> [ `Ds | `Cds ] -> float option
(** Relative execution improvement over the Basic Scheduler in percent
    (Figure 6); [None] when either party is infeasible. *)

val ds_rf : comparison -> int option
(** The reuse factor DS/CDS achieved (Table 1's RF column). *)

val dt_words : comparison -> int option
(** Data words avoided per iteration by CDS retention (Table 1's DT). *)

val auto_clustering :
  ?scheduler:[ `Basic | `Ds | `Cds ] ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  (Kernel_ir.Cluster.clustering * int) option
(** Kernel-scheduler search: the clustering minimising the chosen
    scheduler's simulated cycles (default [`Cds]); [None] when no partition
    is feasible. *)

val allocation_report :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Allocation_algorithm.result, string) result
(** Runs the Figure 4 allocator for round 0 of the CDS schedule. *)
