(** The greedy retention pass (paper §4): walk the TF-ranked candidates and
    keep each one whose pinned words still fit every affected cluster,
    i.e. [rf * DS(C, pinned) <= fb_set_size] for all same-set clusters in
    the candidate's window. Retention never lowers the reuse factor the
    Data Scheduler achieved — it only spends the residual space. *)

type decision = {
  retained : Sharing.t list;  (** accepted, in TF order *)
  rejected : (Sharing.t * string) list;  (** declined, with the reason *)
  avoided_words_per_iteration : int;
  avoided_transfers_per_iteration : int;
}

val pinned_for :
  retained:Sharing.t list -> cluster:Kernel_ir.Cluster.t -> Kernel_ir.Data.t list
(** The objects occupying the cluster's set for its whole execution because
    of retention (excludes a shared result at its own producer, which the
    cluster footprint already charges as rout). *)

type ranking =
  [ `Tf  (** the paper's time-factor order (default) *)
  | `Fifo  (** candidates in data-object order — no prioritisation *)
  | `Smallest_first  (** smallest objects first *)
  | `Largest_first  (** largest objects first, ignoring the use count *) ]
(** Candidate orderings, for the ablation benchmark: under tight memory the
    greedy pass keeps a prefix of the order, so the order decides which
    transfers are avoided. *)

val choose :
  ?cross_set:bool ->
  ?ranking:ranking ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  rf:int ->
  decision
(** @raise Invalid_argument if [rf < 1]. This is the reference list-based
    implementation: it rebuilds every affected cluster's pinned set and DS
    split from scratch for each candidate. *)

val choose_ctx :
  ?cross_set:bool ->
  ?ranking:ranking ->
  Morphosys.Config.t ->
  Sched.Sched_ctx.t ->
  rf:int ->
  decision
(** Same decision as {!choose} (identical retained/rejected lists and
    rejection strings), computed incrementally over a precomputed
    scheduling context: each cluster keeps the sweep arrays of the DS
    closed form, pins update them in place, and a candidate's feasibility
    is an O(cluster kernels) query instead of a from-scratch profile walk.
    @raise Invalid_argument if [rf < 1]. *)

val none : decision
(** The empty decision — used to ablate retention. *)

val pp_decision : Format.formatter -> decision -> unit
