(** Retention candidates (paper §4): the shared data [D_i..j] and shared
    results [R_i,j..k] that the Complete Data Scheduler may keep in the
    frame buffer to avoid external-memory transfers.

    A candidate binds a shared object to the FB set that would hold it, the
    cluster that first materialises it there (first consumer for shared
    data, producer for shared results), the window of cluster ids during
    which it stays pinned, and the external-memory words its retention
    avoids per application iteration.

    By default only clusters assigned to the *same* FB set can share a
    retained object; [~cross_set:true] enables the paper's future-work
    extension where the architecture lets a cluster read the other set. *)

type t = {
  shared : Kernel_ir.Info_extractor.shared;
  set : Morphosys.Frame_buffer.set;  (** the set that holds the object *)
  first_cluster : int;  (** loader (shared data) or producer (result) *)
  window : int * int;  (** inclusive cluster-id range of residency *)
  beneficiaries : int list;
      (** consumer clusters that skip a load thanks to retention *)
  avoided_words : int;  (** external words avoided per iteration *)
  avoided_transfers : int;
      (** transfer count avoided: N-1 for shared data, N+1 for shared
          results, N for final shared results (the store stays) *)
}

val data : t -> Kernel_ir.Data.t

val candidates :
  ?cross_set:bool ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  t list
(** All retention opportunities of the clustering, unordered. *)

val candidates_ctx : ?cross_set:bool -> Kernel_ir.Analysis.t -> t list
(** {!candidates} over a precomputed analysis context: reads the context's
    cached sharing list and O(1) cluster lookups instead of re-deriving
    them from the application. Returns the same list. *)

val pins_cluster : t -> cluster_id:int -> bool
(** Whether retaining this candidate occupies FB space for the whole
    duration of the given cluster's execution. True for every same-set
    cluster inside the window except the producer of a shared result (whose
    footprint already charges the result as [rout]). *)

val skips_load : t -> cluster_id:int -> bool
(** Whether the given cluster may skip loading the object because retention
    keeps it resident: every beneficiary except, for shared data, the first
    consumer (who still performs the single load). *)

val skips_store : t -> cluster_id:int -> bool
(** Whether the producer cluster may skip storing the object: shared
    results only, and only when the object is not a final result. *)

val pp : Format.formatter -> t -> unit
