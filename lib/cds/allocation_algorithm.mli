(** The data and results allocation algorithm of paper §5 (Figure 4).

    Simulates one round (RF consecutive iterations) of the clustered
    application at placement granularity, driving one {!Fb_alloc.Layout} per
    frame-buffer set with the paper's policy:

    - shared data retained for later clusters is placed first, longest
      window first, by first-fit from the *upper* addresses;
    - then each cluster's own input data, inputs of later kernels first,
      also from the upper addresses (they live longest);
    - as kernels execute (kernel-major order — each kernel runs its RF
      iterations consecutively, per loop fission), retained shared results
      go to the upper region, while final and intermediate results are
      placed from the *lower* addresses;
    - [release] returns the space of data and results that no later kernel
      or retained window needs, so new results replace dead objects;
    - placement is *regular*: an object instance re-placed on a later
      iteration reuses its previous address when free, and objects are only
      split across free blocks as a last resort.

    The run records Figure 5-style occupancy snapshots and the allocator
    quality statistics the paper reports (no split needed on any evaluated
    application, minimal memory). *)

type snapshot = { caption : string; cells : string option array }

type result = {
  snapshots : snapshot list;
  stats : (Morphosys.Frame_buffer.set * Fb_alloc.Frag_stats.t) list;
      (** end-of-round allocator statistics per set *)
  splits : int;  (** placements that had to be split across free blocks *)
  peak_words : (int * int) list;
      (** per cluster id: peak words in use in its set during its run *)
  failures : string list;  (** objects that could not be placed at all *)
}

val run :
  ?analysis:Kernel_ir.Analysis.t ->
  ?capture:(cluster_id:int -> bool) ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  rf:int ->
  retention:Retention.decision ->
  round:int ->
  result
(** [capture] selects the clusters whose snapshots are recorded (default:
    all). [analysis] supplies precomputed cluster profiles (must belong to
    the same [(app, clustering)]); without it the profiles are re-derived.
    @raise Invalid_argument if [rf < 1] or [round < 0]. *)
