module IE = Kernel_ir.Info_extractor
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data

let log_src = Logs.Src.create "cds.retention" ~doc:"Retention decisions"

module Log = (val Logs.src_log log_src)

type decision = {
  retained : Sharing.t list;
  rejected : (Sharing.t * string) list;
  avoided_words_per_iteration : int;
  avoided_transfers_per_iteration : int;
}

let none =
  {
    retained = [];
    rejected = [];
    avoided_words_per_iteration = 0;
    avoided_transfers_per_iteration = 0;
  }

let pinned_for ~retained ~cluster =
  List.filter_map
    (fun (c : Sharing.t) ->
      if
        c.Sharing.set = cluster.Cluster.fb_set
        && Sharing.pins_cluster c ~cluster_id:cluster.Cluster.id
      then Some (Sharing.data c)
      else None)
    retained

type ranking = [ `Tf | `Fifo | `Smallest_first | `Largest_first ]

let order ranking ~tds candidates =
  let size c = (Sharing.data c).Data.size in
  let data_id c = (Sharing.data c).Data.id in
  match ranking with
  | `Tf -> Time_factor.rank ~tds candidates
  | `Fifo ->
    List.sort (fun a b -> compare (data_id a) (data_id b)) candidates
  | `Smallest_first ->
    List.sort (fun a b -> compare (size a, data_id a) (size b, data_id b))
      candidates
  | `Largest_first ->
    List.sort (fun a b -> compare (size b, data_id a) (size a, data_id b))
      candidates

(* Words of external traffic a retained candidate avoids, averaged per
   iteration. Ordinary shared objects save transfers within every iteration
   (the static [avoided_words]); an invariant table is loaded once for the
   whole run instead of once per consumer cluster per round. *)
let effective_avoided ~rf ~iterations (candidate : Sharing.t) =
  let d = Sharing.data candidate in
  if d.Data.invariant then
    let rounds = (iterations + rf - 1) / rf in
    let loads_without = List.length candidate.Sharing.beneficiaries * rounds in
    d.Data.size * (loads_without - 1) / iterations
  else candidate.Sharing.avoided_words

let choose ?(cross_set = false) ?(ranking = `Tf)
    (config : Morphosys.Config.t) app clustering ~rf =
  if rf < 1 then invalid_arg "Retention.choose: rf must be >= 1";
  let iterations = app.Kernel_ir.Application.iterations in
  let profiles = IE.profiles app clustering in
  let profile_of id = List.nth profiles id in
  let tds = Time_factor.tds app in
  let ranked =
    match ranking with
    | `Tf ->
      (* rank by traffic actually avoided at this rf (reduces to the TF
         order when no invariant data is involved) *)
      List.stable_sort
        (fun a b ->
          compare
            (effective_avoided ~rf ~iterations b)
            (effective_avoided ~rf ~iterations a))
        (Time_factor.rank ~tds (Sharing.candidates ~cross_set app clustering))
    | ranking ->
      order ranking ~tds (Sharing.candidates ~cross_set app clustering)
  in
  let fits retained (candidate : Sharing.t) =
    (* Re-check every same-set cluster the candidate occupies space during
       (its window, or every cluster for an invariant table) with the
       candidate tentatively added to the already-accepted set. *)
    let tentative = candidate :: retained in
    let lo, hi = candidate.Sharing.window in
    let invariant = (Sharing.data candidate).Data.invariant in
    let affected =
      List.filter
        (fun (c : Cluster.t) ->
          c.Cluster.fb_set = candidate.Sharing.set
          && (invariant || (lo <= c.Cluster.id && c.Cluster.id <= hi)))
        clustering
    in
    List.find_map
      (fun (c : Cluster.t) ->
        let pinned = pinned_for ~retained:tentative ~cluster:c in
        let per_iteration, constant =
          Sched.Ds_formula.split ~pinned (profile_of c.Cluster.id)
        in
        if (rf * per_iteration) + constant > config.fb_set_size then
          Some
            (Printf.sprintf
               "cluster %d would need %d x %dw + %dw = %dw > FB set %dw"
               c.Cluster.id rf per_iteration constant
               ((rf * per_iteration) + constant)
               config.fb_set_size)
        else None)
      affected
  in
  let retained, rejected =
    List.fold_left
      (fun (retained, rejected) candidate ->
        match fits retained candidate with
        | None ->
          Log.debug (fun m -> m "retain %a" Sharing.pp candidate);
          (candidate :: retained, rejected)
        | Some reason ->
          Log.debug (fun m -> m "reject %a: %s" Sharing.pp candidate reason);
          (retained, (candidate, reason) :: rejected))
      ([], []) ranked
  in
  let retained = List.rev retained in
  {
    retained;
    rejected = List.rev rejected;
    avoided_words_per_iteration =
      Msutil.Listx.sum_by (effective_avoided ~rf ~iterations) retained;
    avoided_transfers_per_iteration =
      Msutil.Listx.sum_by (fun c -> c.Sharing.avoided_transfers) retained;
  }

(* Per-cluster incremental DS-split state. A pinned object is always a
   cluster *input* over the affected window — never one of the cluster's
   intermediates, and never the producer's own rout (pins_cluster excludes
   the producer) — so pinning only (a) removes the object's words from the
   d-suffix term of the closed-form peak at its last-consumer position and
   (b) adds them to the constant or regular pinned sum. Keeping the sweep
   arrays of [Ds_formula.closed_form_fast] per cluster therefore turns a
   tentative-pin split query into an O(cluster kernels) scan with no
   allocation, instead of a from-scratch profile walk. *)
type cluster_state = {
  nk : int;
  rp_inter : int array;
      (* rout prefix + live intermediate words, by kernel position *)
  d_suffix : int array;  (* suffix sums of unstripped d_object words *)
  last_pos : (int, int) Hashtbl.t;  (* input id -> last consumer position *)
  stripped : (int, unit) Hashtbl.t;  (* ids removed from [d_suffix] *)
  const_ids : (int, unit) Hashtbl.t;  (* the deduped constants set *)
  mutable const_words : int;
  mutable reg_words : int;  (* regular pinned words (list sum) *)
}

let cluster_state_of (profile : IE.cluster_profile) =
  let kps = profile.IE.kernel_profiles in
  let nk = List.length kps in
  let pos_of = Hashtbl.create (max 8 (nk * 2)) in
  List.iteri
    (fun pos k -> Hashtbl.replace pos_of k pos)
    profile.IE.cluster.Cluster.kernels;
  let last_pos = Hashtbl.create 16 in
  let stripped = Hashtbl.create 8 in
  let const_ids = Hashtbl.create 8 in
  let const_words = ref 0 in
  let d_arr = Array.make (nk + 1) 0 in
  let rout = Array.make (nk + 1) 0 in
  let diff = Array.make (nk + 1) 0 in
  List.iteri
    (fun pos (p : IE.kernel_profile) ->
      List.iter
        (fun (d : Data.t) ->
          Hashtbl.replace last_pos d.Data.id pos;
          if d.Data.invariant then begin
            (* invariant inputs are constants from the start: stripped from
               the per-iteration peak, charged once as constant words *)
            Hashtbl.replace stripped d.Data.id ();
            if not (Hashtbl.mem const_ids d.Data.id) then begin
              Hashtbl.add const_ids d.Data.id ();
              const_words := !const_words + d.Data.size
            end
          end
          else d_arr.(pos) <- d_arr.(pos) + d.Data.size)
        p.IE.d_objects;
      rout.(pos) <- IE.rout_words p;
      List.iter
        (fun ((d : Data.t), t) ->
          let t_pos =
            match Hashtbl.find_opt pos_of t with
            | Some pos -> pos
            | None -> assert false (* t is in the cluster by construction *)
          in
          diff.(pos) <- diff.(pos) + d.Data.size;
          diff.(t_pos + 1) <- diff.(t_pos + 1) - d.Data.size)
        p.IE.intermediate_objects)
    kps;
  for i = nk - 1 downto 0 do
    d_arr.(i) <- d_arr.(i) + d_arr.(i + 1)
  done;
  let rp_inter = Array.make (nk + 1) 0 in
  let rout_prefix = ref 0 and inter = ref 0 in
  for i = 0 to nk - 1 do
    rout_prefix := !rout_prefix + rout.(i);
    inter := !inter + diff.(i);
    rp_inter.(i) <- !rout_prefix + !inter
  done;
  {
    nk;
    rp_inter;
    d_suffix = d_arr;
    last_pos;
    stripped;
    const_ids;
    const_words = !const_words;
    reg_words = 0;
  }

(* Peak of the per-iteration residency, optionally with [delta] words
   removed from positions [<= delta_pos] (the tentative strip). *)
let peak st ~delta_pos ~delta =
  let best = ref 0 in
  for i = 0 to st.nk - 1 do
    let v =
      st.d_suffix.(i) - (if i <= delta_pos then delta else 0) + st.rp_inter.(i)
    in
    if v > !best then best := v
  done;
  !best

let strip_of st (d : Data.t) =
  match Hashtbl.find_opt st.last_pos d.Data.id with
  | Some p when not (Hashtbl.mem st.stripped d.Data.id) -> (p, d.Data.size)
  | _ -> (-1, 0)

let current_split st =
  (peak st ~delta_pos:(-1) ~delta:0 + st.reg_words, st.const_words)

(* (per_iteration, constant) if [d] were pinned on top of the current
   state — the same integers [Ds_formula.split] yields for the extended
   pinned list. *)
let tentative_split st (d : Data.t) =
  let delta_pos, delta = strip_of st d in
  if d.Data.invariant then
    let const =
      if Hashtbl.mem st.const_ids d.Data.id then st.const_words
      else st.const_words + d.Data.size
    in
    (peak st ~delta_pos ~delta + st.reg_words, const)
  else (peak st ~delta_pos ~delta + st.reg_words + d.Data.size, st.const_words)

let commit_pin st (d : Data.t) =
  (match strip_of st d with
  | -1, _ -> ()
  | p, size ->
    Hashtbl.add st.stripped d.Data.id ();
    for i = 0 to p do
      st.d_suffix.(i) <- st.d_suffix.(i) - size
    done);
  if d.Data.invariant then begin
    if not (Hashtbl.mem st.const_ids d.Data.id) then begin
      Hashtbl.add st.const_ids d.Data.id ();
      st.const_words <- st.const_words + d.Data.size
    end
  end
  else st.reg_words <- st.reg_words + d.Data.size

(* Indexed variant of [choose]. Equivalent decision (same retained /
   rejected lists, same reason strings), but the feasibility check runs on
   the incremental per-cluster state above instead of re-deriving every
   affected cluster's pinned set and DS split from scratch per candidate.
   Rejected candidates never touch the state, so cached splits stay
   exact. *)
let choose_ctx ?(cross_set = false) ?(ranking = `Tf)
    (config : Morphosys.Config.t) (ctx : Sched.Sched_ctx.t) ~rf =
  if rf < 1 then invalid_arg "Retention.choose: rf must be >= 1";
  let analysis = Sched.Sched_ctx.analysis ctx in
  let app = Sched.Sched_ctx.app ctx in
  let iterations = app.Kernel_ir.Application.iterations in
  let tds = Kernel_ir.Analysis.tds analysis in
  let ranked =
    match ranking with
    | `Tf ->
      List.stable_sort
        (fun a b ->
          compare
            (effective_avoided ~rf ~iterations b)
            (effective_avoided ~rf ~iterations a))
        (Time_factor.rank ~tds (Sharing.candidates_ctx ~cross_set analysis))
    | ranking ->
      order ranking ~tds (Sharing.candidates_ctx ~cross_set analysis)
  in
  let n = Kernel_ir.Analysis.n_clusters analysis in
  let states =
    Array.init n (fun id ->
        cluster_state_of (Kernel_ir.Analysis.profile analysis id))
  in
  (* Same-set clusters the candidate occupies space during, ascending id —
     the same order [choose]'s filter over the clustering walks them, so a
     rejection reports the same first-failing cluster. *)
  let affected_ids (candidate : Sharing.t) =
    let lo, hi = candidate.Sharing.window in
    let invariant = (Sharing.data candidate).Data.invariant in
    List.filter
      (fun id ->
        (Kernel_ir.Analysis.cluster analysis id).Cluster.fb_set
        = candidate.Sharing.set
        && (invariant || (lo <= id && id <= hi)))
      (List.init n Fun.id)
  in
  let fits (candidate : Sharing.t) =
    let d = Sharing.data candidate in
    List.find_map
      (fun id ->
        let per_iteration, constant =
          if Sharing.pins_cluster candidate ~cluster_id:id then
            tentative_split states.(id) d
          else current_split states.(id)
        in
        if (rf * per_iteration) + constant > config.fb_set_size then
          Some
            (Printf.sprintf
               "cluster %d would need %d x %dw + %dw = %dw > FB set %dw" id
               rf per_iteration constant
               ((rf * per_iteration) + constant)
               config.fb_set_size)
        else None)
      (affected_ids candidate)
  in
  let accept (candidate : Sharing.t) =
    let d = Sharing.data candidate in
    List.iter
      (fun id ->
        if Sharing.pins_cluster candidate ~cluster_id:id then
          commit_pin states.(id) d)
      (affected_ids candidate)
  in
  let retained, rejected =
    List.fold_left
      (fun (retained, rejected) candidate ->
        match fits candidate with
        | None ->
          Log.debug (fun m -> m "retain %a" Sharing.pp candidate);
          accept candidate;
          (candidate :: retained, rejected)
        | Some reason ->
          Log.debug (fun m -> m "reject %a: %s" Sharing.pp candidate reason);
          (retained, (candidate, reason) :: rejected))
      ([], []) ranked
  in
  let retained = List.rev retained in
  {
    retained;
    rejected = List.rev rejected;
    avoided_words_per_iteration =
      Msutil.Listx.sum_by (effective_avoided ~rf ~iterations) retained;
    avoided_transfers_per_iteration =
      Msutil.Listx.sum_by (fun c -> c.Sharing.avoided_transfers) retained;
  }

let pp_decision fmt t =
  Format.fprintf fmt "@[<v>retained (%d, avoiding %dw/iter):@,"
    (List.length t.retained) t.avoided_words_per_iteration;
  List.iter (fun c -> Format.fprintf fmt "  + %a@," Sharing.pp c) t.retained;
  List.iter
    (fun (c, reason) ->
      Format.fprintf fmt "  - %a [%s]@," Sharing.pp c reason)
    t.rejected;
  Format.fprintf fmt "@]"
