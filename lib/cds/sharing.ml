module IE = Kernel_ir.Info_extractor
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data
module Fb = Morphosys.Frame_buffer

type t = {
  shared : IE.shared;
  set : Fb.set;
  first_cluster : int;
  window : int * int;
  beneficiaries : int list;
  avoided_words : int;
  avoided_transfers : int;
}

let data t = IE.shared_of_data t.shared

let set_of_cluster clustering id = (Cluster.find clustering id).Cluster.fb_set

let candidates_of ~cross_set ~set_of_cluster shared =
  List.concat_map
    (fun s ->
      match s with
      | IE.Shared_data { data; consumer_clusters } ->
        (* Group the consumers by the set their cluster runs on; each group
           of two or more is an independent retention opportunity (the same
           datum can be retained in both sets). An iteration-invariant table
           qualifies even with a single consumer cluster: retaining it saves
           the per-round reloads. Cross-set mode treats all consumers as one
           group held by the first consumer's set. *)
        let groups =
          if cross_set then
            [ (set_of_cluster (List.hd consumer_clusters),
               consumer_clusters) ]
          else
            [ Fb.Set_a; Fb.Set_b ]
            |> List.map (fun set ->
                   ( set,
                     List.filter
                       (fun c -> set_of_cluster c = set)
                       consumer_clusters ))
        in
        List.filter_map
          (fun (set, group) ->
            let qualifies =
              match group with
              | _ :: _ :: _ -> true
              | [ _ ] -> data.Data.invariant
              | [] -> false
            in
            match group with
            | first :: _ when qualifies ->
              let n = List.length group in
              Some
                {
                  shared = s;
                  set;
                  first_cluster = first;
                  window = (first, Msutil.Listx.max_by (fun c -> c) group);
                  beneficiaries = group;
                  avoided_words = (n - 1) * data.Data.size;
                  avoided_transfers = n - 1;
                }
            | _ -> None)
          groups
      | IE.Shared_result { data; producer_cluster; consumer_clusters } ->
        let set = set_of_cluster producer_cluster in
        let group =
          if cross_set then consumer_clusters
          else
            List.filter
              (fun c -> set_of_cluster c = set)
              consumer_clusters
        in
        if group = [] then []
        else
          let n = List.length group in
          let avoided_transfers = if data.Data.final then n else n + 1 in
          [
            {
              shared = s;
              set;
              first_cluster = producer_cluster;
              window =
                (producer_cluster, Msutil.Listx.max_by (fun c -> c) group);
              beneficiaries = group;
              avoided_words = avoided_transfers * data.Data.size;
              avoided_transfers;
            };
          ])
    shared

let candidates ?(cross_set = false) app clustering =
  candidates_of ~cross_set
    ~set_of_cluster:(set_of_cluster clustering)
    (IE.sharing app clustering)

let candidates_ctx ?(cross_set = false) (analysis : Kernel_ir.Analysis.t) =
  candidates_of ~cross_set
    ~set_of_cluster:(fun id ->
      (Kernel_ir.Analysis.cluster analysis id).Cluster.fb_set)
    (Kernel_ir.Analysis.sharing analysis)

let is_producer t ~cluster_id =
  match t.shared with
  | IE.Shared_result { producer_cluster; _ } -> producer_cluster = cluster_id
  | IE.Shared_data _ -> false

let pins_cluster t ~cluster_id =
  if (data t).Data.invariant then
    (* a retained constant table stays in the frame buffer for the whole
       run, so it occupies space during every same-set cluster *)
    true
  else
    let lo, hi = t.window in
    lo <= cluster_id && cluster_id <= hi && not (is_producer t ~cluster_id)

let skips_load t ~cluster_id =
  List.mem cluster_id t.beneficiaries
  &&
  match t.shared with
  | IE.Shared_data _ -> cluster_id <> t.first_cluster
  | IE.Shared_result _ -> true

let skips_store t ~cluster_id =
  is_producer t ~cluster_id && not (data t).Data.final

let pp fmt t =
  Format.fprintf fmt "%a in set %a, window Cl%d..Cl%d, avoids %dw (%d xfers)"
    IE.pp_shared t.shared Fb.pp_set t.set (fst t.window) (snd t.window)
    t.avoided_words t.avoided_transfers
