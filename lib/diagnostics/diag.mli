(** Structured diagnostics for the whole scheduling stack.

    Every failure the stack can produce — legitimate infeasibility (a
    cluster's footprint exceeding the frame buffer, no feasible reuse
    factor), malformed inputs, simulator divergence, crashed or timed-out
    pool tasks, injected faults — is described by one {!t}: a
    machine-readable {!code}, the cluster/kernel/data context it refers
    to, a severity, and a human rendering. Producers build diagnostics
    with {!v}; consumers either match on {!code} (machine path) or print
    {!to_string} / {!render} (human path).

    [to_string] deliberately reproduces the legacy [string] error texts
    the schedulers used to return (["cds: some cluster's DS(C) exceeds
    …"]), so threading [Diag.t] through an API needs only
    [Result.map_error Diag.to_string] to stay message-compatible. *)

type code =
  | Fb_overflow  (** a cluster footprint exceeds the FB set even at RF=1 *)
  | Cm_overflow  (** a cluster's context words exceed the context memory *)
  | No_feasible_rf  (** no reuse factor >= 1 satisfies [DS(C) <= FBS] *)
  | Retention_rejected  (** a retention candidate was declined (warning) *)
  | Invalid_app  (** malformed application: kernels, data, iterations *)
  | Invalid_clustering  (** malformed clustering or partition *)
  | Invalid_config  (** malformed machine configuration *)
  | Sim_divergence  (** the semantic validator rejected a schedule *)
  | Task_crashed  (** a pool task raised an unexpected exception *)
  | Task_timeout  (** a pool task exceeded its cooperative deadline *)
  | Fault_injected  (** a deterministic injected fault (Engine.Faults) *)
  | Store_corrupt
      (** an on-disk store record (or tail) failed its integrity check and
          was quarantined; warnings mean the affected points recompute *)
  | Sweep_mismatch
      (** on-disk sweep state does not belong to the sweep being resumed
          (different application, axes, scheduler set or schema version) *)

type severity = Warning | Error

type t = {
  code : code;
  severity : severity;
  scheduler : string option;  (** "basic" | "ds" | "cds" when known *)
  cluster : int option;  (** offending cluster id *)
  kernel : string option;  (** offending kernel name *)
  data : string option;  (** offending data-object name *)
  message : string;  (** human text, without any scheduler prefix *)
  backtrace : string option;  (** raw backtrace of a crashed task *)
}

val v :
  ?severity:severity ->
  ?scheduler:string ->
  ?cluster:int ->
  ?kernel:string ->
  ?data:string ->
  ?backtrace:string ->
  code ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v code fmt …] builds a diagnostic; severity defaults to [Error]. *)

val code_name : code -> string
(** Stable upper-snake identifier, e.g. ["FB_OVERFLOW"] — the
    machine-readable error-code namespace. *)

val is_error : t -> bool

val with_scheduler : string -> t -> t
(** Tag (or re-tag) the diagnostic with the scheduler that raised it. *)

val to_string : t -> string
(** Legacy-compatible text: the message prefixed with ["<scheduler>: "]
    when a scheduler is recorded — exactly the strings the pre-diagnostic
    APIs returned. *)

val render : t -> string
(** Full structured rendering:
    ["[E:FB_OVERFLOW basic] message (cluster 2)"], plus the backtrace on
    its own lines when present. *)

val pp : Format.formatter -> t -> unit
(** Prints {!render}. *)

val of_exn : ?scheduler:string -> ?backtrace:string -> exn -> t
(** Classify a caught exception: [Invalid_argument] becomes
    {!Invalid_app}, [Not_found] an {!Invalid_app} lookup failure, and
    anything else {!Task_crashed} carrying [Printexc.to_string]. *)

val guard : ?scheduler:string -> (unit -> 'a) -> ('a, t) result
(** Run the thunk, converting any exception into a diagnostic via
    {!of_exn} with the backtrace captured. *)

val protect : ?scheduler:string -> code:code -> (unit -> 'a) -> ('a, t) result
(** Like {!guard} but forces the resulting code — e.g.
    [protect ~code:Sim_divergence] around the semantic validator. *)
