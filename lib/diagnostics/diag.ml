type code =
  | Fb_overflow
  | Cm_overflow
  | No_feasible_rf
  | Retention_rejected
  | Invalid_app
  | Invalid_clustering
  | Invalid_config
  | Sim_divergence
  | Task_crashed
  | Task_timeout
  | Fault_injected
  | Store_corrupt
  | Sweep_mismatch

type severity = Warning | Error

type t = {
  code : code;
  severity : severity;
  scheduler : string option;
  cluster : int option;
  kernel : string option;
  data : string option;
  message : string;
  backtrace : string option;
}

let v ?(severity = Error) ?scheduler ?cluster ?kernel ?data ?backtrace code fmt
    =
  Format.kasprintf
    (fun message ->
      { code; severity; scheduler; cluster; kernel; data; message; backtrace })
    fmt

let code_name = function
  | Fb_overflow -> "FB_OVERFLOW"
  | Cm_overflow -> "CM_OVERFLOW"
  | No_feasible_rf -> "NO_FEASIBLE_RF"
  | Retention_rejected -> "RETENTION_REJECTED"
  | Invalid_app -> "INVALID_APP"
  | Invalid_clustering -> "INVALID_CLUSTERING"
  | Invalid_config -> "INVALID_CONFIG"
  | Sim_divergence -> "SIM_DIVERGENCE"
  | Task_crashed -> "TASK_CRASHED"
  | Task_timeout -> "TASK_TIMEOUT"
  | Fault_injected -> "FAULT_INJECTED"
  | Store_corrupt -> "STORE_CORRUPT"
  | Sweep_mismatch -> "SWEEP_MISMATCH"

let is_error t = t.severity = Error
let with_scheduler scheduler t = { t with scheduler = Some scheduler }

let to_string t =
  match t.scheduler with
  | Some s -> s ^ ": " ^ t.message
  | None -> t.message

let render t =
  let b = Buffer.create 128 in
  Buffer.add_char b '[';
  Buffer.add_string b (match t.severity with Error -> "E:" | Warning -> "W:");
  Buffer.add_string b (code_name t.code);
  (match t.scheduler with
  | Some s ->
    Buffer.add_char b ' ';
    Buffer.add_string b s
  | None -> ());
  Buffer.add_string b "] ";
  Buffer.add_string b t.message;
  let ctx =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "cluster %d") t.cluster;
        Option.map (Printf.sprintf "kernel %S") t.kernel;
        Option.map (Printf.sprintf "data %S") t.data;
      ]
  in
  if ctx <> [] then begin
    Buffer.add_string b " (";
    Buffer.add_string b (String.concat ", " ctx);
    Buffer.add_char b ')'
  end;
  (match t.backtrace with
  | Some bt when String.trim bt <> "" ->
    Buffer.add_char b '\n';
    Buffer.add_string b (String.trim bt)
  | _ -> ());
  Buffer.contents b

let pp fmt t = Format.pp_print_string fmt (render t)

let of_exn ?scheduler ?backtrace = function
  | Invalid_argument msg -> v ?scheduler ?backtrace Invalid_app "%s" msg
  | Not_found -> v ?scheduler ?backtrace Invalid_app "lookup failed: Not_found"
  | e ->
    v ?scheduler ?backtrace Task_crashed "uncaught exception: %s"
      (Printexc.to_string e)

let guard ?scheduler f =
  match f () with
  | x -> Ok x
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    Error (of_exn ?scheduler ~backtrace e)

let protect ?scheduler ~code f =
  match f () with
  | x -> Ok x
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    Error
      (v ?scheduler ~backtrace code "%s"
         (match e with Failure m | Invalid_argument m -> m | e -> Printexc.to_string e))
