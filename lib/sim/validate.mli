(** Semantic checker for schedules — the simulator's referee.

    Replays a schedule at the granularity of (object, iteration) instances
    and verifies, independently of how the schedule was built:

    - *residency*: every kernel input is present in the kernel's FB set when
      the kernel executes (loaded earlier, retained, or produced by an
      earlier kernel of the same cluster in the same iteration);
    - *store validity*: every stored instance was resident when stored;
    - *output completeness*: every final result of every iteration is stored
      to external memory exactly once;
    - *overlap legality*: no transfer overlapped with a computation touches
      the computing cluster's FB set;
    - *computation coverage*: every (cluster, iteration) pair executes
      exactly once, in iteration order per cluster.

    Space (does everything fit?) is checked separately by the footprint
    logic and the allocation algorithm, not here. *)

type violation = { step_index : int; message : string }

val check : Sched.Schedule.t -> violation list
(** Empty list = schedule is semantically sound. *)

val check_result : Sched.Schedule.t -> (unit, Diag.t) result
(** {!check} as a structured result: the violations joined into one
    [Sim_divergence] diagnostic. *)

val check_exn : Sched.Schedule.t -> unit
(** @raise Failure with a joined diagnostic if any violation is found.
    Callers that must not raise should use {!check_result}. *)

val pp_violation : Format.formatter -> violation -> unit
