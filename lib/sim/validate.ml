module Dma = Morphosys.Dma
module Fb = Morphosys.Frame_buffer
module Schedule = Sched.Schedule
module Application = Kernel_ir.Application
module Data = Kernel_ir.Data

type violation = { step_index : int; message : string }

let pp_violation fmt v =
  Format.fprintf fmt "step %d: %s" v.step_index v.message

type state = {
  resident : (Fb.set * string, unit) Hashtbl.t;
  stored : (string, int) Hashtbl.t;
  executed : (int * int, unit) Hashtbl.t;
  mutable violations : violation list;
}

let report state step_index fmt =
  Format.kasprintf
    (fun message ->
      state.violations <- { step_index; message } :: state.violations)
    fmt

let mark_resident state set label =
  Hashtbl.replace state.resident (set, label) ()

let is_resident state set label = Hashtbl.mem state.resident (set, label)

let is_readable state ~cross_set set label =
  is_resident state set label
  || (cross_set && is_resident state (Fb.other set) label)

let check_compute state app i (c : Schedule.computation) ~rf ~cross_set =
  let cluster = c.Schedule.cluster in
  let set = cluster.Kernel_ir.Cluster.fb_set in
  let base = c.Schedule.round * rf in
  for local = 0 to c.Schedule.iterations - 1 do
    let g = base + local in
    let key = (cluster.Kernel_ir.Cluster.id, g) in
    if Hashtbl.mem state.executed key then
      report state i "cluster %d executes iteration %d twice"
        cluster.Kernel_ir.Cluster.id g
    else Hashtbl.replace state.executed key ();
    List.iter
      (fun kid ->
        List.iter
          (fun (d : Data.t) ->
            let label =
              Schedule.instance_label d.name ~iter:(Data.instance_iter d g)
            in
            if not (is_readable state ~cross_set set label) then
              report state i
                "kernel %d of cluster %d reads %s but it is not resident in \
                 set %s"
                kid cluster.Kernel_ir.Cluster.id label (Fb.set_to_string set))
          (Application.inputs_of app kid);
        List.iter
          (fun (d : Data.t) ->
            mark_resident state set (Schedule.instance_label d.name ~iter:g))
          (Application.outputs_of app kid))
      cluster.Kernel_ir.Cluster.kernels
  done

let check_dma state app i ~computing_set (tr : Dma.t) =
  (match (computing_set, tr.Dma.kind) with
  | Some cset, Dma.Data { set; _ } when set = cset ->
    report state i "transfer %a touches the computing set %s" Dma.pp tr
      (Fb.set_to_string cset)
  | _ -> ());
  match tr.Dma.kind with
  | Dma.Context -> ()
  | Dma.Data { set; direction } -> (
    (match Schedule.parse_label tr.Dma.label with
    | None -> report state i "unparsable data label %S" tr.Dma.label
    | Some (name, _) -> (
      match Application.data_by_name_opt app name with
      | Some (_ : Data.t) -> ()
      | None -> report state i "transfer references unknown data %S" name));
    match direction with
    | Dma.Load -> mark_resident state set tr.Dma.label
    | Dma.Store ->
      if not (is_resident state set tr.Dma.label) then
        report state i "store of %s from set %s but it is not resident"
          tr.Dma.label (Fb.set_to_string set);
      Hashtbl.replace state.stored tr.Dma.label
        (1 + Option.value ~default:0 (Hashtbl.find_opt state.stored tr.Dma.label)))

let check (schedule : Schedule.t) =
  let app = schedule.app in
  let state =
    {
      resident = Hashtbl.create 1024;
      stored = Hashtbl.create 1024;
      executed = Hashtbl.create 1024;
      violations = [];
    }
  in
  List.iteri
    (fun i (step : Schedule.step) ->
      let computing_set =
        Option.map
          (fun c -> c.Schedule.cluster.Kernel_ir.Cluster.fb_set)
          step.compute
      in
      (match step.compute with
      | Some c ->
        check_compute state app i c ~rf:schedule.rf
          ~cross_set:schedule.cross_set
      | None -> ());
      List.iter (check_dma state app i ~computing_set) step.dma)
    schedule.steps;
  let last = List.length schedule.steps in
  (* Output completeness: every final result of every iteration stored once. *)
  List.iter
    (fun (d : Data.t) ->
      for g = 0 to app.Application.iterations - 1 do
        let label = Schedule.instance_label d.name ~iter:g in
        match Option.value ~default:0 (Hashtbl.find_opt state.stored label) with
        | 1 -> ()
        | 0 -> report state last "final result %s never stored" label
        | n -> report state last "final result %s stored %d times" label n
      done)
    (Application.final_results app);
  (* Coverage: every cluster executes every iteration. *)
  List.iter
    (fun (c : Kernel_ir.Cluster.t) ->
      for g = 0 to app.Application.iterations - 1 do
        if not (Hashtbl.mem state.executed (c.Kernel_ir.Cluster.id, g)) then
          report state last "cluster %d never executes iteration %d"
            c.Kernel_ir.Cluster.id g
      done)
    schedule.clustering;
  List.rev state.violations

let check_result schedule =
  match check schedule with
  | [] -> Ok ()
  | violations ->
    Error
      (Diag.v Diag.Sim_divergence "%s"
         (violations
         |> List.map (Format.asprintf "%a" pp_violation)
         |> String.concat "; "))

let check_exn schedule =
  match check_result schedule with
  | Ok () -> ()
  | Error d -> failwith ("Validate.check_exn: " ^ d.Diag.message)
