(** Placement bookkeeping for one frame-buffer set.

    A [Layout.t] couples a {!Free_list} with the table of currently-placed
    objects, remembers where each object was placed on previous iterations
    (so the allocator can keep placements *regular* — same address every
    iteration, paper §5), and counts splits for the fragmentation report.
    It can render Figure 5-style occupancy snapshots. *)

type t

type placement = { label : string; intervals : Msutil.Interval.t list }

val create : size:int -> t
val size : t -> int
val free_words : t -> int
val largest_free : t -> int

val place :
  t -> label:string -> words:int -> from:Free_list.ends -> placement option
(** Places an object using the paper's policy:
    1. try the address the same-named object had last time it was placed
       (regularity across iterations);
    2. else contiguous first-fit from the chosen end;
    3. else split across several free blocks (counted in {!splits}).
    [None] if even splitting cannot satisfy the request.
    @raise Invalid_argument if [label] is already placed. *)

val release : t -> label:string -> unit
(** Frees the object's intervals.
    @raise Invalid_argument naming the label if it is not placed. *)

val placed : t -> label:string -> bool

val placement_of_opt : t -> label:string -> placement option

val placement_of : t -> label:string -> placement
(** @raise Invalid_argument naming the label if it is not placed. *)

val placements : t -> placement list
(** Sorted by first interval address. *)

val splits : t -> int
(** Number of placements so far that had to be split into several parts. *)

val placements_done : t -> int
(** Total number of successful placements so far. *)

val snapshot : t -> string option array
(** Word-by-word occupancy (index 0 = lowest address). *)

val render_snapshots :
  ?cell_width:int -> labels:string list -> string option array list -> string
(** ASCII rendering of a sequence of snapshots as columns (the layout of
    paper Figure 5): each row is one FB address region, each column one
    moment in time. [labels] captions the columns. *)

val invariant_ok : t -> bool
(** Free list healthy, no two placed objects overlapping, placements and
    free list partition the address space. *)
