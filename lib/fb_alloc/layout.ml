module Interval = Msutil.Interval

type placement = { label : string; intervals : Interval.t list }

type t = {
  free : Free_list.t;
  placed_table : (string, Interval.t list) Hashtbl.t;
  previous : (string, Interval.t list) Hashtbl.t;
      (* last placement of each label, for regularity *)
  mutable split_count : int;
  mutable placement_count : int;
}

let create ~size =
  {
    free = Free_list.create size;
    placed_table = Hashtbl.create 64;
    previous = Hashtbl.create 64;
    split_count = 0;
    placement_count = 0;
  }

let size t = Free_list.size t.free
let free_words t = Free_list.free_words t.free
let largest_free t = Free_list.largest_free t.free
let placed t ~label = Hashtbl.mem t.placed_table label

let placement_of_opt t ~label =
  Option.map
    (fun intervals -> { label; intervals })
    (Hashtbl.find_opt t.placed_table label)

let placement_of t ~label =
  match placement_of_opt t ~label with
  | Some p -> p
  | None -> invalid_arg ("Layout.placement_of: not placed: " ^ label)

let placements t =
  Hashtbl.fold
    (fun label intervals acc -> { label; intervals } :: acc)
    t.placed_table []
  |> List.sort (fun a b ->
         match (a.intervals, b.intervals) with
         | x :: _, y :: _ -> Interval.compare_lo x y
         | _ -> 0)

let splits t = t.split_count
let placements_done t = t.placement_count

let try_regular t ~label ~words =
  match Hashtbl.find_opt t.previous label with
  | Some prev
    when Msutil.Listx.sum_by Interval.length prev = words
         && List.for_all (Free_list.is_free t.free) prev ->
    List.iter (fun iv -> ignore (Free_list.allocate_at t.free iv)) prev;
    Some prev
  | _ -> None

let place t ~label ~words ~from =
  if words <= 0 then invalid_arg "Layout.place: words must be positive";
  if placed t ~label then
    invalid_arg ("Layout.place: already placed: " ^ label);
  let result =
    match try_regular t ~label ~words with
    | Some ivs -> Some ivs
    | None -> (
      match Free_list.allocate t.free ~from ~words with
      | Some iv -> Some [ iv ]
      | None -> (
        match Free_list.allocate_split t.free ~from ~words with
        | Some ivs ->
          t.split_count <- t.split_count + 1;
          Some ivs
        | None -> None))
  in
  match result with
  | None -> None
  | Some intervals ->
    Hashtbl.replace t.placed_table label intervals;
    Hashtbl.replace t.previous label intervals;
    t.placement_count <- t.placement_count + 1;
    Some { label; intervals }

let release t ~label =
  match Hashtbl.find_opt t.placed_table label with
  | None -> invalid_arg ("Layout.release: not placed: " ^ label)
  | Some intervals ->
    Hashtbl.remove t.placed_table label;
    List.iter (Free_list.release t.free) intervals

let snapshot t =
  let map = Array.make (size t) None in
  Hashtbl.iter
    (fun label intervals ->
      List.iter
        (fun iv ->
          for addr = Interval.(iv.lo) to Interval.(iv.hi) - 1 do
            map.(addr) <- Some label
          done)
        intervals)
    t.placed_table;
  map

let render_snapshots ?(cell_width = 7) ~labels snapshots =
  match snapshots with
  | [] -> ""
  | first :: _ ->
    let words = Array.length first in
    let rows = min words 16 in
    let band r =
      (* address band covered by display row r; row 0 = highest addresses,
         matching the paper's figure which grows downward from the top *)
      let hi = words - (r * words / rows) in
      let lo = words - ((r + 1) * words / rows) in
      (lo, hi)
    in
    let majority_label snap (lo, hi) =
      let counts = Hashtbl.create 8 in
      for a = lo to hi - 1 do
        let key = match snap.(a) with Some l -> l | None -> "" in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      done;
      let best = ref ("", 0) in
      Hashtbl.iter
        (fun k v -> if v > snd !best then best := (k, v))
        counts;
      fst !best
    in
    let clip s =
      if String.length s > cell_width then String.sub s 0 cell_width else s
    in
    let pad s = Printf.sprintf "%-*s" cell_width (clip s) in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (String.make 7 ' ');
    List.iter (fun l -> Buffer.add_string buf (pad l ^ " ")) labels;
    Buffer.add_char buf '\n';
    for r = 0 to rows - 1 do
      let lo, hi = band r in
      Buffer.add_string buf (Printf.sprintf "%5d  " hi);
      List.iter
        (fun snap ->
          let l = majority_label snap (lo, hi) in
          Buffer.add_string buf (pad (if l = "" then "." else l) ^ " "))
        snapshots;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "%5d\n" 0);
    Buffer.contents buf

let invariant_ok t =
  Free_list.invariant_ok t.free
  &&
  let map = Array.make (size t) 0 in
  let overlap = ref false in
  Hashtbl.iter
    (fun _ intervals ->
      List.iter
        (fun iv ->
          for a = Interval.(iv.lo) to Interval.(iv.hi) - 1 do
            if map.(a) <> 0 then overlap := true;
            map.(a) <- map.(a) + 1
          done)
        intervals)
    t.placed_table;
  List.iter
    (fun iv ->
      for a = Interval.(iv.lo) to Interval.(iv.hi) - 1 do
        if map.(a) <> 0 then overlap := true;
        map.(a) <- map.(a) + 1
      done)
    (Free_list.blocks t.free);
  (not !overlap) && Array.for_all (fun c -> c = 1) map
