# Edge-detection pipeline for the msched CLI:
#   dune exec bin/msched.exe -- compare --file examples/specs/edge_detect.app
app edge_detect iterations 24

kernel smooth contexts 160 cycles 220
kernel grad_x contexts 192 cycles 260
kernel grad_y contexts 192 cycles 260
kernel magn   contexts 128 cycles 200
kernel thresh contexts 96  cycles 140
kernel trace  contexts 160 cycles 240

input  tile    size 256 -> smooth
input  coeffs  size 48  -> smooth magn
result blurred size 256 from smooth -> grad_x grad_y
result gx      size 128 from grad_x -> magn
result gy      size 128 from grad_y -> magn
result mag     size 128 from magn -> thresh
result mask    size 64  from thresh -> trace
final  edges   size 96  from trace

partition 2 2 2
fb 2048
