(** Functional simulator of the 8x8 RC array.

    Each program step broadcasts one context word to a selection of cells —
    the whole array, one row, or one column (M1's row/column context
    broadcast). Selected cells execute the context synchronously: neighbour
    operands are read from the pre-step outputs. A step may carry
    frame-buffer data on the column buses ([fb_in], one value per column —
    every selected cell reading [Fb_port] sees its column's value) and may
    drive results back ([fb_write] in the context): a [Row] selection emits
    one value per column, a [Col] selection one value per row. *)

type selector = All | Row of int | Col of int

type step = {
  context : Context.t;
  selector : selector;
  fb_in : int array option;  (** length = array columns *)
}

type program = step list

type t

val create : Morphosys.Config.t -> t
val rows : t -> int
val cols : t -> int

val reset : t -> unit
val reg : t -> row:int -> col:int -> int -> int
(** Inspect a cell register. *)

val output : t -> row:int -> col:int -> int
(** Inspect a cell's output register. *)

val step : t -> step -> int array option
(** Execute one step; returns the emitted FB values when the context has
    [fb_write] set.
    @raise Invalid_argument on a bad selector, a wrong-length [fb_in], or
    [fb_write] with the [All] selector (one bus per column). *)

val run : t -> program -> int array list
(** Run a whole program, collecting emitted FB rows in order. *)

val cycles : program -> int
(** RC-array cycles the program takes (one per step). *)
