module A = Array_sim
module C = Context

let rows = 8
let cols = 8

let check_len name len arr =
  if Array.length arr <> len then
    invalid_arg
      (Printf.sprintf "Kernels: %s must have %d elements (got %d)" name len
         (Array.length arr))

let load_row ~row ~dst values =
  {
    A.context = C.make C.Pass_a C.Fb_port (C.Reg 0) ~dst;
    selector = A.Row row;
    fb_in = Some values;
  }

let plain ?(selector = A.All) context = { A.context; selector; fb_in = None }

(* Serial eastward reduction of register [r] across all rows: after the
   sweep, column 0 holds each row's total. *)
let reduce_east ~r =
  List.init (cols - 1) (fun i ->
      let col = cols - 2 - i in
      plain ~selector:(A.Col col) (C.make C.Add (C.Reg r) C.East ~dst:r))

let emit_col0 ~r =
  plain ~selector:(A.Col 0) (C.make ~fb_write:true C.Pass_a (C.Reg r) (C.Reg 0) ~dst:r)

let emit_row0 ~r =
  plain ~selector:(A.Row 0) (C.make ~fb_write:true C.Pass_a (C.Reg r) (C.Reg 0) ~dst:r)

(* -- vector add --------------------------------------------------------- *)

let vector_add ~a ~b =
  check_len "a" cols a;
  check_len "b" cols b;
  [
    load_row ~row:0 ~dst:0 a;
    load_row ~row:0 ~dst:1 b;
    plain ~selector:(A.Row 0)
      (C.make ~fb_write:true C.Add (C.Reg 0) (C.Reg 1) ~dst:2);
  ]

let vector_add_ref ~a ~b = Array.map2 ( + ) a b

(* -- saxpy -------------------------------------------------------------- *)

let saxpy ~alpha ~x ~y =
  check_len "x" cols x;
  check_len "y" cols y;
  [
    load_row ~row:0 ~dst:0 x;
    plain ~selector:(A.Row 0) (C.make C.Mul (C.Reg 0) (C.Imm alpha) ~dst:2);
    load_row ~row:0 ~dst:1 y;
    plain ~selector:(A.Row 0)
      (C.make ~fb_write:true C.Add (C.Reg 2) (C.Reg 1) ~dst:3);
  ]

let saxpy_ref ~alpha ~x ~y = Array.map2 (fun xi yi -> (alpha * xi) + yi) x y

(* -- FIR ------------------------------------------------------------------ *)

let fir ~taps ~xs =
  if taps = [] then invalid_arg "Kernels.fir: empty taps";
  check_len "xs" (cols + List.length taps - 1) xs;
  let window j = Array.sub xs j cols in
  let tap_steps =
    List.mapi
      (fun j tap ->
        let op = if j = 0 then C.Mul else C.Mac in
        {
          A.context = C.make op C.Fb_port (C.Imm tap) ~dst:1;
          selector = A.Row 0;
          fb_in = Some (window j);
        })
      taps
  in
  tap_steps @ [ emit_row0 ~r:1 ]

let fir_ref ~taps ~xs =
  Array.init cols (fun i ->
      List.fold_left ( + ) 0 (List.mapi (fun j t -> t * xs.(i + j)) taps))

(* -- SAD -------------------------------------------------------------------- *)

let sad_rows ~a ~b =
  check_len "a" rows a;
  check_len "b" rows b;
  Array.iter (check_len "a row" cols) a;
  Array.iter (check_len "b row" cols) b;
  let loads_a = List.init rows (fun r -> load_row ~row:r ~dst:0 a.(r)) in
  let diffs =
    List.init rows (fun r ->
        {
          A.context = C.make C.Abs_diff (C.Reg 0) C.Fb_port ~dst:2;
          selector = A.Row r;
          fb_in = Some b.(r);
        })
  in
  loads_a @ diffs @ reduce_east ~r:2 @ [ emit_col0 ~r:2 ]

let sad_rows_ref ~a ~b =
  Array.init rows (fun r ->
      let total = ref 0 in
      for c = 0 to cols - 1 do
        total := !total + abs (a.(r).(c) - b.(r).(c))
      done;
      !total)

(* -- 8-point DCT-II ---------------------------------------------------------- *)

let dct_matrix =
  Array.init 8 (fun k ->
      Array.init 8 (fun n ->
          let ck = if k = 0 then 1. /. sqrt 2. else 1. in
          let v =
            0.5 *. ck
            *. cos (((2. *. float_of_int n) +. 1.) *. float_of_int k *. Float.pi /. 16.)
          in
          int_of_float (Float.round (128. *. v))))

let matvec8 ~matrix ~x =
  check_len "x" cols x;
  check_len "matrix" rows matrix;
  Array.iter (check_len "matrix row" cols) matrix;
  let load_matrix =
    List.init rows (fun r -> load_row ~row:r ~dst:0 matrix.(r))
  in
  let broadcast_x =
    { A.context = C.make C.Pass_a C.Fb_port (C.Reg 0) ~dst:1;
      selector = A.All;
      fb_in = Some x }
  in
  let multiply = plain (C.make C.Mul (C.Reg 0) (C.Reg 1) ~dst:2) in
  load_matrix @ [ broadcast_x; multiply ] @ reduce_east ~r:2 @ [ emit_col0 ~r:2 ]

let matvec8_ref ~matrix ~x =
  Array.init rows (fun k ->
      let total = ref 0 in
      for n = 0 to cols - 1 do
        total := !total + (matrix.(k).(n) * x.(n))
      done;
      !total)

let dct8 ~x = matvec8 ~matrix:dct_matrix ~x

let dct8_ref ~x = matvec8_ref ~matrix:dct_matrix ~x

(* element-wise multiply-and-shift over a whole 8x8 tile: the quantisation
   and dequantisation kernels (per-cell factors preloaded from the FB) *)
let scale_tile ~factors ~shift ~x =
  check_len "factors" rows factors;
  check_len "x" rows x;
  Array.iter (check_len "factors row" cols) factors;
  Array.iter (check_len "x row" cols) x;
  if shift < 0 || shift > 31 then invalid_arg "Kernels.scale_tile: bad shift";
  let load_factors =
    List.init rows (fun r -> load_row ~row:r ~dst:0 factors.(r))
  in
  let load_x = List.init rows (fun r ->
      { A.context = C.make C.Pass_a C.Fb_port (C.Reg 0) ~dst:1;
        selector = A.Row r;
        fb_in = Some x.(r) })
  in
  let multiply = plain (C.make C.Mul (C.Reg 0) (C.Reg 1) ~dst:2) in
  let shift_step = plain (C.make C.Shr (C.Reg 2) (C.Imm shift) ~dst:2) in
  let emits =
    List.init rows (fun r ->
        plain ~selector:(A.Row r)
          (C.make ~fb_write:true C.Pass_a (C.Reg 2) (C.Reg 0) ~dst:3))
  in
  load_factors @ load_x @ [ multiply; shift_step ] @ emits

let scale_tile_ref ~factors ~shift ~x =
  Array.init rows (fun r ->
      Array.init cols (fun c -> (factors.(r).(c) * x.(r).(c)) asr shift))
