type entry = {
  name : string;
  description : string;
  context_words : int;
  ops_per_iteration : int;
  demo : Morphosys.Config.t -> (int array list * int array list) option;
}

let is_8x8 (config : Morphosys.Config.t) =
  config.array_rows = 8 && config.array_cols = 8

let sample_vec seed = Array.init 8 (fun i -> ((i + seed) * 37 mod 255) - 127
)
let sample_tile seed =
  Array.init 8 (fun r -> Array.init 8 (fun c -> (r * 8) + c + seed))

let run_demo config program reference =
  if not (is_8x8 config) then None
  else
    let array = Array_sim.create config in
    Some (Array_sim.run array program, [ reference ])

let all =
  [
    {
      name = "vector_add";
      description = "element-wise sum of two 8-vectors";
      context_words = 3;
      ops_per_iteration = 8;
      demo =
        (fun config ->
          let a = sample_vec 1 and b = sample_vec 5 in
          run_demo config
            (Kernels.vector_add ~a ~b)
            (Kernels.vector_add_ref ~a ~b));
    };
    {
      name = "saxpy";
      description = "alpha * x + y over 8-vectors";
      context_words = 4;
      ops_per_iteration = 16;
      demo =
        (fun config ->
          let x = sample_vec 2 and y = sample_vec 9 in
          run_demo config
            (Kernels.saxpy ~alpha:3 ~x ~y)
            (Kernels.saxpy_ref ~alpha:3 ~x ~y));
    };
    {
      name = "fir4";
      description = "4-tap FIR filter over an 11-sample window";
      context_words = 5;
      ops_per_iteration = 64;
      demo =
        (fun config ->
          let taps = [ 1; -2; 3; 1 ] in
          let xs = Array.init 11 (fun i -> (i * 13 mod 29) - 14) in
          run_demo config (Kernels.fir ~taps ~xs) (Kernels.fir_ref ~taps ~xs));
    };
    {
      name = "sad8x8";
      description = "sum of absolute differences of two 8x8 tiles (per row)";
      context_words = 24;
      ops_per_iteration = 128;
      demo =
        (fun config ->
          let a = sample_tile 0 and b = sample_tile 3 in
          run_demo config (Kernels.sad_rows ~a ~b)
            (Kernels.sad_rows_ref ~a ~b));
    };
    {
      name = "dct8x8_2d";
      description = "8x8 2-D DCT-II (two 1-D passes through the FB)";
      context_words = 144;
      ops_per_iteration = 1024;
      demo =
        (fun config ->
          if not (is_8x8 config) then None
          else
            let array = Array_sim.create config in
            let tile = sample_tile 7 in
            let got = Tile_pipeline.dct2d array tile in
            let expected = Tile_pipeline.dct2d_ref tile in
            Some
              (Array.to_list got, Array.to_list expected));
    };
    {
      name = "quant8x8";
      description = "8x8 quantisation (reciprocal multiply and shift)";
      context_words = 26;
      ops_per_iteration = 128;
      demo =
        (fun config ->
          if not (is_8x8 config) then None
          else
            let array = Array_sim.create config in
            let tile = sample_tile 11 in
            let q = Tile_pipeline.flat_quant 6 in
            let got = Tile_pipeline.quantise array ~q tile in
            let expected = Tile_pipeline.quantise_ref ~q tile in
            Some (Array.to_list got, Array.to_list expected));
    };
    {
      name = "dct8";
      description = "8-point 1-D DCT-II (fixed point, x128)";
      context_words = 18;
      ops_per_iteration = 128;
      demo =
        (fun config ->
          let x = sample_vec 4 in
          run_demo config (Kernels.dct8 ~x) (Kernels.dct8_ref ~x));
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all

let to_kernel config ~id entry =
  Kernel_ir.Kernel.make ~id ~name:entry.name ~contexts:entry.context_words
    ~exec_cycles:
      (Morphosys.Rc_array.cycles_of_ops config ~ops:entry.ops_per_iteration ())
