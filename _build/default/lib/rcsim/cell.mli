(** One reconfigurable cell: four general registers plus an output register
    visible to the four neighbours. *)

type t = { regs : int array; mutable output : int }

type neighbourhood = {
  north : int;
  south : int;
  east : int;
  west : int;
  fb : int;  (** the frame-buffer bus value for this cell's column/row *)
}

val create : unit -> t
val copy : t -> t

val execute : t -> Context.t -> neighbourhood -> int
(** Applies the context: reads operands (neighbour values come from the
    neighbourhood snapshot, so updates are synchronous across the array),
    computes, writes the destination register and the output register, and
    returns the result. *)

val alu : Context.alu_op -> acc:int -> int -> int -> int
(** The bare ALU function ([acc] is the destination's previous value, used
    by [Mac]); exposed for the reference-model tests. *)
