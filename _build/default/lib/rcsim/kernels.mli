(** Context programs for real DSP kernels, each paired with a plain-OCaml
    reference implementation the array results are tested against.

    Programs embed their input tiles as frame-buffer bus traffic ([fb_in]
    per step), the way the M1 code generator couples context and data
    streams. All arithmetic is integer (fixed point where needed). *)

val vector_add : a:int array -> b:int array -> Array_sim.program
(** Element-wise sum on row 0; emits one FB row. Arrays of length = array
    columns. *)

val vector_add_ref : a:int array -> b:int array -> int array

val saxpy : alpha:int -> x:int array -> y:int array -> Array_sim.program
(** [alpha * x + y] on row 0. [alpha] must fit the 12-bit immediate. *)

val saxpy_ref : alpha:int -> x:int array -> y:int array -> int array

val fir : taps:int list -> xs:int array -> Array_sim.program
(** FIR filter: output [i] = sum_j taps[j] * xs[i+j], computed with one MAC
    context per tap on row 0. [xs] must have [cols + length taps - 1]
    samples; taps must fit the immediate field. *)

val fir_ref : taps:int list -> xs:int array -> int array

val sad_rows : a:int array array -> b:int array array -> Array_sim.program
(** Sum of absolute differences of two 8x8 tiles, reduced along each row
    with the east-neighbour chain; emits the 8 per-row SADs (motion
    estimation's inner loop). *)

val sad_rows_ref : a:int array array -> b:int array array -> int array

val matvec8 :
  matrix:int array array -> x:int array -> Array_sim.program
(** Generic 8x8 matrix-vector product: the matrix is preloaded cell by
    cell, the vector broadcast on the column buses, per-row dot products
    reduced eastward; emits the 8 results. *)

val matvec8_ref : matrix:int array array -> x:int array -> int array

val scale_tile :
  factors:int array array -> shift:int -> x:int array array ->
  Array_sim.program
(** Element-wise [factors * x >> shift] over a whole 8x8 tile — the
    quantisation / dequantisation kernel; emits one FB row per tile row. *)

val scale_tile_ref :
  factors:int array array -> shift:int -> x:int array array ->
  int array array

val dct8 : x:int array -> Array_sim.program
(** 8-point 1-D DCT-II as a matrix-vector product against {!dct_matrix}:
    the coefficient matrix is preloaded row by row, the sample vector is
    broadcast on the column buses, and the per-row dot products are reduced
    eastward. Fixed point: coefficients scaled by 128. *)

val dct8_ref : x:int array -> int array
val dct_matrix : int array array
(** round(128 * c(k) * cos((2n+1) k pi / 16)), the scaled DCT-II basis. *)
