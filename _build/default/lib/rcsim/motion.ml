type vector = { dx : int; dy : int; sad : int }

let block_size = 8

let window frame ~row ~col =
  if
    row < 0 || col < 0
    || row + block_size > Array.length frame
    || col + block_size > Array.length frame.(0)
  then invalid_arg "Motion.window: out of bounds";
  Array.init block_size (fun r -> Array.sub frame.(row + r) col block_size)

let candidates frame ~origin:(row, col) ~range =
  List.concat
    (List.init
       ((2 * range) + 1)
       (fun i ->
         let dy = i - range in
         List.filter_map
           (fun j ->
             let dx = j - range in
             let r = row + dy and c = col + dx in
             if
               r < 0 || c < 0
               || r + block_size > Array.length frame
               || c + block_size > Array.length frame.(0)
             then None
             else Some (dx, dy))
           (List.init ((2 * range) + 1) (fun j -> j))))

let better (a : vector) (b : vector) =
  let mag v = (v.dx * v.dx) + (v.dy * v.dy) in
  if a.sad <> b.sad then a.sad < b.sad
  else if mag a <> mag b then mag a < mag b
  else (a.dy, a.dx) < (b.dy, b.dx)

let check_block block =
  if
    Array.length block <> block_size
    || Array.exists (fun r -> Array.length r <> block_size) block
  then invalid_arg "Motion: block must be 8x8"

let run_search ~sad_of ~reference ~block ~origin ~range =
  check_block block;
  let cands = candidates reference ~origin ~range in
  if cands = [] then invalid_arg "Motion: no candidate window fits the frame";
  let row, col = origin in
  List.fold_left
    (fun best (dx, dy) ->
      let cand_window = window reference ~row:(row + dy) ~col:(col + dx) in
      let v = { dx; dy; sad = sad_of ~a:block ~b:cand_window } in
      match best with
      | None -> Some v
      | Some b -> if better v b then Some v else Some b)
    None cands
  |> Option.get

let total_sad_array array ~a ~b =
  Array_sim.reset array;
  match Array_sim.run array (Kernels.sad_rows ~a ~b) with
  | [ rows ] -> Array.fold_left ( + ) 0 rows
  | _ -> failwith "Motion: unexpected SAD output shape"

let total_sad_ref ~a ~b =
  Array.fold_left ( + ) 0 (Kernels.sad_rows_ref ~a ~b)

let search array ~reference ~block ~origin ~range =
  run_search ~sad_of:(total_sad_array array) ~reference ~block ~origin ~range

let search_ref ~reference ~block ~origin ~range =
  run_search ~sad_of:total_sad_ref ~reference ~block ~origin ~range
