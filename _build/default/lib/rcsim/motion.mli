(** Block motion estimation on the RC array: exhaustive search of the
    displacement (within a search range) minimising the sum of absolute
    differences between a current 8x8 block and the reference frame — the
    MPEG encoder kernel the MorphoSys papers showcase. Each candidate
    displacement runs one {!Kernels.sad_rows} pass on the array; the host
    accumulates the row SADs and keeps the best vector. *)

type vector = { dx : int; dy : int; sad : int }

val search :
  Array_sim.t ->
  reference:int array array ->
  block:int array array ->
  origin:int * int ->
  range:int ->
  vector
(** [search array ~reference ~block ~origin:(row, col) ~range] evaluates
    every displacement in [[-range, range]^2] keeping the candidate window
    inside the reference frame; ties prefer the smaller displacement
    magnitude, then raster order (deterministic).
    @raise Invalid_argument if the block is not 8x8 or no candidate window
    fits the frame. *)

val search_ref :
  reference:int array array ->
  block:int array array ->
  origin:int * int ->
  range:int ->
  vector
(** Pure reference implementation, compared against {!search} by tests. *)

val window : int array array -> row:int -> col:int -> int array array
(** The 8x8 window of a frame at (row, col).
    @raise Invalid_argument when out of bounds. *)
