type src = Reg of int | Imm of int | North | South | East | West | Fb_port

type alu_op =
  | Add | Sub | Mul | Mac
  | Band | Bor | Bxor
  | Shl | Shr
  | Min | Max
  | Abs_diff
  | Pass_a

type t = {
  op : alu_op;
  src_a : src;
  src_b : src;
  dst : int;
  fb_write : bool;
}

let check_src ~allow_imm ~what = function
  | Reg r when r < 0 || r > 3 ->
    invalid_arg (Printf.sprintf "Context.make: bad register %d in %s" r what)
  | Imm v when not allow_imm ->
    invalid_arg
      (Printf.sprintf "Context.make: immediate %d not allowed in %s" v what)
  | Imm v when v < -2048 || v > 2047 ->
    invalid_arg (Printf.sprintf "Context.make: immediate %d out of range" v)
  | _ -> ()

let make ?(fb_write = false) op src_a src_b ~dst =
  check_src ~allow_imm:false ~what:"src_a" src_a;
  check_src ~allow_imm:true ~what:"src_b" src_b;
  if dst < 0 || dst > 3 then
    invalid_arg (Printf.sprintf "Context.make: bad destination register %d" dst);
  { op; src_a; src_b; dst; fb_write }

let op_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Mac -> 3
  | Band -> 4 | Bor -> 5 | Bxor -> 6
  | Shl -> 7 | Shr -> 8
  | Min -> 9 | Max -> 10
  | Abs_diff -> 11
  | Pass_a -> 12

let op_of_code = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some Mul | 3 -> Some Mac
  | 4 -> Some Band | 5 -> Some Bor | 6 -> Some Bxor
  | 7 -> Some Shl | 8 -> Some Shr
  | 9 -> Some Min | 10 -> Some Max
  | 11 -> Some Abs_diff
  | 12 -> Some Pass_a
  | _ -> None

let src_kind = function
  | Reg _ -> 0 | North -> 1 | South -> 2 | East -> 3 | West -> 4
  | Fb_port -> 5 | Imm _ -> 6

(* Word layout (LSB first):
   [0..3] op, [4..6] src_a kind, [7..8] src_a reg,
   [9..11] src_b kind, [12..13] src_b reg, [14..25] src_b imm (biased),
   [26..27] dst, [28] fb_write *)
let encode t =
  let a_reg = match t.src_a with Reg r -> r | _ -> 0 in
  let b_reg = match t.src_b with Reg r -> r | _ -> 0 in
  let b_imm = match t.src_b with Imm v -> v + 2048 | _ -> 0 in
  let bits =
    op_code t.op
    lor (src_kind t.src_a lsl 4)
    lor (a_reg lsl 7)
    lor (src_kind t.src_b lsl 9)
    lor (b_reg lsl 12)
    lor (b_imm lsl 14)
    lor (t.dst lsl 26)
    lor ((if t.fb_write then 1 else 0) lsl 28)
  in
  Int32.of_int bits

let decode_src ~kind ~reg ~imm ~allow_imm =
  match kind with
  | 0 -> if reg > 3 then Error "bad register" else Ok (Reg reg)
  | 1 -> Ok North
  | 2 -> Ok South
  | 3 -> Ok East
  | 4 -> Ok West
  | 5 -> Ok Fb_port
  | 6 ->
    if allow_imm then Ok (Imm (imm - 2048)) else Error "immediate in src_a"
  | _ -> Error "bad source kind"

let decode word =
  let bits = Int32.to_int word land 0x1FFFFFFF in
  let op_bits = bits land 0xF in
  match op_of_code op_bits with
  | None -> Error (Printf.sprintf "bad opcode %d" op_bits)
  | Some op -> (
    let a_kind = (bits lsr 4) land 0x7 in
    let a_reg = (bits lsr 7) land 0x3 in
    let b_kind = (bits lsr 9) land 0x7 in
    let b_reg = (bits lsr 12) land 0x3 in
    let b_imm = (bits lsr 14) land 0xFFF in
    let dst = (bits lsr 26) land 0x3 in
    let fb_write = (bits lsr 28) land 0x1 = 1 in
    match
      ( decode_src ~kind:a_kind ~reg:a_reg ~imm:0 ~allow_imm:false,
        decode_src ~kind:b_kind ~reg:b_reg ~imm:b_imm ~allow_imm:true )
    with
    | Ok src_a, Ok src_b -> Ok { op; src_a; src_b; dst; fb_write }
    | Error e, _ -> Error ("src_a: " ^ e)
    | _, Error e -> Error ("src_b: " ^ e))

let pp_src fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm v -> Format.fprintf fmt "#%d" v
  | North -> Format.fprintf fmt "N"
  | South -> Format.fprintf fmt "S"
  | East -> Format.fprintf fmt "E"
  | West -> Format.fprintf fmt "W"
  | Fb_port -> Format.fprintf fmt "fb"

let op_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Mac -> "mac"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor"
  | Shl -> "shl" | Shr -> "shr"
  | Min -> "min" | Max -> "max"
  | Abs_diff -> "absd"
  | Pass_a -> "pass"

let pp fmt t =
  Format.fprintf fmt "%s %a, %a -> r%d%s" (op_name t.op) pp_src t.src_a pp_src
    t.src_b t.dst
    (if t.fb_write then " !fb" else "")

let equal (a : t) (b : t) = a = b
