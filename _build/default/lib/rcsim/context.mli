(** 32-bit context words configuring a reconfigurable cell.

    A context selects the ALU operation, the two operand sources, the
    destination register and whether the result is driven onto the
    frame-buffer column bus. MorphoSys broadcasts one context word to a
    whole row or column per cycle, so every selected cell executes the same
    context on its own local data ({!Array_sim}). *)

type src =
  | Reg of int  (** one of the cell's four registers *)
  | Imm of int  (** 12-bit signed immediate, [-2048, 2047] *)
  | North | South | East | West
      (** the neighbouring cell's output register (0 at the array edge) *)
  | Fb_port  (** the frame-buffer bus value for the cell's column *)

type alu_op =
  | Add | Sub | Mul
  | Mac  (** dst <- dst + a * b *)
  | Band | Bor | Bxor
  | Shl | Shr  (** a shifted by (b land 31) *)
  | Min | Max
  | Abs_diff  (** |a - b| *)
  | Pass_a  (** dst <- a *)

type t = {
  op : alu_op;
  src_a : src;
  src_b : src;
  dst : int;  (** destination register, 0..3 *)
  fb_write : bool;  (** drive the result onto the FB column bus *)
}

val make : ?fb_write:bool -> alu_op -> src -> src -> dst:int -> t
(** @raise Invalid_argument on a bad register index, an out-of-range
    immediate, or an immediate in the [src_a] position (only the second
    operand has immediate bits in the encoding). *)

val encode : t -> int32
(** Pack into the 32-bit context-word format. *)

val decode : int32 -> (t, string) result
(** Inverse of {!encode}; rejects malformed words. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
