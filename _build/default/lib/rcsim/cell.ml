type t = { regs : int array; mutable output : int }

type neighbourhood = {
  north : int;
  south : int;
  east : int;
  west : int;
  fb : int;
}

let create () = { regs = Array.make 4 0; output = 0 }
let copy t = { regs = Array.copy t.regs; output = t.output }

let alu op ~acc a b =
  match op with
  | Context.Add -> a + b
  | Context.Sub -> a - b
  | Context.Mul -> a * b
  | Context.Mac -> acc + (a * b)
  | Context.Band -> a land b
  | Context.Bor -> a lor b
  | Context.Bxor -> a lxor b
  | Context.Shl -> a lsl (b land 31)
  | Context.Shr -> a asr (b land 31)
  | Context.Min -> min a b
  | Context.Max -> max a b
  | Context.Abs_diff -> abs (a - b)
  | Context.Pass_a -> a

let read t (n : neighbourhood) = function
  | Context.Reg r -> t.regs.(r)
  | Context.Imm v -> v
  | Context.North -> n.north
  | Context.South -> n.south
  | Context.East -> n.east
  | Context.West -> n.west
  | Context.Fb_port -> n.fb

let execute t (ctx : Context.t) neighbourhood =
  let a = read t neighbourhood ctx.Context.src_a in
  let b = read t neighbourhood ctx.Context.src_b in
  let result = alu ctx.Context.op ~acc:t.regs.(ctx.Context.dst) a b in
  t.regs.(ctx.Context.dst) <- result;
  t.output <- result;
  result
