(** Host-driven 8x8 transform-coding pipeline on the RC array — the MPEG
    kernels computing real data.

    The 2-D DCT is two 1-D passes ([Y = C X Ct]): each pass runs eight
    {!Kernels.matvec8} column transforms on the array and rescales by the
    fixed-point factor (coefficients are scaled by 128, so each pass shifts
    right by 7); the transpose between passes goes through the frame buffer
    (host-side here). Quantisation and dequantisation run
    {!Kernels.scale_tile} with reciprocal tables. Every step also has a
    pure-integer reference model; [reconstruct] closes the loop and a test
    bounds the reconstruction error. *)

type tile = int array array

val dct2d : Array_sim.t -> tile -> tile
(** Forward 2-D DCT of an 8x8 tile (array-computed). *)

val idct2d : Array_sim.t -> tile -> tile
(** Inverse 2-D DCT (the transposed basis). *)

val quantise : Array_sim.t -> q:tile -> tile -> tile
(** [x / q] element-wise via reciprocal multiply and shift. *)

val dequantise : Array_sim.t -> q:tile -> tile -> tile
(** [x * q] element-wise. *)

val reconstruct : Array_sim.t -> q:tile -> tile -> tile
(** [idct2d (dequantise (quantise (dct2d tile)))] — the decoder loop. *)

val dct2d_ref : tile -> tile
val idct2d_ref : tile -> tile
val quantise_ref : q:tile -> tile -> tile
val dequantise_ref : q:tile -> tile -> tile
val reconstruct_ref : q:tile -> tile -> tile

val flat_quant : int -> tile
(** A uniform quantisation matrix. *)

val max_abs_error : tile -> tile -> int
val transpose : tile -> tile
