lib/rcsim/kernel_library.mli: Kernel_ir Morphosys
