lib/rcsim/kernels.ml: Array Array_sim Context Float List Printf
