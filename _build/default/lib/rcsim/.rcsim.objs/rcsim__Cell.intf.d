lib/rcsim/cell.mli: Context
