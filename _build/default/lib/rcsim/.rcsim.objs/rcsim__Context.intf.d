lib/rcsim/context.mli: Format
