lib/rcsim/kernels.mli: Array_sim
