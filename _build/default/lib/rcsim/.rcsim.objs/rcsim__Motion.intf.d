lib/rcsim/motion.mli: Array_sim
