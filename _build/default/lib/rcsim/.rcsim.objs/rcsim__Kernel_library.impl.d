lib/rcsim/kernel_library.ml: Array Array_sim Kernel_ir Kernels List Morphosys Tile_pipeline
