lib/rcsim/cell.ml: Array Context
