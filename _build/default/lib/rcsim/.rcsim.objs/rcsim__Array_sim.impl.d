lib/rcsim/array_sim.ml: Array Cell Context List Morphosys
