lib/rcsim/motion.ml: Array Array_sim Kernels List Option
