lib/rcsim/tile_pipeline.mli: Array_sim
