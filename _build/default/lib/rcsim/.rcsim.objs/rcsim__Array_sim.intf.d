lib/rcsim/array_sim.mli: Context Morphosys
