lib/rcsim/tile_pipeline.ml: Array Array_sim Kernels List
