lib/rcsim/context.ml: Format Int32 Printf
