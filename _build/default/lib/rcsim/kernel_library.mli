(** The kernel library of the compilation framework (paper Figure 2):
    named, pre-mapped kernels with their context-word counts and estimated
    per-iteration cycles, ready to drop into an application IR.

    "The kernel programming is equivalent to specifying the mapping of
    computation to the target architecture, and is done only once." *)

type entry = {
  name : string;
  description : string;
  context_words : int;  (** contexts the mapping needs per configuration *)
  ops_per_iteration : int;  (** word-level operations per tile iteration *)
  demo : Morphosys.Config.t -> (int array list * int array list) option;
      (** run the kernel's context program on sample data with
          {!Array_sim}, returning (array results, reference results) for
          self-checking; [None] when the machine is not 8x8 *)
}

val all : entry list
val find : string -> entry option
val names : unit -> string list

val to_kernel :
  Morphosys.Config.t -> id:Kernel_ir.Kernel.id -> entry -> Kernel_ir.Kernel.t
(** Package an entry as an IR kernel: [contexts] from the mapping,
    [exec_cycles] estimated with {!Morphosys.Rc_array.cycles_of_ops}. *)
