type tile = int array array

let n = 8

let transpose (t : tile) = Array.init n (fun r -> Array.init n (fun c -> t.(c).(r)))

let column (t : tile) c = Array.init n (fun r -> t.(r).(c))

(* rounding shift: the host rescales between passes, so round to nearest
   to avoid the truncation bias accumulating across the four passes *)
let rescale shift v = (v + (1 lsl (shift - 1))) asr shift

(* One 1-D pass: every column of [x] through the matrix, rescaled by the
   fixed-point shift. Result[.][c] = matrix . column c >> 7. *)
let pass_array array ~matrix (x : tile) =
  let out = Array.make_matrix n n 0 in
  for c = 0 to n - 1 do
    Array_sim.reset array;
    match Array_sim.run array (Kernels.matvec8 ~matrix ~x:(column x c)) with
    | [ y ] -> for r = 0 to n - 1 do out.(r).(c) <- rescale 7 y.(r) done
    | _ -> failwith "Tile_pipeline: unexpected matvec output shape"
  done;
  out

let pass_ref ~matrix (x : tile) =
  Array.init n (fun r ->
      Array.init n (fun c ->
          rescale 7 (Kernels.matvec8_ref ~matrix ~x:(column x c)).(r)))

(* Y = C X Ct: columns first, transpose, columns again, transpose back. *)
let two_passes pass x = transpose (pass (transpose (pass x)))

let dct2d array x = two_passes (pass_array array ~matrix:Kernels.dct_matrix) x
let dct2d_ref x = two_passes (pass_ref ~matrix:Kernels.dct_matrix) x

let idct_matrix = transpose Kernels.dct_matrix

let idct2d array y = two_passes (pass_array array ~matrix:idct_matrix) y
let idct2d_ref y = two_passes (pass_ref ~matrix:idct_matrix) y

(* Quantisation: x / q as (x * recip) >> 16 with recip = 65536 / q. *)
let recip_shift = 16

let reciprocals (q : tile) =
  Array.map (Array.map (fun v ->
      if v <= 0 then invalid_arg "Tile_pipeline: quantiser must be positive"
      else (1 lsl recip_shift) / v))
    q

let run_scale array ~factors ~shift x =
  Array_sim.reset array;
  let outs = Array_sim.run array (Kernels.scale_tile ~factors ~shift ~x) in
  match outs with
  | rows when List.length rows = n -> Array.of_list rows
  | _ -> failwith "Tile_pipeline: unexpected scale output shape"

let quantise array ~q x =
  run_scale array ~factors:(reciprocals q) ~shift:recip_shift x

let quantise_ref ~q x =
  Kernels.scale_tile_ref ~factors:(reciprocals q) ~shift:recip_shift ~x

let dequantise array ~q x = run_scale array ~factors:q ~shift:0 x
let dequantise_ref ~q x = Kernels.scale_tile_ref ~factors:q ~shift:0 ~x

let reconstruct array ~q tile =
  idct2d array (dequantise array ~q (quantise array ~q (dct2d array tile)))

let reconstruct_ref ~q tile =
  idct2d_ref (dequantise_ref ~q (quantise_ref ~q (dct2d_ref tile)))

let flat_quant v = Array.make_matrix n n v

let max_abs_error (a : tile) (b : tile) =
  let worst = ref 0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      worst := max !worst (abs (a.(r).(c) - b.(r).(c)))
    done
  done;
  !worst
