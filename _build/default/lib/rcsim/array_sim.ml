type selector = All | Row of int | Col of int

type step = { context : Context.t; selector : selector; fb_in : int array option }

type program = step list

type t = { grid : Cell.t array array; n_rows : int; n_cols : int }

let create (config : Morphosys.Config.t) =
  {
    grid =
      Array.init config.array_rows (fun _ ->
          Array.init config.array_cols (fun _ -> Cell.create ()));
    n_rows = config.array_rows;
    n_cols = config.array_cols;
  }

let rows t = t.n_rows
let cols t = t.n_cols

let reset t =
  Array.iter
    (fun row ->
      Array.iter
        (fun (c : Cell.t) ->
          Array.fill c.Cell.regs 0 (Array.length c.Cell.regs) 0;
          c.Cell.output <- 0)
        row)
    t.grid

let reg t ~row ~col r = t.grid.(row).(col).Cell.regs.(r)
let output t ~row ~col = t.grid.(row).(col).Cell.output

let selected t selector ~row ~col =
  match selector with
  | All -> true
  | Row r ->
    if r < 0 || r >= t.n_rows then invalid_arg "Array_sim: bad row selector"
    else row = r
  | Col c ->
    if c < 0 || c >= t.n_cols then invalid_arg "Array_sim: bad column selector"
    else col = c

let step t { context; selector; fb_in } =
  (match fb_in with
  | Some values when Array.length values <> t.n_cols ->
    invalid_arg "Array_sim.step: fb_in must have one value per column"
  | _ -> ());
  if context.Context.fb_write && selector = All then
    invalid_arg "Array_sim.step: fb_write needs a Row or Col selection";
  (* snapshot outputs so neighbour reads are synchronous *)
  let old_output row col =
    if row < 0 || row >= t.n_rows || col < 0 || col >= t.n_cols then 0
    else t.grid.(row).(col).Cell.output
  in
  let snapshot =
    Array.init t.n_rows (fun r -> Array.init t.n_cols (fun c -> old_output r c))
  in
  let read_old row col =
    if row < 0 || row >= t.n_rows || col < 0 || col >= t.n_cols then 0
    else snapshot.(row).(col)
  in
  let written = ref [] in
  for row = 0 to t.n_rows - 1 do
    for col = 0 to t.n_cols - 1 do
      if selected t selector ~row ~col then begin
        let neighbourhood =
          {
            Cell.north = read_old (row - 1) col;
            south = read_old (row + 1) col;
            east = read_old row (col + 1);
            west = read_old row (col - 1);
            fb = (match fb_in with Some v -> v.(col) | None -> 0);
          }
        in
        let result = Cell.execute t.grid.(row).(col) context neighbourhood in
        if context.Context.fb_write then
          written := ((row, col), result) :: !written
      end
    done
  done;
  if not context.Context.fb_write then None
  else
    match selector with
    | Row _ ->
      let out = Array.make t.n_cols 0 in
      List.iter (fun ((_, col), v) -> out.(col) <- v) !written;
      Some out
    | Col _ ->
      let out = Array.make t.n_rows 0 in
      List.iter (fun ((row, _), v) -> out.(row) <- v) !written;
      Some out
    | All -> assert false

let run t program = List.filter_map (step t) program

let cycles program = List.length program
