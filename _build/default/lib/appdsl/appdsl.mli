(** A small textual format for applications, so workloads can be described
    in files instead of OCaml code:

    {v
    # MPEG-like pipeline
    app demo iterations 16

    kernel iq    contexts 384 cycles 520
    kernel idct  contexts 384 cycles 560

    input  coeff   size 256 -> iq
    input  hdr     size 56  -> iq idct
    result dequant size 320 from iq -> idct
    final  out     size 256 from idct

    partition 1 1
    fb 1024
    cm 2048
    v}

    Grammar (one directive per line, [#] comments):
    - [app NAME iterations N] — must appear first;
    - [kernel NAME contexts N cycles N] — in execution order;
    - [input NAME size N [invariant] -> CONSUMER...] — external data;
      [invariant] marks an iteration-invariant constant table;
    - [result NAME size N from PRODUCER -> CONSUMER... [final]] — a kernel
      result, optionally also stored to external memory;
    - [final NAME size N from PRODUCER] — a pure final result;
    - [partition N N ...] — optional kernel schedule;
    - [fb N] / [cm N] — optional machine sizes. *)

type spec = {
  app : Kernel_ir.Application.t;
  partition : int list option;
  fb_set_size : int option;
  cm_capacity : int option;
}

val parse : string -> (spec, string) result
(** Errors carry the offending line number. *)

val load_file : string -> (spec, string) result

val render : spec -> string
(** Pretty-print a spec back to the textual format ([parse] of the result
    yields an equivalent spec — property-tested). *)

val config : ?default_fb:int -> spec -> Morphosys.Config.t
(** Machine from the spec's [fb]/[cm] directives (defaults: [default_fb]
    or 1024, CM 2048). *)

val clustering : spec -> Kernel_ir.Cluster.clustering
(** The spec's partition, or one cluster per kernel when absent. *)
