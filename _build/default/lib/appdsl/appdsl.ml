module B = Kernel_ir.Builder

type spec = {
  app : Kernel_ir.Application.t;
  partition : int list option;
  fb_set_size : int option;
  cm_capacity : int option;
}

type accum = {
  mutable builder : B.t option;
  mutable acc_partition : int list option;
  mutable acc_fb : int option;
  mutable acc_cm : int option;
}

let tokens line =
  (* strip comments, split on whitespace *)
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let int_tok what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "expected an integer for %s, got %S" what s)

let ( let* ) = Result.bind

(* Split [-> c1 c2 ...] off a token list. *)
let split_arrow toks =
  let rec loop before = function
    | "->" :: after -> Ok (List.rev before, after)
    | t :: rest -> loop (t :: before) rest
    | [] -> Error "missing '->'"
  in
  loop [] toks

let with_builder acc f =
  match acc.builder with
  | None -> Error "the first directive must be 'app NAME iterations N'"
  | Some b ->
    let* b' = f b in
    acc.builder <- Some b';
    Ok ()

let parse_directive acc toks =
  match toks with
  | [] -> Ok ()
  | "app" :: name :: "iterations" :: n :: [] ->
    if acc.builder <> None then Error "duplicate 'app' directive"
    else
      let* iterations = int_tok "iterations" n in
      acc.builder <- Some (B.create name ~iterations);
      Ok ()
  | "kernel" :: name :: "contexts" :: c :: "cycles" :: cy :: [] ->
    with_builder acc (fun b ->
        let* contexts = int_tok "contexts" c in
        let* cycles = int_tok "cycles" cy in
        Ok (B.kernel name ~contexts ~cycles b))
  | "input" :: name :: "size" :: s :: rest ->
    with_builder acc (fun b ->
        let* size = int_tok "size" s in
        let invariant, rest =
          match rest with
          | "invariant" :: rest -> (true, rest)
          | rest -> (false, rest)
        in
        let* before, consumers = split_arrow rest in
        if before <> [] then Error "unexpected tokens before '->'"
        else if consumers = [] then Error "input needs at least one consumer"
        else Ok (B.input ~invariant name ~size ~consumers b))
  | "result" :: name :: "size" :: s :: "from" :: producer :: rest ->
    with_builder acc (fun b ->
        let* size = int_tok "size" s in
        let* before, after = split_arrow rest in
        if before <> [] then Error "unexpected tokens before '->'"
        else
          let final, consumers =
            match List.rev after with
            | "final" :: rev_consumers -> (true, List.rev rev_consumers)
            | _ -> (false, after)
          in
          if consumers = [] then
            Error "result needs at least one consumer (or use 'final')"
          else Ok (B.result ~final name ~size ~producer ~consumers b))
  | "final" :: name :: "size" :: s :: "from" :: producer :: [] ->
    with_builder acc (fun b ->
        let* size = int_tok "size" s in
        Ok (B.final name ~size ~producer b))
  | "partition" :: sizes ->
    if sizes = [] then Error "partition needs at least one size"
    else
      let* sizes =
        List.fold_left
          (fun acc' s ->
            let* l = acc' in
            let* n = int_tok "partition size" s in
            Ok (n :: l))
          (Ok []) sizes
      in
      acc.acc_partition <- Some (List.rev sizes);
      Ok ()
  | [ "fb"; n ] ->
    let* words = int_tok "fb" n in
    acc.acc_fb <- Some words;
    Ok ()
  | [ "cm"; n ] ->
    let* words = int_tok "cm" n in
    acc.acc_cm <- Some words;
    Ok ()
  | first :: _ -> Error (Printf.sprintf "unrecognised directive %S" first)

let parse text =
  let acc =
    { builder = None; acc_partition = None; acc_fb = None; acc_cm = None }
  in
  let lines = String.split_on_char '\n' text in
  let rec loop lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_directive acc (tokens line) with
      | Ok () -> loop (lineno + 1) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  let* () = loop 1 lines in
  match acc.builder with
  | None -> Error "empty specification (no 'app' directive)"
  | Some b -> (
    match B.build b with
    | app ->
      Ok
        {
          app;
          partition = acc.acc_partition;
          fb_set_size = acc.acc_fb;
          cm_capacity = acc.acc_cm;
        }
    | exception Invalid_argument msg -> Error msg)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let render spec =
  let buf = Buffer.create 1024 in
  let app = spec.app in
  Buffer.add_string buf
    (Printf.sprintf "app %s iterations %d\n\n" app.Kernel_ir.Application.name
       app.Kernel_ir.Application.iterations);
  Array.iter
    (fun (k : Kernel_ir.Kernel.t) ->
      Buffer.add_string buf
        (Printf.sprintf "kernel %s contexts %d cycles %d\n"
           k.Kernel_ir.Kernel.name k.contexts k.exec_cycles))
    app.Kernel_ir.Application.kernels;
  Buffer.add_char buf '\n';
  let kernel_name id =
    (Kernel_ir.Application.kernel app id).Kernel_ir.Kernel.name
  in
  List.iter
    (fun (d : Kernel_ir.Data.t) ->
      let consumers =
        String.concat " " (List.map kernel_name d.Kernel_ir.Data.consumers)
      in
      match d.Kernel_ir.Data.producer with
      | Kernel_ir.Data.External ->
        Buffer.add_string buf
          (Printf.sprintf "input %s size %d%s -> %s\n" d.Kernel_ir.Data.name
             d.Kernel_ir.Data.size
             (if d.Kernel_ir.Data.invariant then " invariant" else "")
             consumers)
      | Kernel_ir.Data.Produced_by p ->
        if d.Kernel_ir.Data.consumers = [] then
          Buffer.add_string buf
            (Printf.sprintf "final %s size %d from %s\n" d.Kernel_ir.Data.name
               d.Kernel_ir.Data.size (kernel_name p))
        else
          Buffer.add_string buf
            (Printf.sprintf "result %s size %d from %s -> %s%s\n"
               d.Kernel_ir.Data.name d.Kernel_ir.Data.size (kernel_name p)
               consumers
               (if d.Kernel_ir.Data.final then " final" else "")))
    app.Kernel_ir.Application.data;
  (match spec.partition with
  | Some sizes ->
    Buffer.add_string buf
      (Printf.sprintf "\npartition %s\n"
         (String.concat " " (List.map string_of_int sizes)))
  | None -> ());
  (match spec.fb_set_size with
  | Some n -> Buffer.add_string buf (Printf.sprintf "fb %d\n" n)
  | None -> ());
  (match spec.cm_capacity with
  | Some n -> Buffer.add_string buf (Printf.sprintf "cm %d\n" n)
  | None -> ());
  Buffer.contents buf

let config ?(default_fb = 1024) spec =
  let fb_set_size = Option.value ~default:default_fb spec.fb_set_size in
  match spec.cm_capacity with
  | Some cm_capacity -> Morphosys.Config.make ~fb_set_size ~cm_capacity ()
  | None -> Morphosys.Config.m1 ~fb_set_size

let clustering spec =
  match spec.partition with
  | Some sizes -> Kernel_ir.Cluster.of_partition spec.app sizes
  | None -> Kernel_ir.Cluster.singleton_per_kernel spec.app
