(** Extra list combinators used across the scheduler libraries. *)

val sum : int list -> int
(** [sum l] is the sum of the integers of [l]. *)

val sum_by : ('a -> int) -> 'a list -> int
(** [sum_by f l] is [sum (map f l)] without the intermediate list. *)

val max_by : ('a -> int) -> 'a list -> int
(** [max_by f l] is the maximum of [f x] over [l], or [0] for the empty
    list (all quantities in this code base are non-negative sizes). *)

val take : int -> 'a list -> 'a list
(** [take n l] is the first [n] elements of [l] (all of [l] if shorter). *)

val drop : int -> 'a list -> 'a list
(** [drop n l] is [l] without its first [n] elements. *)

val last : 'a list -> 'a option
(** [last l] is the last element of [l], if any. *)

val index_of : ('a -> bool) -> 'a list -> int option
(** [index_of p l] is the index of the first element satisfying [p]. *)

val uniq : ('a -> 'a -> bool) -> 'a list -> 'a list
(** [uniq eq l] removes duplicates (w.r.t. [eq]) keeping first occurrences. *)

val windows : 'a list -> ('a list * 'a * 'a list) list
(** [windows l] is, for each position of [l], the triple
    (elements before, element, elements after), in order. *)

val compositions : int -> int list list
(** [compositions n] enumerates every way to write [n] as an ordered sum of
    positive integers, e.g. [compositions 3 = [[1;1;1];[1;2];[2;1];[3]]].
    Used by the kernel scheduler to enumerate cluster partitions. *)

val group_consecutive : ('a -> 'a -> bool) -> 'a list -> 'a list list
(** [group_consecutive eq l] groups adjacent elements equal w.r.t. [eq]. *)

val init_list : int -> (int -> 'a) -> 'a list
(** [init_list n f] is [[f 0; ...; f (n-1)]]. *)

val pairs : 'a list -> ('a * 'a) list
(** [pairs l] is all ordered pairs [(x, y)] with [x] before [y] in [l]. *)
