type t = { lo : int; hi : int }

let make ~lo ~hi =
  if hi < lo then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let length t = t.hi - t.lo
let is_empty t = t.hi = t.lo
let contains t x = x >= t.lo && x < t.hi
let overlaps a b = a.lo < b.hi && b.lo < a.hi
let adjacent a b = a.hi = b.lo || b.hi = a.lo

let merge a b =
  if not (overlaps a b || adjacent a b) then
    invalid_arg "Interval.merge: disjoint intervals";
  { lo = min a.lo b.lo; hi = max a.hi b.hi }

let intersection a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let compare_lo a b = compare a.lo b.lo
let pp fmt t = Format.fprintf fmt "[%d,%d)" t.lo t.hi
let equal a b = a.lo = b.lo && a.hi = b.hi
