(** Small statistics helpers for the benchmark harness and fragmentation
    reports. *)

val mean : float list -> float
(** Arithmetic mean; 0. for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. for lists of length < 2. *)

val minf : float list -> float
(** Minimum; [infinity] for the empty list. *)

val maxf : float list -> float
(** Maximum; [neg_infinity] for the empty list. *)

val percent : num:int -> den:int -> float
(** [percent ~num ~den] is [100 * num / den] as a float, 0. if [den = 0]. *)

val ratio : num:int -> den:int -> float
(** [ratio ~num ~den] is [num / den] as a float, 0. if [den = 0]. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins values] buckets [values] into [bins] equal-width bins
    between their min and max; each cell is (lo, hi, count). *)
