let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.
  | l ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. l in
    exp (log_sum /. float_of_int (List.length l))

let stddev l =
  match l with
  | [] | [ _ ] -> 0.
  | l ->
    let m = mean l in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) l) in
    sqrt var

let minf = List.fold_left min infinity
let maxf = List.fold_left max neg_infinity

let percent ~num ~den =
  if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let ratio ~num ~den =
  if den = 0 then 0. else float_of_int num /. float_of_int den

let histogram ~bins values =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match values with
  | [] -> [||]
  | _ ->
    let lo = minf values and hi = maxf values in
    let width =
      if hi > lo then (hi -. lo) /. float_of_int bins else 1.0
    in
    let counts = Array.make bins 0 in
    let bucket v =
      let i = int_of_float ((v -. lo) /. width) in
      min (bins - 1) (max 0 i)
    in
    List.iter (fun v -> counts.(bucket v) <- counts.(bucket v) + 1) values;
    Array.mapi
      (fun i c ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
      counts
