(** Half-open integer intervals [lo, hi), used for FB address ranges and
    DMA-channel busy windows. *)

type t = private { lo : int; hi : int }

val make : lo:int -> hi:int -> t
(** [make ~lo ~hi] builds the interval [lo, hi).
    @raise Invalid_argument if [hi < lo]. *)

val length : t -> int
val is_empty : t -> bool
val contains : t -> int -> bool
val overlaps : t -> t -> bool
(** [overlaps a b] is true when the two half-open intervals share a point. *)

val adjacent : t -> t -> bool
(** [adjacent a b] is true when [a] ends exactly where [b] starts or vice
    versa. *)

val merge : t -> t -> t
(** [merge a b] is the smallest interval covering both.
    @raise Invalid_argument if they neither overlap nor are adjacent. *)

val intersection : t -> t -> t option
val compare_lo : t -> t -> int
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
