lib/util/stats.mli:
