lib/util/interval.ml: Format
