lib/util/pretty.ml: Array Float Format List Printf String
