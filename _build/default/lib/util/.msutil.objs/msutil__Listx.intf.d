lib/util/listx.mli:
