let sum l = List.fold_left ( + ) 0 l

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

let max_by f l = List.fold_left (fun acc x -> max acc (f x)) 0 l

let rec take n l =
  match (n, l) with
  | 0, _ | _, [] -> []
  | n, x :: rest -> x :: take (n - 1) rest

let rec drop n l =
  match (n, l) with
  | 0, l -> l
  | _, [] -> []
  | n, _ :: rest -> drop (n - 1) rest

let rec last = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: rest -> last rest

let index_of p l =
  let rec loop i = function
    | [] -> None
    | x :: rest -> if p x then Some i else loop (i + 1) rest
  in
  loop 0 l

let uniq eq l =
  let rec loop seen = function
    | [] -> List.rev seen
    | x :: rest ->
      if List.exists (eq x) seen then loop seen rest else loop (x :: seen) rest
  in
  loop [] l

let windows l =
  let rec loop before acc = function
    | [] -> List.rev acc
    | x :: after -> loop (before @ [ x ]) ((before, x, after) :: acc) after
  in
  loop [] [] l

let rec compositions n =
  if n < 0 then invalid_arg "Listx.compositions: negative argument"
  else if n = 0 then [ [] ]
  else
    List.concat_map
      (fun first ->
        List.map (fun rest -> first :: rest) (compositions (n - first)))
      (List.init n (fun i -> i + 1))

let group_consecutive eq l =
  let rec loop current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | x :: rest -> (
      match current with
      | [] -> loop [ x ] acc rest
      | y :: _ when eq x y -> loop (x :: current) acc rest
      | _ -> loop [ x ] (List.rev current :: acc) rest)
  in
  match l with [] -> [] | _ -> loop [] [] l

let init_list n f = List.init n f

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
