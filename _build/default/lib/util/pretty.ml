let kbytes words =
  if words >= 1024 then
    let k = float_of_int words /. 1024. in
    if Float.is_integer k then Printf.sprintf "%.0fK" k
    else Printf.sprintf "%.1fK" k
  else string_of_int words

let pct f = Printf.sprintf "%.0f%%" f

let table ~header ~rows fmt =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Pretty.table: row arity mismatch")
    rows;
  let widths = Array.make arity 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        Format.fprintf fmt "%s%s" cell (String.make pad ' ');
        if i < arity - 1 then Format.fprintf fmt "  ")
      row;
    Format.fprintf fmt "@\n"
  in
  print_row header;
  let total = Array.fold_left ( + ) 0 widths + (2 * (arity - 1)) in
  Format.fprintf fmt "%s@\n" (String.make total '-');
  List.iter print_row rows

let rule fmt n = Format.fprintf fmt "%s@\n" (String.make n '-')

let bar ~width value max_value =
  let len =
    if max_value <= 0. then 0
    else int_of_float (Float.round (float_of_int width *. value /. max_value))
  in
  String.make (max 0 (min width len)) '#'
