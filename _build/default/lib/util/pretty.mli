(** Pretty-printing helpers shared by the trace renderer and the benchmark
    harness (table layout, size formatting). *)

val kbytes : int -> string
(** [kbytes words] renders a word count as "0.3K", "2K", "768" in the style
    of the paper's Table 1 (K = 1024 words). *)

val pct : float -> string
(** [pct f] renders a percentage with no decimals, e.g. "45%". *)

val table :
  header:string list -> rows:string list list -> Format.formatter -> unit
(** [table ~header ~rows fmt] prints an aligned ASCII table with a rule
    under the header. Every row must have the same arity as the header. *)

val rule : Format.formatter -> int -> unit
(** [rule fmt n] prints a horizontal rule of [n] dashes and a newline. *)

val bar : width:int -> float -> float -> string
(** [bar ~width value max] renders a horizontal bar chart cell of
    proportional length, used for the Figure 6 reproduction. *)
