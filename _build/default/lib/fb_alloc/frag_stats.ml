type t = {
  free_words : int;
  largest_free : int;
  free_blocks : int;
  external_fragmentation : float;
  splits : int;
  placements : int;
}

let of_layout layout =
  let free_words = Layout.free_words layout in
  let largest_free = Layout.largest_free layout in
  let free_blocks =
    (* derive from the occupancy snapshot to avoid widening Layout's API *)
    let snap = Layout.snapshot layout in
    let count = ref 0 and in_free = ref false in
    Array.iter
      (fun cell ->
        match cell with
        | None -> if not !in_free then incr count; in_free := true
        | Some _ -> in_free := false)
      snap;
    !count
  in
  {
    free_words;
    largest_free;
    free_blocks;
    external_fragmentation =
      (if free_words = 0 then 0.
       else 1. -. (float_of_int largest_free /. float_of_int free_words));
    splits = Layout.splits layout;
    placements = Layout.placements_done layout;
  }

let pp fmt t =
  Format.fprintf fmt
    "free=%dw largest=%dw blocks=%d ext_frag=%.2f splits=%d/%d" t.free_words
    t.largest_free t.free_blocks t.external_fragmentation t.splits
    t.placements
