module Interval = Msutil.Interval

type ends = Lower | Upper

type t = { size : int; mutable free : Interval.t list (* ascending, coalesced *) }

let create size =
  if size <= 0 then invalid_arg "Free_list.create: size must be positive";
  { size; free = [ Interval.make ~lo:0 ~hi:size ] }

let size t = t.size
let blocks t = t.free
let free_words t = Msutil.Listx.sum_by Interval.length t.free
let largest_free t = Msutil.Listx.max_by Interval.length t.free

(* Removes [iv] from the free block [b] that contains it, returning the
   remaining free pieces (0, 1 or 2 intervals). *)
let carve (b : Interval.t) (iv : Interval.t) =
  let pieces = ref [] in
  if Interval.(iv.hi) < Interval.(b.hi) then
    pieces := Interval.make ~lo:Interval.(iv.hi) ~hi:Interval.(b.hi) :: !pieces;
  if Interval.(b.lo) < Interval.(iv.lo) then
    pieces := Interval.make ~lo:Interval.(b.lo) ~hi:Interval.(iv.lo) :: !pieces;
  !pieces

let allocate t ~from ~words =
  if words <= 0 then invalid_arg "Free_list.allocate: words must be positive";
  let candidates =
    match from with Lower -> t.free | Upper -> List.rev t.free
  in
  match
    List.find_opt (fun b -> Interval.length b >= words) candidates
  with
  | None -> None
  | Some b ->
    let iv =
      match from with
      | Lower -> Interval.make ~lo:Interval.(b.lo) ~hi:(Interval.(b.lo) + words)
      | Upper -> Interval.make ~lo:(Interval.(b.hi) - words) ~hi:Interval.(b.hi)
    in
    t.free <-
      List.concat_map
        (fun blk -> if Interval.equal blk b then carve b iv else [ blk ])
        t.free
      |> List.sort Interval.compare_lo;
    Some iv

let is_free t iv =
  List.exists
    (fun b -> Interval.(b.lo) <= Interval.(iv.lo) && Interval.(iv.hi) <= Interval.(b.hi))
    t.free

let allocate_at t iv =
  if Interval.is_empty iv then invalid_arg "Free_list.allocate_at: empty";
  if not (is_free t iv) then false
  else begin
    t.free <-
      List.concat_map
        (fun b ->
          if Interval.(b.lo) <= Interval.(iv.lo) && Interval.(iv.hi) <= Interval.(b.hi)
          then carve b iv
          else [ b ])
        t.free
      |> List.sort Interval.compare_lo;
    true
  end

let allocate_split t ~from ~words =
  if words <= 0 then invalid_arg "Free_list.allocate_split: words must be positive";
  if free_words t < words then None
  else begin
    let taken = ref [] in
    let remaining = ref words in
    while !remaining > 0 do
      let chunk =
        match allocate t ~from ~words:!remaining with
        | Some iv -> iv
        | None ->
          (* No single block is large enough: take the first whole block
             from the scan end and keep going. *)
          let b =
            match from, t.free with
            | Lower, b :: _ -> b
            | Upper, free -> List.nth free (List.length free - 1)
            | Lower, [] -> assert false (* free_words >= remaining > 0 *)
          in
          t.free <- List.filter (fun blk -> not (Interval.equal blk b)) t.free;
          b
      in
      taken := chunk :: !taken;
      remaining := !remaining - Interval.length chunk
    done;
    Some (List.rev !taken)
  end

let release t iv =
  if Interval.is_empty iv then invalid_arg "Free_list.release: empty interval";
  if Interval.(iv.lo) < 0 || Interval.(iv.hi) > t.size then
    invalid_arg "Free_list.release: out of bounds";
  List.iter
    (fun b ->
      if Interval.overlaps b iv then
        invalid_arg
          (Format.asprintf "Free_list.release: %a overlaps free block %a"
             Interval.pp iv Interval.pp b))
    t.free;
  let merged, rest =
    List.partition (fun b -> Interval.adjacent b iv) t.free
  in
  let unified = List.fold_left Interval.merge iv merged in
  t.free <- List.sort Interval.compare_lo (unified :: rest)

let invariant_ok t =
  let rec check = function
    | [] -> true
    | [ b ] -> Interval.(b.lo) >= 0 && Interval.(b.hi) <= t.size
    | a :: (b :: _ as rest) ->
      Interval.(a.lo) >= 0
      && Interval.(a.hi) < Interval.(b.lo) (* disjoint AND coalesced *)
      && check rest
  in
  check t.free
  && List.for_all (fun b -> not (Interval.is_empty b)) t.free

let pp fmt t =
  Format.fprintf fmt "@[<h>free:%a@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") Interval.pp)
    t.free
