(** Fragmentation metrics over a {!Layout}, used by the "allocator quality"
    section of the benchmark harness (paper §6 claims no object ever needs
    splitting on the evaluated applications). *)

type t = {
  free_words : int;
  largest_free : int;
  free_blocks : int;
  external_fragmentation : float;
      (** [1 - largest_free / free_words]; 0 when fully coalesced or full *)
  splits : int;  (** placements that had to be split so far *)
  placements : int;  (** total successful placements so far *)
}

val of_layout : Layout.t -> t
val pp : Format.formatter -> t -> unit
