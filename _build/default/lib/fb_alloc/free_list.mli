(** The FB_list of the paper's allocation algorithm: a linear list of all
    free blocks of one frame-buffer set, kept sorted by address and
    coalesced. First-fit allocation can proceed from the *lower* end
    (final / intermediate results) or from the *upper* end (input data and
    shared results), which is how the paper keeps long-lived and short-lived
    objects apart to minimise fragmentation. *)

type t

type ends = Lower | Upper
(** Which end of the address space the first-fit scan starts from. *)

val create : int -> t
(** [create size] is a fully-free list over addresses [0, size). *)

val size : t -> int
val free_words : t -> int
val largest_free : t -> int
val blocks : t -> Msutil.Interval.t list
(** Free blocks, ascending by address, coalesced. *)

val allocate : t -> from:ends -> words:int -> Msutil.Interval.t option
(** Contiguous first-fit: the first (from the chosen end) free block large
    enough; carves the allocation from that end of the block. [None] when no
    single block fits. *)

val allocate_at : t -> Msutil.Interval.t -> bool
(** [allocate_at t iv] carves exactly [iv] if it is entirely free — used to
    re-place an object at its previous iteration's address to keep the
    layout regular. Returns false (and changes nothing) otherwise. *)

val allocate_split : t -> from:ends -> words:int -> Msutil.Interval.t list option
(** Splitting allocation: greedily takes whole free blocks from the chosen
    end until [words] are covered; the object ends up in several parts
    (complex access, the paper's last resort). [None] when total free space
    is insufficient. The returned list is ordered by scan direction. *)

val release : t -> Msutil.Interval.t -> unit
(** Returns an interval to the free list, coalescing with neighbours.
    @raise Invalid_argument if any part of it is already free. *)

val is_free : t -> Msutil.Interval.t -> bool
val invariant_ok : t -> bool
(** Sorted, disjoint, non-adjacent (coalesced), in-bounds — checked by the
    property tests. *)

val pp : Format.formatter -> t -> unit
