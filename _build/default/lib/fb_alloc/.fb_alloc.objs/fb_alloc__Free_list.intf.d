lib/fb_alloc/free_list.mli: Format Msutil
