lib/fb_alloc/free_list.ml: Format List Msutil
