lib/fb_alloc/layout.ml: Array Buffer Free_list Hashtbl List Msutil Option Printf String
