lib/fb_alloc/frag_stats.mli: Format Layout
