lib/fb_alloc/frag_stats.ml: Array Format Layout
