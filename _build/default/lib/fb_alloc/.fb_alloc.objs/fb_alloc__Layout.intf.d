lib/fb_alloc/layout.mli: Free_list Msutil
