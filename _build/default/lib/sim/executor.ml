module Dma = Morphosys.Dma
module Schedule = Sched.Schedule

type timed_step = {
  step : Schedule.step;
  start_cycle : int;
  end_cycle : int;
  dma_cost : int;
  compute_cost : int;
}

let run_timed config (schedule : Schedule.t) =
  let clock = ref 0 in
  let compute_total = ref 0 in
  let dma_total = ref 0 in
  let overlapped = ref 0 in
  let loads = ref 0 and stores = ref 0 and ctx = ref 0 in
  let timeline =
    List.map
      (fun (step : Schedule.step) ->
        let dma_cost = Dma.total_cost config step.dma in
        let compute_cost =
          match step.compute with
          | Some c -> c.Schedule.compute_cycles
          | None -> 0
        in
        let duration = max dma_cost compute_cost in
        let start_cycle = !clock in
        clock := !clock + duration;
        compute_total := !compute_total + compute_cost;
        dma_total := !dma_total + dma_cost;
        if compute_cost > 0 then
          overlapped := !overlapped + min dma_cost compute_cost;
        List.iter
          (fun (tr : Dma.t) ->
            match tr.Dma.kind with
            | Dma.Data { direction = Dma.Load; _ } -> loads := !loads + tr.words
            | Dma.Data { direction = Dma.Store; _ } ->
              stores := !stores + tr.words
            | Dma.Context -> ctx := !ctx + tr.words)
          step.dma;
        { step; start_cycle; end_cycle = !clock; dma_cost; compute_cost })
      schedule.steps
  in
  let metrics =
    {
      Metrics.total_cycles = !clock;
      compute_cycles = !compute_total;
      dma_cycles = !dma_total;
      overlapped_dma_cycles = !overlapped;
      stall_cycles = !clock - !compute_total;
      data_words_loaded = !loads;
      data_words_stored = !stores;
      context_words_loaded = !ctx;
      steps = List.length schedule.steps;
    }
  in
  (metrics, timeline)

let run config schedule = fst (run_timed config schedule)
