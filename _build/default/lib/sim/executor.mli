(** Replays a {!Sched.Schedule.t} against the machine timing model.

    Each step advances time by [max(compute, dma)] when a computation and
    its overlapped transfers proceed in parallel (double buffering), or by
    the serial DMA cost for pure transfer steps. The single DMA channel
    services a step's transfer batch serially. *)

type timed_step = {
  step : Sched.Schedule.step;
  start_cycle : int;
  end_cycle : int;
  dma_cost : int;
  compute_cost : int;
}

val run : Morphosys.Config.t -> Sched.Schedule.t -> Metrics.t
(** Timing and traffic metrics of the schedule. *)

val run_timed : Morphosys.Config.t -> Sched.Schedule.t -> Metrics.t * timed_step list
(** Also returns the per-step timeline, for {!Trace}. *)
