(** Value Change Dump (IEEE 1364) export of a schedule's timeline, so the
    machine's activity can be inspected in any waveform viewer (GTKWave
    etc.).

    Signals:
    - [rc_busy]    (1 bit): the RC array is computing;
    - [dma_busy]   (1 bit): the DMA channel is transferring;
    - [cluster]    (8 bit): id of the computing cluster (xx when idle);
    - [round]      (16 bit): current round (xx when idle);
    - [dma_words]  (32 bit): words moved by the step's transfer batch.

    One timescale unit is one machine cycle. *)

val of_schedule : Morphosys.Config.t -> Sched.Schedule.t -> string
(** Render the full VCD document for the schedule's execution. *)

(** A minimal parser for the subset {!of_schedule} emits — used by the
    round-trip tests and handy for programmatic inspection. *)
module Parse : sig
  type change = { time : int; id : string; value : string }

  type t = {
    timescale : string;
    signals : (string * string) list;  (** (id, name) declarations *)
    changes : change list;  (** in time order *)
  }

  val parse : string -> (t, string) result
end
