module Schedule = Sched.Schedule

let rc_id = "!"
let dma_id = "\""
let cluster_id = "#"
let round_id = "$"
let words_id = "%"

let binary ~width v =
  let buf = Bytes.make width '0' in
  let rec fill v i =
    if v > 0 && i >= 0 then begin
      if v land 1 = 1 then Bytes.set buf i '1';
      fill (v lsr 1) (i - 1)
    end
  in
  fill v (width - 1);
  Bytes.to_string buf

let of_schedule config (schedule : Schedule.t) =
  let _, timeline = Executor.run_timed config schedule in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "$date morphosys-cds $end\n";
  add (Printf.sprintf "$comment schedule %s of %s $end\n"
         schedule.Schedule.scheduler
         schedule.Schedule.app.Kernel_ir.Application.name);
  add "$timescale 1 ns $end\n";
  add "$scope module morphosys $end\n";
  add (Printf.sprintf "$var wire 1 %s rc_busy $end\n" rc_id);
  add (Printf.sprintf "$var wire 1 %s dma_busy $end\n" dma_id);
  add (Printf.sprintf "$var wire 8 %s cluster $end\n" cluster_id);
  add (Printf.sprintf "$var wire 16 %s round $end\n" round_id);
  add (Printf.sprintf "$var wire 32 %s dma_words $end\n" words_id);
  add "$upscope $end\n$enddefinitions $end\n";
  add "$dumpvars\n";
  add (Printf.sprintf "0%s\n0%s\nbx %s\nbx %s\nb0 %s\n$end\n" rc_id dma_id
         cluster_id round_id words_id);
  (* Each step contributes change events at its start (activity rises) and
     at the end of whichever engine finishes first/last. *)
  let events = ref [] in
  let emit time line = events := (time, line) :: !events in
  List.iter
    (fun (t : Executor.timed_step) ->
      let words =
        Msutil.Listx.sum_by
          (fun (tr : Morphosys.Dma.t) -> tr.Morphosys.Dma.words)
          t.step.Schedule.dma
      in
      (match t.step.Schedule.compute with
      | Some c ->
        emit t.start_cycle (Printf.sprintf "1%s" rc_id);
        emit t.start_cycle
          (Printf.sprintf "b%s %s"
             (binary ~width:8 c.Schedule.cluster.Kernel_ir.Cluster.id)
             cluster_id);
        emit t.start_cycle
          (Printf.sprintf "b%s %s" (binary ~width:16 c.Schedule.round) round_id);
        emit (t.start_cycle + t.compute_cost) (Printf.sprintf "0%s" rc_id);
        emit (t.start_cycle + t.compute_cost)
          (Printf.sprintf "bx %s" cluster_id);
        emit (t.start_cycle + t.compute_cost) (Printf.sprintf "bx %s" round_id)
      | None -> ());
      if t.dma_cost > 0 then begin
        emit t.start_cycle (Printf.sprintf "1%s" dma_id);
        emit t.start_cycle
          (Printf.sprintf "b%s %s" (binary ~width:32 words) words_id);
        emit (t.start_cycle + t.dma_cost) (Printf.sprintf "0%s" dma_id)
      end)
    timeline;
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events)
  in
  let current = ref (-1) in
  List.iter
    (fun (time, line) ->
      if time <> !current then begin
        add (Printf.sprintf "#%d\n" time);
        current := time
      end;
      add line;
      add "\n")
    sorted;
  Buffer.contents buf

module Parse = struct
  type change = { time : int; id : string; value : string }

  type t = {
    timescale : string;
    signals : (string * string) list;
    changes : change list;
  }

  let parse text =
    let lines = String.split_on_char '\n' text in
    let timescale = ref "" in
    let signals = ref [] in
    let changes = ref [] in
    let time = ref 0 in
    let error = ref None in
    List.iter
      (fun line ->
        let line = String.trim line in
        if !error <> None || line = "" then ()
        else if String.length line > 10 && String.sub line 0 10 = "$timescale"
        then
          timescale :=
            String.trim
              (String.concat " "
                 (List.filter
                    (fun t -> t <> "$timescale" && t <> "$end")
                    (String.split_on_char ' ' line)))
        else if String.length line > 4 && String.sub line 0 4 = "$var" then begin
          match String.split_on_char ' ' line with
          | [ "$var"; "wire"; _width; id; name; "$end" ] ->
            signals := (id, name) :: !signals
          | _ -> error := Some ("bad $var line: " ^ line)
        end
        else if line.[0] = '#' then begin
          match int_of_string_opt (String.sub line 1 (String.length line - 1)) with
          | Some t -> time := t
          | None -> error := Some ("bad timestamp: " ^ line)
        end
        else if line.[0] = '0' || line.[0] = '1' then
          changes :=
            {
              time = !time;
              id = String.sub line 1 (String.length line - 1);
              value = String.make 1 line.[0];
            }
            :: !changes
        else if line.[0] = 'b' then begin
          match String.index_opt line ' ' with
          | Some i ->
            changes :=
              {
                time = !time;
                id = String.sub line (i + 1) (String.length line - i - 1);
                value = String.sub line 1 (i - 1);
              }
              :: !changes
          | None -> error := Some ("bad vector change: " ^ line)
        end
        else () (* headers, $dumpvars, $end, comments *))
      lines;
    match !error with
    | Some e -> Error e
    | None ->
      Ok
        {
          timescale = !timescale;
          signals = List.rev !signals;
          changes = List.rev !changes;
        }
end
