(** Human-readable replay traces: the per-step timeline with overlap
    percentages, used by the CLI's [--trace] flag and the examples. *)

val render : Morphosys.Config.t -> Sched.Schedule.t -> string
(** Full timeline: one line per step with start/end cycles, what computed,
    how many DMA words moved and how much of the transfer time was hidden
    under computation. Ends with the metrics summary. *)

val render_gantt : ?width:int -> Morphosys.Config.t -> Sched.Schedule.t -> string
(** ASCII Gantt chart: one row for the RC array, one for the DMA channel. *)
