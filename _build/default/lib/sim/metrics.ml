type t = {
  total_cycles : int;
  compute_cycles : int;
  dma_cycles : int;
  overlapped_dma_cycles : int;
  stall_cycles : int;
  data_words_loaded : int;
  data_words_stored : int;
  context_words_loaded : int;
  steps : int;
}

let improvement_over ~baseline t =
  if baseline.total_cycles = 0 then 0.
  else
    100.
    *. float_of_int (baseline.total_cycles - t.total_cycles)
    /. float_of_int baseline.total_cycles

let data_words t = t.data_words_loaded + t.data_words_stored

let pp fmt t =
  Format.fprintf fmt
    "total=%d cyc (compute=%d, dma=%d, overlapped=%d, stall=%d) loads=%dw \
     stores=%dw ctx=%dw steps=%d"
    t.total_cycles t.compute_cycles t.dma_cycles t.overlapped_dma_cycles
    t.stall_cycles t.data_words_loaded t.data_words_stored
    t.context_words_loaded t.steps
