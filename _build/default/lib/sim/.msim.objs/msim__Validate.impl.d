lib/sim/validate.ml: Format Hashtbl Kernel_ir List Morphosys Option Sched String
