lib/sim/trace.mli: Morphosys Sched
