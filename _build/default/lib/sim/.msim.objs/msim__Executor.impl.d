lib/sim/executor.ml: List Metrics Morphosys Sched
