lib/sim/trace.ml: Buffer Bytes Executor Format Kernel_ir List Metrics Printf Sched String
