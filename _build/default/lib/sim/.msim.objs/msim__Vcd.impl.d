lib/sim/vcd.ml: Buffer Bytes Executor Kernel_ir List Morphosys Msutil Printf Sched String
