lib/sim/vcd.mli: Morphosys Sched
