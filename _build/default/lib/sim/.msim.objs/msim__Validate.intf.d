lib/sim/validate.mli: Format Sched
