lib/sim/executor.mli: Metrics Morphosys Sched
