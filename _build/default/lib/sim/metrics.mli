(** Results of replaying a schedule on the machine model. *)

type t = {
  total_cycles : int;  (** wall-clock cycles of the whole application *)
  compute_cycles : int;  (** RC-array busy cycles *)
  dma_cycles : int;  (** DMA channel busy cycles *)
  overlapped_dma_cycles : int;
      (** DMA cycles hidden under computation (min of the two per step) *)
  stall_cycles : int;
      (** cycles the RC array waited on the DMA ([total - compute]) *)
  data_words_loaded : int;
  data_words_stored : int;
  context_words_loaded : int;
  steps : int;
}

val improvement_over : baseline:t -> t -> float
(** Relative execution-time improvement in percent, the paper's Figure 6
    metric: [100 * (baseline - this) / baseline]. *)

val data_words : t -> int
(** Loads plus stores. *)

val pp : Format.formatter -> t -> unit
