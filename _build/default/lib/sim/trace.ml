module Schedule = Sched.Schedule

let render config schedule =
  let metrics, timeline = Executor.run_timed config schedule in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Format.asprintf "%a@\n" Schedule.pp_summary schedule);
  List.iter
    (fun (t : Executor.timed_step) ->
      let what =
        match t.step.Schedule.compute with
        | Some c ->
          Printf.sprintf "Cl%d r%d x%d" c.Schedule.cluster.Kernel_ir.Cluster.id
            c.Schedule.round c.Schedule.iterations
        | None ->
          if t.step.Schedule.note = "" then "dma" else t.step.Schedule.note
      in
      let hidden =
        if t.compute_cost > 0 && t.dma_cost > 0 then
          Printf.sprintf " (%d%% of dma hidden)"
            (100 * min t.dma_cost t.compute_cost / t.dma_cost)
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "[%8d..%8d] %-14s compute=%-8d dma=%-8d%s\n"
           t.start_cycle t.end_cycle what t.compute_cost t.dma_cost hidden))
    timeline;
  Buffer.add_string buf (Format.asprintf "%a@\n" Metrics.pp metrics);
  Buffer.contents buf

let render_gantt ?(width = 72) config schedule =
  let metrics, timeline = Executor.run_timed config schedule in
  let total = max 1 metrics.Metrics.total_cycles in
  let col cycle = cycle * width / total in
  let rc = Bytes.make width ' ' in
  let dma = Bytes.make width ' ' in
  List.iter
    (fun (t : Executor.timed_step) ->
      let s = col t.start_cycle in
      let fill row cost ch =
        if cost > 0 then
          let e = min (width - 1) (col (t.start_cycle + cost)) in
          for i = s to max s (e - 1) do
            if i < width then Bytes.set row i ch
          done
      in
      fill rc t.compute_cost '#';
      fill dma t.dma_cost '=')
    timeline;
  Printf.sprintf "RC  |%s|\nDMA |%s|\n     0%s%d cycles\n" (Bytes.to_string rc)
    (Bytes.to_string dma)
    (String.make (max 1 (width - String.length (string_of_int total))) ' ')
    total
