lib/report/figure_report.ml: Cds Codegen Fb_alloc Format Kernel_ir List Morphosys Msim Msutil Printf Sched Workloads
