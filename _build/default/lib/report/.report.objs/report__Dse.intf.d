lib/report/dse.mli: Kernel_ir
