lib/report/table_report.mli: Cds Workloads
