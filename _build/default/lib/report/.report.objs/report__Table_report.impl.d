lib/report/table_report.ml: Buffer Cds Format Kernel_ir List Morphosys Msutil Option Printf Result Sched Workloads
