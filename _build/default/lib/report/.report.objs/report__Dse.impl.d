lib/report/dse.ml: Buffer Cds Format List Morphosys Msim Msutil Option Printf Result Sched
