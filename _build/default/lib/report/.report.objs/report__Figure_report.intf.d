lib/report/figure_report.mli:
