(** Textual reproduction of the paper's Table 1 and Figure 6: runs the
    Basic, Data and Complete Data Schedulers over the twelve experiments
    and prints measured-vs-paper numbers. Shared by the benchmark harness
    and the [msched] CLI. *)

type row = {
  experiment : Workloads.Table1.experiment;
  comparison : Cds.Pipeline.comparison;
}

val run_rows : unit -> row list
(** Schedule and simulate all twelve experiments. *)

val table1 : row list -> unit
(** Print the Table 1 reproduction to stdout. *)

val figure6 : row list -> unit
(** Print the Figure 6 bar chart to stdout. *)

val infeasibility : unit -> unit
(** Print the MPEG-at-1K feasibility check (paper §6). *)

val to_csv : row list -> string
(** Machine-readable export (one line per experiment, measured and paper
    columns) for downstream plotting. *)

val run : unit -> row list
(** All three, in paper order. *)
