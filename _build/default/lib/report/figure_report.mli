(** Textual reproductions of the paper's Figures 3 and 5, the §6 allocator
    quality claims, and the (non-paper) ablation study. *)

val figure5 : unit -> unit
(** Figure 5: frame-buffer snapshots of the 3-kernel cluster at RF=2. *)

val figure3 : unit -> unit
(** Figure 3: DOT graphs before and after loop fission. *)

val allocator_quality : unit -> unit
(** Splits / failures / peak usage of the Figure 4 allocator on the twelve
    experiments. *)

val ablations : unit -> unit
(** CDS with retention disabled and with cross-set reuse enabled. *)

val tf_ordering : unit -> unit
(** Words avoided by retention under the TF order vs naive candidate
    orders, swept over the frame-buffer size (design-choice ablation). *)

val dma_setup_sensitivity : unit -> unit
(** DS/CDS improvement as the per-transfer DMA setup cost grows (ours). *)

val code_size : unit -> unit
(** Unrolled vs loop-rerolled control-program sizes per experiment. *)

val heuristic_quality : unit -> unit
(** Greedy and beam kernel-scheduler searches vs the exhaustive optimum. *)

val run : unit -> unit
