type point = {
  fb_set_size : int;
  cm_capacity : int;
  dma_setup_cycles : int;
  scheduler : string;
  feasible : bool;
  rf : int option;
  total_cycles : int option;
  data_words : int option;
  context_words : int option;
}

let point_of_schedule config ~fb ~cm ~setup ~scheduler = function
  | Error (_ : string) ->
    {
      fb_set_size = fb;
      cm_capacity = cm;
      dma_setup_cycles = setup;
      scheduler;
      feasible = false;
      rf = None;
      total_cycles = None;
      data_words = None;
      context_words = None;
    }
  | Ok (s : Sched.Schedule.t) ->
    let m = Msim.Executor.run config s in
    {
      fb_set_size = fb;
      cm_capacity = cm;
      dma_setup_cycles = setup;
      scheduler;
      feasible = true;
      rf = Some s.Sched.Schedule.rf;
      total_cycles = Some m.Msim.Metrics.total_cycles;
      data_words = Some (Msim.Metrics.data_words m);
      context_words = Some m.Msim.Metrics.context_words_loaded;
    }

let sweep ?(cm_list = [ 2048 ]) ?(setup_list = [ 0 ]) ~fb_list app clustering =
  List.concat_map
    (fun fb ->
      List.concat_map
        (fun cm ->
          List.concat_map
            (fun setup ->
              let config =
                Morphosys.Config.make ~fb_set_size:fb ~cm_capacity:cm
                  ~dma_setup_cycles:setup ()
              in
              let mk = point_of_schedule config ~fb ~cm ~setup in
              [
                mk ~scheduler:"basic"
                  (Sched.Basic_scheduler.schedule config app clustering);
                mk ~scheduler:"ds"
                  (Sched.Data_scheduler.schedule config app clustering);
                mk ~scheduler:"cds"
                  (Result.map
                     (fun r -> r.Cds.Complete_data_scheduler.schedule)
                     (Cds.Complete_data_scheduler.schedule config app
                        clustering));
              ])
            setup_list)
        cm_list)
    fb_list

let opt_str f = function Some v -> f v | None -> ""

let to_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "fb_words,cm_words,dma_setup,scheduler,feasible,rf,cycles,data_words,context_words\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%b,%s,%s,%s,%s\n" p.fb_set_size
           p.cm_capacity p.dma_setup_cycles p.scheduler p.feasible
           (opt_str string_of_int p.rf)
           (opt_str string_of_int p.total_cycles)
           (opt_str string_of_int p.data_words)
           (opt_str string_of_int p.context_words)))
    points;
  Buffer.contents buf

let best points =
  List.fold_left
    (fun acc p ->
      match (p.feasible, p.total_cycles, acc) with
      | false, _, _ | _, None, _ -> acc
      | true, Some _, None -> Some p
      | true, Some c, Some b ->
        let bc = Option.get b.total_cycles in
        if c < bc || (c = bc && p.fb_set_size < b.fb_set_size) then Some p
        else acc)
    None points

let pareto points =
  let feasible =
    List.filter (fun p -> p.feasible && p.total_cycles <> None) points
  in
  let dominated p =
    List.exists
      (fun q ->
        q != p && q.feasible
        && q.fb_set_size <= p.fb_set_size
        && Option.get q.total_cycles <= Option.get p.total_cycles
        && (q.fb_set_size < p.fb_set_size
           || Option.get q.total_cycles < Option.get p.total_cycles))
      feasible
  in
  List.filter (fun p -> not (dominated p)) feasible
  |> List.sort (fun a b -> compare a.fb_set_size b.fb_set_size)

let print_table points =
  let header =
    [ "FB"; "CM"; "setup"; "sched"; "RF"; "cycles"; "data w"; "ctx w" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          Msutil.Pretty.kbytes p.fb_set_size;
          Msutil.Pretty.kbytes p.cm_capacity;
          string_of_int p.dma_setup_cycles;
          p.scheduler;
          (if p.feasible then opt_str string_of_int p.rf else "-");
          (if p.feasible then opt_str string_of_int p.total_cycles
           else "infeasible");
          opt_str string_of_int p.data_words;
          opt_str string_of_int p.context_words;
        ])
      points
  in
  Msutil.Pretty.table ~header ~rows Format.std_formatter
