lib/cds/sharing.mli: Format Kernel_ir Morphosys
