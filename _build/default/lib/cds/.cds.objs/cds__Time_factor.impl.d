lib/cds/time_factor.ml: Kernel_ir List Sharing
