lib/cds/retention.mli: Format Kernel_ir Morphosys Sharing
