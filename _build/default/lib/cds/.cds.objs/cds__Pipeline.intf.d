lib/cds/pipeline.mli: Allocation_algorithm Complete_data_scheduler Kernel_ir Morphosys Msim Sched
