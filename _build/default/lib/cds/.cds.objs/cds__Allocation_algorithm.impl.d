lib/cds/allocation_algorithm.ml: Fb_alloc Kernel_ir List Morphosys Printf Retention Sched Sharing
