lib/cds/pipeline.ml: Allocation_algorithm Complete_data_scheduler Kernel_ir Morphosys Msim Option Result Sched
