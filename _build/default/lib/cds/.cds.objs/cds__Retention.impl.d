lib/cds/retention.ml: Format Kernel_ir List Logs Morphosys Msutil Printf Sched Sharing Time_factor
