lib/cds/sharing.ml: Format Kernel_ir List Morphosys Msutil
