lib/cds/allocation_algorithm.mli: Fb_alloc Kernel_ir Morphosys Retention
