lib/cds/complete_data_scheduler.ml: Kernel_ir List Morphosys Option Printf Retention Sched Sharing
