lib/cds/time_factor.mli: Kernel_ir Sharing
