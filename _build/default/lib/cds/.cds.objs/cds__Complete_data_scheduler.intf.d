lib/cds/complete_data_scheduler.mli: Kernel_ir Morphosys Retention Sched Stdlib
