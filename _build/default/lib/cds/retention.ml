module IE = Kernel_ir.Info_extractor
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data

let log_src = Logs.Src.create "cds.retention" ~doc:"Retention decisions"

module Log = (val Logs.src_log log_src)

type decision = {
  retained : Sharing.t list;
  rejected : (Sharing.t * string) list;
  avoided_words_per_iteration : int;
  avoided_transfers_per_iteration : int;
}

let none =
  {
    retained = [];
    rejected = [];
    avoided_words_per_iteration = 0;
    avoided_transfers_per_iteration = 0;
  }

let pinned_for ~retained ~cluster =
  List.filter_map
    (fun (c : Sharing.t) ->
      if
        c.Sharing.set = cluster.Cluster.fb_set
        && Sharing.pins_cluster c ~cluster_id:cluster.Cluster.id
      then Some (Sharing.data c)
      else None)
    retained

type ranking = [ `Tf | `Fifo | `Smallest_first | `Largest_first ]

let order ranking ~tds candidates =
  let size c = (Sharing.data c).Data.size in
  let data_id c = (Sharing.data c).Data.id in
  match ranking with
  | `Tf -> Time_factor.rank ~tds candidates
  | `Fifo ->
    List.sort (fun a b -> compare (data_id a) (data_id b)) candidates
  | `Smallest_first ->
    List.sort (fun a b -> compare (size a, data_id a) (size b, data_id b))
      candidates
  | `Largest_first ->
    List.sort (fun a b -> compare (size b, data_id a) (size a, data_id b))
      candidates

(* Words of external traffic a retained candidate avoids, averaged per
   iteration. Ordinary shared objects save transfers within every iteration
   (the static [avoided_words]); an invariant table is loaded once for the
   whole run instead of once per consumer cluster per round. *)
let effective_avoided ~rf ~iterations (candidate : Sharing.t) =
  let d = Sharing.data candidate in
  if d.Data.invariant then
    let rounds = (iterations + rf - 1) / rf in
    let loads_without = List.length candidate.Sharing.beneficiaries * rounds in
    d.Data.size * (loads_without - 1) / iterations
  else candidate.Sharing.avoided_words

let choose ?(cross_set = false) ?(ranking = `Tf)
    (config : Morphosys.Config.t) app clustering ~rf =
  if rf < 1 then invalid_arg "Retention.choose: rf must be >= 1";
  let iterations = app.Kernel_ir.Application.iterations in
  let profiles = IE.profiles app clustering in
  let profile_of id = List.nth profiles id in
  let tds = Time_factor.tds app in
  let ranked =
    match ranking with
    | `Tf ->
      (* rank by traffic actually avoided at this rf (reduces to the TF
         order when no invariant data is involved) *)
      List.stable_sort
        (fun a b ->
          compare
            (effective_avoided ~rf ~iterations b)
            (effective_avoided ~rf ~iterations a))
        (Time_factor.rank ~tds (Sharing.candidates ~cross_set app clustering))
    | ranking ->
      order ranking ~tds (Sharing.candidates ~cross_set app clustering)
  in
  let fits retained (candidate : Sharing.t) =
    (* Re-check every same-set cluster the candidate occupies space during
       (its window, or every cluster for an invariant table) with the
       candidate tentatively added to the already-accepted set. *)
    let tentative = candidate :: retained in
    let lo, hi = candidate.Sharing.window in
    let invariant = (Sharing.data candidate).Data.invariant in
    let affected =
      List.filter
        (fun (c : Cluster.t) ->
          c.Cluster.fb_set = candidate.Sharing.set
          && (invariant || (lo <= c.Cluster.id && c.Cluster.id <= hi)))
        clustering
    in
    List.find_map
      (fun (c : Cluster.t) ->
        let pinned = pinned_for ~retained:tentative ~cluster:c in
        let per_iteration, constant =
          Sched.Ds_formula.split ~pinned (profile_of c.Cluster.id)
        in
        if (rf * per_iteration) + constant > config.fb_set_size then
          Some
            (Printf.sprintf
               "cluster %d would need %d x %dw + %dw = %dw > FB set %dw"
               c.Cluster.id rf per_iteration constant
               ((rf * per_iteration) + constant)
               config.fb_set_size)
        else None)
      affected
  in
  let retained, rejected =
    List.fold_left
      (fun (retained, rejected) candidate ->
        match fits retained candidate with
        | None ->
          Log.debug (fun m -> m "retain %a" Sharing.pp candidate);
          (candidate :: retained, rejected)
        | Some reason ->
          Log.debug (fun m -> m "reject %a: %s" Sharing.pp candidate reason);
          (retained, (candidate, reason) :: rejected))
      ([], []) ranked
  in
  let retained = List.rev retained in
  {
    retained;
    rejected = List.rev rejected;
    avoided_words_per_iteration =
      Msutil.Listx.sum_by (effective_avoided ~rf ~iterations) retained;
    avoided_transfers_per_iteration =
      Msutil.Listx.sum_by (fun c -> c.Sharing.avoided_transfers) retained;
  }

let pp_decision fmt t =
  Format.fprintf fmt "@[<v>retained (%d, avoiding %dw/iter):@,"
    (List.length t.retained) t.avoided_words_per_iteration;
  List.iter (fun c -> Format.fprintf fmt "  + %a@," Sharing.pp c) t.retained;
  List.iter
    (fun (c, reason) ->
      Format.fprintf fmt "  - %a [%s]@," Sharing.pp c reason)
    t.rejected;
  Format.fprintf fmt "@]"
