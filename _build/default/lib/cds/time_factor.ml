let tds = Kernel_ir.Application.total_data_words

let tf ~tds (candidate : Sharing.t) =
  if tds <= 0 then invalid_arg "Time_factor.tf: tds must be positive";
  float_of_int candidate.Sharing.avoided_words /. float_of_int tds

let rank ~tds candidates =
  let key (c : Sharing.t) =
    let d = Sharing.data c in
    (-.tf ~tds c, -d.Kernel_ir.Data.size, d.Kernel_ir.Data.id)
  in
  List.sort (fun a b -> compare (key a) (key b)) candidates
