(** End-to-end compilation pipeline: kernel scheduling (clustering search),
    the three data schedulers (Basic / DS / CDS), simulation, validation and
    allocator statistics — everything Table 1 and Figure 6 need for one
    experiment. *)

type scheduled = { schedule : Sched.Schedule.t; metrics : Msim.Metrics.t }

type comparison = {
  app : Kernel_ir.Application.t;
  config : Morphosys.Config.t;
  clustering : Kernel_ir.Cluster.clustering;
  basic : (scheduled, string) result;
  ds : (scheduled, string) result;
  cds : (scheduled * Complete_data_scheduler.result, string) result;
}

val run :
  ?validate:bool ->
  ?retention:bool ->
  ?cross_set:bool ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  comparison
(** Schedules the application three ways on the given clustering and
    simulates each result. With [validate] (default true) every produced
    schedule is checked by {!Msim.Validate} first.
    @raise Failure if validation finds a violation (a scheduler bug). *)

val improvement : comparison -> [ `Ds | `Cds ] -> float option
(** Relative execution improvement over the Basic Scheduler in percent
    (Figure 6); [None] when either party is infeasible. *)

val ds_rf : comparison -> int option
(** The reuse factor DS/CDS achieved (Table 1's RF column). *)

val dt_words : comparison -> int option
(** Data words avoided per iteration by CDS retention (Table 1's DT). *)

val auto_clustering :
  ?scheduler:[ `Basic | `Ds | `Cds ] ->
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  (Kernel_ir.Cluster.clustering * int) option
(** Kernel-scheduler search: the clustering minimising the chosen
    scheduler's simulated cycles (default [`Cds]); [None] when no partition
    is feasible. *)

val allocation_report :
  Morphosys.Config.t ->
  Kernel_ir.Application.t ->
  Kernel_ir.Cluster.clustering ->
  (Allocation_algorithm.result, string) result
(** Runs the Figure 4 allocator for round 0 of the CDS schedule. *)
