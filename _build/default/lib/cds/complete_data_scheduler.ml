module IE = Kernel_ir.Info_extractor
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data

type result = {
  schedule : Sched.Schedule.t;
  retention : Retention.decision;
  rf : int;
  data_words_avoided_per_iteration : int;
}

(* An object can have one retention candidate per FB set (the same shared
   datum may be retained in both sets), so the skip test quantifies over all
   retained candidates for the object. *)
let skipped retained (d : Data.t) ~cluster_id ~skip =
  List.exists
    (fun c -> (Sharing.data c).Data.id = d.Data.id && skip c ~cluster_id)
    retained

let generators app clustering (decision : Retention.decision) =
  let profiles = IE.profiles app clustering in
  let profile_of (c : Cluster.t) = List.nth profiles c.Cluster.id in
  let loads (c : Cluster.t) ~round ~iters ~base_iter =
    let is_retained (d : Data.t) =
      List.exists
        (fun cand -> (Sharing.data cand).Data.id = d.Data.id)
        decision.retained
    in
    let objects =
      List.filter
        (fun (d : Data.t) ->
          (* a retained invariant table is loaded exactly once, by its first
             consumer cluster on round 0 *)
          if d.Data.invariant && is_retained d && round > 0 then false
          else
            not
              (skipped decision.retained d ~cluster_id:c.Cluster.id
                 ~skip:Sharing.skips_load))
        (profile_of c).IE.external_inputs
    in
    Sched.Xfer_gen.loads_for_objects ~set:c.Cluster.fb_set ~objects ~iters
      ~base_iter
  in
  let stores (c : Cluster.t) ~round:_ ~iters ~base_iter =
    let objects =
      List.filter
        (fun d ->
          not
            (skipped decision.retained d ~cluster_id:c.Cluster.id
               ~skip:Sharing.skips_store))
        (profile_of c).IE.outliving
    in
    Sched.Xfer_gen.stores_for_objects ~set:c.Cluster.fb_set ~objects ~iters
      ~base_iter
  in
  { Sched.Step_builder.loads; stores }

let schedule ?(retention = true) ?(cross_set = false)
    (config : Morphosys.Config.t) app clustering =
  match Sched.Context_scheduler.plan config app clustering with
  | Error e -> Error ("cds: " ^ e)
  | Ok ctx_plan -> (
    (* The CDS allocator packs the whole set (paper §5: minimal memory, no
       fragmentation), so its RF bound is computed against the full FB
       size; among the feasible factors the scheduler keeps the fastest
       (retention is recomputed per candidate — pinned copies scale with
       RF). *)
    match
      Sched.Reuse_factor.common_split ~fb_set_size:config.fb_set_size
        ~footprints:(Sched.Data_scheduler.footprints_split app clustering)
        ~iterations:app.Kernel_ir.Application.iterations
    with
    | 0 ->
      Error
        (Printf.sprintf
           "cds: some cluster's DS(C) exceeds the FB set of %dw"
           config.fb_set_size)
    | rf_max ->
      let scheduler_name = if cross_set then "cds-xset" else "cds" in
      let candidate rf =
        let decision =
          if retention then
            Retention.choose ~cross_set config app clustering ~rf
          else Retention.none
        in
        let schedule =
          Sched.Step_builder.build ~cross_set config app clustering ~rf
            ~ctx_plan
            ~generators:(generators app clustering decision)
            ~scheduler:scheduler_name
        in
        (schedule, decision)
      in
      let chosen, decision =
        (* keep the fastest; ties prefer the larger RF *)
        List.fold_left
          (fun acc rf ->
            let (schedule, _) as cand = candidate rf in
            let cycles = Sched.Schedule_cost.estimate config schedule in
            match acc with
            | Some (_, best_cycles) when best_cycles < cycles -> acc
            | _ -> Some (cand, cycles))
          None
          (List.init rf_max (fun i -> i + 1))
        |> Option.get |> fst
      in
      Ok
        {
          schedule = chosen;
          retention = decision;
          rf = chosen.Sched.Schedule.rf;
          data_words_avoided_per_iteration =
            decision.Retention.avoided_words_per_iteration;
        })
