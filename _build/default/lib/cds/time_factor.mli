(** The time factor TF (paper §4) — the figure of merit the Complete Data
    Scheduler ranks retention candidates by:

    - shared data:    [TF(D_i..j)   = D * (N - 1) / TDS]
    - shared results: [TF(R_i,j..k) = R * (N + 1) / TDS]

    where [N] is the number of clusters using the object as input data and
    TDS the application's total data-and-result size. The numerator is
    exactly the external-memory words retention avoids per iteration, so TF
    orders candidates by traffic saved (a final shared result still needs
    its store, hence [N] instead of [N + 1] for it). *)

val tds : Kernel_ir.Application.t -> int
(** Total data and result size of the application (words per iteration). *)

val tf : tds:int -> Sharing.t -> float
(** [avoided_words / tds]. @raise Invalid_argument if [tds <= 0]. *)

val rank : tds:int -> Sharing.t list -> Sharing.t list
(** Candidates sorted by decreasing TF; ties broken by larger object size,
    then by data id (deterministic). *)
