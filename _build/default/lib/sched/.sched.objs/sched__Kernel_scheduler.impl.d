lib/sched/kernel_scheduler.ml: Kernel_ir List Msutil Option
