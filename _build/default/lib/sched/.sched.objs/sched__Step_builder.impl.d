lib/sched/step_builder.ml: Array Context_scheduler Kernel_ir List Morphosys Msutil Printf Schedule
