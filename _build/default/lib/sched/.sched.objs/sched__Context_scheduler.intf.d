lib/sched/context_scheduler.mli: Format Kernel_ir Morphosys
