lib/sched/schedule_cost.ml: Morphosys Msutil Schedule
