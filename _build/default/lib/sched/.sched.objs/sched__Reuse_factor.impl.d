lib/sched/reuse_factor.ml: List
