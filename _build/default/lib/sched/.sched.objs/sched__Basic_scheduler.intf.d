lib/sched/basic_scheduler.mli: Kernel_ir Morphosys Schedule
