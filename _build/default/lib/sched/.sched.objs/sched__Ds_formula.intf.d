lib/sched/ds_formula.mli: Kernel_ir
