lib/sched/schedule_cost.mli: Morphosys Schedule
