lib/sched/reuse_factor.mli:
