lib/sched/ds_formula.ml: Kernel_ir List Msutil
