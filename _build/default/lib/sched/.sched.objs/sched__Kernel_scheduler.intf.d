lib/sched/kernel_scheduler.mli: Kernel_ir
