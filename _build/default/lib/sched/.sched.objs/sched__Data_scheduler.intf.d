lib/sched/data_scheduler.mli: Kernel_ir Morphosys Schedule
