lib/sched/context_scheduler.ml: Format Kernel_ir List Morphosys Msutil Printf String
