lib/sched/xfer_gen.ml: Kernel_ir List Morphosys Schedule Step_builder
