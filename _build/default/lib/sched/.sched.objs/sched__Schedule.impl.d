lib/sched/schedule.ml: Format Kernel_ir List Morphosys Msutil Printf String
