lib/sched/step_builder.mli: Context_scheduler Kernel_ir Morphosys Schedule
