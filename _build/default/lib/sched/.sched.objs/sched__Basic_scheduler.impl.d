lib/sched/basic_scheduler.ml: Context_scheduler Ds_formula Kernel_ir List Morphosys Printf Step_builder Xfer_gen
