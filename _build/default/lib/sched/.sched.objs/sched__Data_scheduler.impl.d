lib/sched/data_scheduler.ml: Context_scheduler Ds_formula Kernel_ir List Logs Morphosys Msutil Printf Reuse_factor Schedule Schedule_cost Step_builder Xfer_gen
