lib/sched/xfer_gen.mli: Kernel_ir Morphosys Step_builder
