lib/sched/schedule.mli: Format Kernel_ir Morphosys
