(** The Context Reuse Factor RF (paper §3): the number of consecutive
    iterations every kernel executes before handing the array to the next
    kernel (loop fission). The FB must hold the data of RF iterations of
    every cluster of its set, so RF is bounded by the frame-buffer set size;
    contexts are then loaded [ceil (n / RF)] times instead of [n]. *)

val per_cluster : fb_set_size:int -> footprint:int -> int
(** Largest [rf] with [rf * footprint <= fb_set_size]; 0 when even one
    iteration does not fit (infeasible cluster). *)

val common :
  fb_set_size:int -> footprints:int list -> iterations:int -> int
(** The paper's "highest common RF value, to all clusters, allowed by the
    internal memory size": minimum of the per-cluster factors, clamped to
    the application's iteration count; 0 when any cluster is infeasible.
    @raise Invalid_argument on an empty footprint list. *)

val common_split :
  fb_set_size:int -> footprints:(int * int) list -> iterations:int -> int
(** Like {!common} for [(per_iteration, constant)] footprints
    ({!Ds_formula.split}): the largest [rf] with
    [rf * per_iteration + constant <= fb_set_size] for every cluster. *)

val rounds : iterations:int -> rf:int -> int
(** [ceil (iterations / rf)]. @raise Invalid_argument if [rf <= 0]. *)
