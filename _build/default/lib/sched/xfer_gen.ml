module IE = Kernel_ir.Info_extractor
module Data = Kernel_ir.Data
module Dma = Morphosys.Dma

let instances ~objects ~iters ~base_iter f =
  List.concat_map
    (fun (d : Data.t) ->
      if d.Data.invariant then
        (* one constant copy serves every iteration of the round *)
        [ f ~label:(Schedule.instance_label d.name ~iter:0) ~words:d.size ]
      else
        List.init iters (fun i ->
            f ~label:(Schedule.instance_label d.name ~iter:(base_iter + i))
              ~words:d.size))
    objects

let loads_for_objects ~set ~objects ~iters ~base_iter =
  instances ~objects ~iters ~base_iter (fun ~label ~words ->
      Dma.data_load ~set ~label ~words)

let stores_for_objects ~set ~objects ~iters ~base_iter =
  instances ~objects ~iters ~base_iter (fun ~label ~words ->
      Dma.data_store ~set ~label ~words)

let make_generators app clustering ~stored_objects =
  let profiles = IE.profiles app clustering in
  let profile_of (c : Kernel_ir.Cluster.t) =
    List.nth profiles c.Kernel_ir.Cluster.id
  in
  {
    Step_builder.loads =
      (fun c ~round:_ ~iters ~base_iter ->
        loads_for_objects ~set:c.Kernel_ir.Cluster.fb_set
          ~objects:(profile_of c).IE.external_inputs ~iters ~base_iter);
    stores =
      (fun c ~round:_ ~iters ~base_iter ->
        stores_for_objects ~set:c.Kernel_ir.Cluster.fb_set
          ~objects:(stored_objects (profile_of c)) ~iters ~base_iter);
  }

let plain app clustering =
  make_generators app clustering ~stored_objects:(fun p -> p.IE.outliving)

let store_everything app clustering =
  let produced (p : IE.cluster_profile) =
    List.concat_map
      (fun kp ->
        kp.IE.rout_objects @ List.map fst kp.IE.intermediate_objects)
      p.IE.kernel_profiles
  in
  make_generators app clustering ~stored_objects:produced
