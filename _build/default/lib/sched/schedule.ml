module Dma = Morphosys.Dma

type computation = {
  cluster : Kernel_ir.Cluster.t;
  round : int;
  iterations : int;
  compute_cycles : int;
}

type step = { compute : computation option; dma : Dma.t list; note : string }

type t = {
  scheduler : string;
  app : Kernel_ir.Application.t;
  clustering : Kernel_ir.Cluster.clustering;
  rf : int;
  cross_set : bool;
  steps : step list;
}

let instance_label name ~iter = Printf.sprintf "%s@%d" name iter

let parse_label label =
  match String.rindex_opt label '@' with
  | None -> None
  | Some i -> (
    let name = String.sub label 0 i in
    let iter = String.sub label (i + 1) (String.length label - i - 1) in
    match int_of_string_opt iter with
    | Some iter -> Some (name, iter)
    | None -> None)

let sum_words pred t =
  Msutil.Listx.sum_by
    (fun step ->
      Msutil.Listx.sum_by
        (fun (tr : Dma.t) -> if pred tr then tr.words else 0)
        step.dma)
    t.steps

let data_words_loaded t =
  sum_words
    (fun tr ->
      match tr.Dma.kind with
      | Dma.Data { direction = Dma.Load; _ } -> true
      | _ -> false)
    t

let data_words_stored t =
  sum_words
    (fun tr ->
      match tr.Dma.kind with
      | Dma.Data { direction = Dma.Store; _ } -> true
      | _ -> false)
    t

let context_words_loaded t =
  sum_words (fun tr -> Dma.is_context tr.Dma.kind) t

let total_dma_words t = sum_words (fun _ -> true) t

let n_steps t = List.length t.steps

let rounds t =
  let n = t.app.Kernel_ir.Application.iterations in
  (n + t.rf - 1) / t.rf

let iterations_in_round t r =
  let n = t.app.Kernel_ir.Application.iterations in
  let total_rounds = rounds t in
  if r < 0 || r >= total_rounds then
    invalid_arg "Schedule.iterations_in_round: round out of range";
  if r < total_rounds - 1 then t.rf else n - (t.rf * (total_rounds - 1))

let pp_summary fmt t =
  Format.fprintf fmt
    "%s: rf=%d steps=%d loads=%dw stores=%dw ctx=%dw clusters=%a" t.scheduler
    t.rf (n_steps t) (data_words_loaded t) (data_words_stored t)
    (context_words_loaded t) Kernel_ir.Cluster.pp_clustering t.clustering

let pp fmt t =
  pp_summary fmt t;
  Format.fprintf fmt "@\n";
  List.iteri
    (fun i step ->
      (match step.compute with
      | Some c ->
        Format.fprintf fmt "step %d: compute Cl%d round=%d x%d (%d cyc)"
          i c.cluster.Kernel_ir.Cluster.id c.round c.iterations
          c.compute_cycles
      | None -> Format.fprintf fmt "step %d: (dma only)" i);
      if step.note <> "" then Format.fprintf fmt " [%s]" step.note;
      Format.fprintf fmt "@\n";
      List.iter (fun tr -> Format.fprintf fmt "    %a@\n" Dma.pp tr) step.dma)
    t.steps
