(** The common schedule representation every scheduler produces and the
    simulator consumes.

    A schedule is a sequence of *steps*. A step either executes one cluster
    for a number of consecutive iterations (the reuse factor RF), with a
    batch of DMA transfers overlapped with the computation, or is a pure
    DMA step (transfers that could not be overlapped, e.g. because they
    target the frame-buffer set the next computation needs and no
    computation runs on the other set meanwhile).

    Transfer labels follow the convention ["<data-name>@<iteration>"] so the
    validator can relate transfers to IR objects ({!instance_label} /
    {!parse_label}). *)

type computation = {
  cluster : Kernel_ir.Cluster.t;
  round : int;  (** 0-based round index *)
  iterations : int;  (** iterations executed consecutively (<= RF) *)
  compute_cycles : int;
      (** RC-array busy time for the step: iteration work plus the
          per-round reconfiguration broadcasts *)
}

type step = {
  compute : computation option;
  dma : Morphosys.Dma.t list;  (** serviced serially by the single channel *)
  note : string;  (** human-readable purpose, for traces *)
}

type t = {
  scheduler : string;  (** "basic" | "ds" | "cds" | ... *)
  app : Kernel_ir.Application.t;
  clustering : Kernel_ir.Cluster.clustering;
  rf : int;  (** context reuse factor the schedule was built with *)
  cross_set : bool;
      (** future-work mode: clusters may read data retained in the other FB
          set, so residency is checked across both sets *)
  steps : step list;
}

val instance_label : string -> iter:int -> string
(** [instance_label "d1" ~iter:3] is ["d1@3"]. *)

val parse_label : string -> (string * int) option
(** Inverse of {!instance_label}; [None] for labels without an ["@"] (e.g.
    context transfers). *)

val data_words_loaded : t -> int
val data_words_stored : t -> int
val context_words_loaded : t -> int
val total_dma_words : t -> int
val n_steps : t -> int
val rounds : t -> int
(** Number of rounds implied by [rf] and the application's iterations. *)

val iterations_in_round : t -> int -> int
(** [iterations_in_round t r]: RF for every round but possibly the last. *)

val pp_summary : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
(** Full step-by-step dump. *)
