module Cluster = Kernel_ir.Cluster
module Application = Kernel_ir.Application
module Dma = Morphosys.Dma
module Fb = Morphosys.Frame_buffer

type generators = {
  loads :
    Cluster.t -> round:int -> iters:int -> base_iter:int -> Dma.t list;
  stores :
    Cluster.t -> round:int -> iters:int -> base_iter:int -> Dma.t list;
}

type execution = {
  cluster : Cluster.t;
  round : int;
  iters : int;
  base_iter : int;
}

let executions app clustering ~rf =
  let n = app.Application.iterations in
  let total_rounds = (n + rf - 1) / rf in
  List.concat_map
    (fun round ->
      let base_iter = round * rf in
      let iters = min rf (n - base_iter) in
      List.map (fun cluster -> { cluster; round; iters; base_iter }) clustering)
    (List.init total_rounds (fun r -> r))

(* A transfer may overlap a computation on [set] unless it reads or writes
   that same FB set; context loads go to the CM and always overlap. *)
let can_overlap ~computing_set (tr : Dma.t) =
  match tr.Dma.kind with
  | Dma.Context -> true
  | Dma.Data { set; _ } -> set <> computing_set

let compute_cycles config app (e : execution) =
  let per_iter =
    Msutil.Listx.sum_by
      (fun kid -> (Application.kernel app kid).Kernel_ir.Kernel.exec_cycles)
      e.cluster.Cluster.kernels
  in
  (* one context broadcast per kernel per round (loop fission lets each
     kernel keep its configuration for all the round's iterations) *)
  let reconfig =
    Msutil.Listx.sum_by
      (fun kid ->
        Morphosys.Rc_array.reconfigure_cycles config
          ~contexts:(Application.kernel app kid).Kernel_ir.Kernel.contexts)
      e.cluster.Cluster.kernels
  in
  (e.iters * per_iter) + reconfig

let build ?(cross_set = false) config app clustering ~rf ~ctx_plan ~generators
    ~scheduler =
  if rf < 1 then invalid_arg "Step_builder.build: rf must be >= 1";
  let execs = Array.of_list (executions app clustering ~rf) in
  let s_max = Array.length execs in
  let loads_of s =
    if s >= s_max then []
    else
      let e = execs.(s) in
      generators.loads e.cluster ~round:e.round ~iters:e.iters
        ~base_iter:e.base_iter
  in
  let stores_of s =
    if s < 0 || s >= s_max then []
    else
      let e = execs.(s) in
      generators.stores e.cluster ~round:e.round ~iters:e.iters
        ~base_iter:e.base_iter
  in
  let ctx_of s =
    if s >= s_max then []
    else
      let e = execs.(s) in
      let words =
        Context_scheduler.load_words_for_round ctx_plan ~app ~clustering
          ~cluster:e.cluster ~round:e.round
      in
      if words = 0 then []
      else
        [
          Dma.context_load
            ~kernel:(Printf.sprintf "Cl%d" e.cluster.Cluster.id)
            ~words;
        ]
  in
  let steps = ref [] in
  let emit step = steps := step :: !steps in
  (* Priming step: everything execution 0 needs, nothing to overlap with. *)
  emit
    {
      Schedule.compute = None;
      dma = ctx_of 0 @ loads_of 0;
      note = "prime first cluster";
    };
  for s = 0 to s_max - 1 do
    let e = execs.(s) in
    let prep = stores_of (s - 1) @ loads_of (s + 1) @ ctx_of (s + 1) in
    let overlapped, deferred =
      List.partition (can_overlap ~computing_set:e.cluster.Cluster.fb_set) prep
    in
    emit
      {
        Schedule.compute =
          Some
            {
              Schedule.cluster = e.cluster;
              round = e.round;
              iterations = e.iters;
              compute_cycles = compute_cycles config app e;
            };
        dma = overlapped;
        note = "";
      };
    if deferred <> [] then
      emit
        { Schedule.compute = None; dma = deferred; note = "set conflict stall" }
  done;
  (* Drain: results of the last execution. *)
  let final_stores = stores_of (s_max - 1) in
  if final_stores <> [] then
    emit { Schedule.compute = None; dma = final_stores; note = "final drain" };
  {
    Schedule.scheduler;
    app;
    clustering;
    rf;
    cross_set;
    steps = List.rev !steps;
  }
