(** Cheap execution-time estimate of a schedule — the scheduler-side twin of
    the simulator's timing rule (each step lasts [max(compute, dma)]; a
    pure-DMA step lasts its serial transfer cost). The Data and Complete
    Data Schedulers use it to choose the reuse factor that actually
    minimises time: on imbalanced clusters the largest memory-allowed RF can
    pessimise the pipeline by batching transfers the computation can no
    longer hide. A test asserts this estimate equals the simulator's
    total-cycle count on every schedule. *)

val estimate : Morphosys.Config.t -> Schedule.t -> int
