let estimate config (schedule : Schedule.t) =
  Msutil.Listx.sum_by
    (fun (step : Schedule.step) ->
      let dma = Morphosys.Dma.total_cost config step.Schedule.dma in
      let compute =
        match step.Schedule.compute with
        | Some c -> c.Schedule.compute_cycles
        | None -> 0
      in
      max dma compute)
    schedule.Schedule.steps
