let per_cluster ~fb_set_size ~footprint =
  if footprint <= 0 then fb_set_size (* an (impossible) weightless cluster *)
  else fb_set_size / footprint

let common ~fb_set_size ~footprints ~iterations =
  if footprints = [] then invalid_arg "Reuse_factor.common: no clusters";
  let rf =
    List.fold_left
      (fun acc footprint -> min acc (per_cluster ~fb_set_size ~footprint))
      max_int footprints
  in
  max 0 (min rf iterations)

let common_split ~fb_set_size ~footprints ~iterations =
  if footprints = [] then invalid_arg "Reuse_factor.common_split: no clusters";
  let rf =
    List.fold_left
      (fun acc (per_iteration, constant) ->
        min acc (per_cluster ~fb_set_size:(fb_set_size - constant)
                   ~footprint:per_iteration))
      max_int footprints
  in
  max 0 (min rf iterations)

let rounds ~iterations ~rf =
  if rf <= 0 then invalid_arg "Reuse_factor.rounds: rf must be positive";
  (iterations + rf - 1) / rf
