module Cluster = Kernel_ir.Cluster
module Application = Kernel_ir.Application

type evaluation = Cluster.clustering -> int option

let exhaustive_limit = 14

let enumerate app =
  let n = Application.n_kernels app in
  if n > exhaustive_limit then
    invalid_arg "Kernel_scheduler.enumerate: too many kernels";
  List.map (Cluster.of_partition app) (Msutil.Listx.compositions n)

let better current candidate =
  match (current, candidate) with
  | None, Some _ -> true
  | Some (_, a), Some (_, b) -> b < a
  | _, None -> false

let pick app ~eval partitions =
  List.fold_left
    (fun best sizes ->
      let clustering = Cluster.of_partition app sizes in
      let candidate =
        match eval clustering with
        | Some cycles -> Some (clustering, cycles)
        | None -> None
      in
      if better best candidate then candidate else best)
    None partitions

let greedy app ~eval =
  let n = Application.n_kernels app in
  let start = List.init n (fun _ -> 1) in
  let merges sizes =
    (* all partitions obtained by merging one adjacent pair *)
    let rec loop before = function
      | a :: b :: rest ->
        (List.rev before @ ((a + b) :: rest))
        :: loop (a :: before) (b :: rest)
      | _ -> []
    in
    loop [] sizes
  in
  let eval_sizes sizes =
    let clustering = Cluster.of_partition app sizes in
    match eval clustering with
    | Some cycles -> Some (clustering, cycles)
    | None -> None
  in
  let rec climb current_sizes current =
    let step = pick app ~eval (merges current_sizes) in
    if better current step then
      match step with
      | Some (clustering, _) ->
        climb (Cluster.partition_sizes clustering) step
      | None -> current
    else current
  in
  (* Even if the starting point is infeasible, keep merging: bigger clusters
     change footprints and context pressure in both directions, so explore a
     few merge levels before giving up. *)
  let rec first_feasible sizes depth =
    match eval_sizes sizes with
    | Some _ as ok -> Some (sizes, ok)
    | None when depth < n -> (
      let candidates = merges sizes in
      match List.find_map (fun s -> Option.map (fun r -> (s, Some r)) (eval_sizes s)) candidates with
      | Some _ as found -> found
      | None -> (
        match candidates with
        | s :: _ -> first_feasible s (depth + 1)
        | [] -> None))
    | None -> None
  in
  match first_feasible start 0 with
  | None -> None
  | Some (sizes, seed) -> climb sizes seed

let beam ?(width = 4) app ~eval =
  if width < 1 then invalid_arg "Kernel_scheduler.beam: width must be >= 1";
  let n = Application.n_kernels app in
  let complete prefix covered =
    prefix @ List.init (n - covered) (fun _ -> 1)
  in
  let score prefix covered =
    eval (Cluster.of_partition app (complete prefix covered))
  in
  (* states: (prefix sizes, kernels covered); extend by every next cluster
     size, keep the [width] best-scoring prefixes *)
  let rec search states best_complete =
    let finished, open_states =
      List.partition (fun (_, covered, _) -> covered = n) states
    in
    let best_complete =
      List.fold_left
        (fun acc (prefix, _, score) ->
          match (acc, score) with
          | None, Some s -> Some (prefix, s)
          | Some (_, b), Some s when s < b -> Some (prefix, s)
          | acc, _ -> acc)
        best_complete finished
    in
    if open_states = [] then best_complete
    else
      let extended =
        List.concat_map
          (fun (prefix, covered, _) ->
            List.filter_map
              (fun size ->
                let covered' = covered + size in
                let prefix' = prefix @ [ size ] in
                match score prefix' covered' with
                | Some s -> Some (prefix', covered', Some s)
                | None -> None)
              (List.init (n - covered) (fun i -> i + 1)))
          open_states
      in
      let surviving =
        List.sort
          (fun (_, _, a) (_, _, b) -> compare a b)
          extended
        |> Msutil.Listx.take width
      in
      search surviving best_complete
  in
  match search [ ([], 0, None) ] None with
  | None -> None
  | Some (sizes, cycles) ->
    Some (Cluster.of_partition app sizes, cycles)

let best app ~eval =
  let n = Application.n_kernels app in
  if n <= exhaustive_limit then
    pick app ~eval (Msutil.Listx.compositions n)
  else greedy app ~eval
