(** The kernel scheduler (substrate from Maestre et al., ICCD'00 [7]):
    explores the space of cluster partitions of the kernel sequence and
    keeps the one minimising estimated execution time, judging each
    candidate through a tentative data/context schedule supplied by the
    caller (the paper's framework evaluates candidates the same way).

    Partitions are compositions of the kernel count into consecutive runs;
    there are [2^(n-1)] of them, so exhaustive search is used up to
    {!exhaustive_limit} kernels and a hill-climbing merge/split heuristic
    beyond. *)

type evaluation = Kernel_ir.Cluster.clustering -> int option
(** Estimated total cycles of a candidate clustering; [None] = infeasible. *)

val exhaustive_limit : int
(** Maximum kernel count for exhaustive enumeration (14: 8192 partitions). *)

val enumerate : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering list
(** Every partition of the kernel sequence into consecutive clusters.
    @raise Invalid_argument beyond {!exhaustive_limit} kernels. *)

val best :
  Kernel_ir.Application.t ->
  eval:evaluation ->
  (Kernel_ir.Cluster.clustering * int) option
(** The best feasible clustering and its estimated cycles ([None] when no
    clustering is feasible). Exhaustive under the limit, greedy beyond. *)

val greedy :
  Kernel_ir.Application.t ->
  eval:evaluation ->
  (Kernel_ir.Cluster.clustering * int) option
(** Hill climbing from the one-kernel-per-cluster partition: repeatedly
    merges the adjacent cluster pair that improves the estimate most, until
    no merge improves. Exposed for testing against {!best}. *)

val beam :
  ?width:int ->
  Kernel_ir.Application.t ->
  eval:evaluation ->
  (Kernel_ir.Cluster.clustering * int) option
(** Beam search over partial partitions built left to right: a prefix is
    scored by completing it with singleton clusters and evaluating; the
    [width] best prefixes (default 4) survive each extension step. Explores
    more of the space than {!greedy} at a fraction of the exhaustive cost
    (O(width x n^2) evaluations). *)
