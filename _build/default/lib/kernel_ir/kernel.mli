(** A kernel — one of the macro-tasks an application is composed of.

    At the abstraction level the schedulers work on, a kernel is
    characterised by its contexts and its input and output data (paper §1).
    Data edges live in {!Data}; a kernel itself carries only its identity,
    context-word count and per-iteration execution time. *)

type id = int
(** A kernel's position in the application's execution order (0-based). *)

type t = {
  id : id;
  name : string;
  contexts : int;  (** context words needed to configure the RC array *)
  exec_cycles : int;  (** RC-array cycles for one iteration *)
}

val make : id:id -> name:string -> contexts:int -> exec_cycles:int -> t
(** @raise Invalid_argument on negative id, empty name, or non-positive
    contexts / cycles. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
