(** Name-based construction DSL for applications.

    Kernels are declared in execution order; data objects reference kernels
    by name, so workload definitions read like the paper's examples:

    {[
      let app =
        Builder.(
          create "E1" ~iterations:64
          |> kernel "k1" ~contexts:24 ~cycles:400
          |> kernel "k2" ~contexts:16 ~cycles:350
          |> input "d1" ~size:256 ~consumers:[ "k1"; "k2" ]
          |> result "r12" ~size:64 ~producer:"k1" ~consumers:[ "k2" ]
          |> final "out" ~size:128 ~producer:"k2"
          |> build)
    ]} *)

type t

val create : string -> iterations:int -> t

val kernel : string -> contexts:int -> cycles:int -> t -> t
(** Appends a kernel to the execution order. *)

val input :
  ?invariant:bool -> string -> size:int -> consumers:string list -> t -> t
(** Declares an external data object; [invariant] marks an
    iteration-invariant constant table (see {!Data.t}). *)

val result :
  ?final:bool -> string -> size:int -> producer:string -> consumers:string list -> t -> t
(** Declares a kernel result consumed by later kernels; [final] additionally
    stores it to external memory. *)

val final : string -> size:int -> producer:string -> t -> t
(** Declares a final result with no on-chip consumers. *)

val build : t -> Application.t
(** Resolves names and validates.
    @raise Invalid_argument on unknown kernel names or IR violations. *)
