type pending_data = {
  d_name : string;
  d_size : int;
  d_producer : string option;
  d_consumers : string list;
  d_final : bool;
  d_invariant : bool;
}

type t = {
  app_name : string;
  iterations : int;
  rev_kernels : Kernel.t list;
  rev_data : pending_data list;
}

let create app_name ~iterations =
  { app_name; iterations; rev_kernels = []; rev_data = [] }

let kernel name ~contexts ~cycles t =
  let id = List.length t.rev_kernels in
  let k = Kernel.make ~id ~name ~contexts ~exec_cycles:cycles in
  { t with rev_kernels = k :: t.rev_kernels }

let add_data d t = { t with rev_data = d :: t.rev_data }

let input ?(invariant = false) name ~size ~consumers t =
  add_data
    {
      d_name = name;
      d_size = size;
      d_producer = None;
      d_consumers = consumers;
      d_final = false;
      d_invariant = invariant;
    }
    t

let result ?(final = false) name ~size ~producer ~consumers t =
  add_data
    {
      d_name = name;
      d_size = size;
      d_producer = Some producer;
      d_consumers = consumers;
      d_final = final;
      d_invariant = false;
    }
    t

let final name ~size ~producer t =
  add_data
    {
      d_name = name;
      d_size = size;
      d_producer = Some producer;
      d_consumers = [];
      d_final = true;
      d_invariant = false;
    }
    t

let build t =
  let kernels = List.rev t.rev_kernels in
  let kernel_id name =
    match List.find_opt (fun (k : Kernel.t) -> k.name = name) kernels with
    | Some k -> k.id
    | None ->
      invalid_arg
        (Printf.sprintf "Builder.build: unknown kernel %S in app %S" name
           t.app_name)
  in
  let data =
    List.rev t.rev_data
    |> List.mapi (fun id p ->
           Data.make ~invariant:p.d_invariant ~id ~name:p.d_name ~size:p.d_size
             ~producer:
               (match p.d_producer with
               | None -> Data.External
               | Some k -> Data.Produced_by (kernel_id k))
             ~consumers:(List.map kernel_id p.d_consumers)
             ~final:p.d_final ())
  in
  Application.make ~name:t.app_name ~kernels ~data ~iterations:t.iterations
