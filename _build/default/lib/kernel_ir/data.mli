(** A data object: a block of words flowing through the application.

    Data objects cover the three roles in the paper's terminology:
    - *external data*: producer is [External]; loaded from external memory;
    - *intermediate results*: producer is a kernel, consumed by later
      kernels, not [final];
    - *final results*: producer is a kernel and [final] is set; they must
      reach external memory (they may additionally have consumers, in which
      case they are also reused on chip).

    Sizes are per application iteration, in frame-buffer words; they are
    known at compilation time for the targeted multimedia applications. *)

type producer = External | Produced_by of Kernel.id

type t = {
  id : int;
  name : string;
  size : int;  (** frame-buffer words per iteration *)
  producer : producer;
  consumers : Kernel.id list;  (** sorted, strictly increasing *)
  final : bool;  (** must be stored back to external memory *)
  invariant : bool;
      (** iteration-invariant constant table (quantisation matrices, filter
          coefficients): one copy serves every iteration, so it is loaded
          once per consumer cluster per round — or, when retained, once for
          the whole run — and never multiplied by the reuse factor *)
}

val make :
  ?invariant:bool ->
  id:int ->
  name:string ->
  size:int ->
  producer:producer ->
  consumers:Kernel.id list ->
  final:bool ->
  unit ->
  t
(** Normalises [consumers] (sorts, dedups) and validates:
    positive size; external data must have consumers; a produced result must
    be consumed or final; a kernel cannot consume its own result; consumers
    of a produced result must come after the producer; only external data
    can be [invariant].
    @raise Invalid_argument otherwise. *)

val instance_iter : t -> int -> int
(** The iteration index identifying this object's FB instance: the global
    iteration for ordinary data, always 0 for invariant tables. *)

val is_external : t -> bool
val is_result : t -> bool
val first_consumer : t -> Kernel.id option
val last_consumer : t -> Kernel.id option
val consumed_by : t -> Kernel.id -> bool
val producer_kernel : t -> Kernel.id option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
