(** The information extractor of the compilation framework (paper Fig. 2):
    derives from an application and a clustering everything the schedulers
    need — per-kernel data classification (the paper's [d_j], [rout_j],
    [r_jt]), per-cluster footprint inputs, and the inter-cluster sharing
    sets ([D_i..j], [R_i,j..k]). *)

(** Classification of one kernel's data traffic inside its cluster. *)
type kernel_profile = {
  kernel : Kernel.id;
  d_objects : Data.t list;
      (** cluster inputs (produced outside the cluster) whose *last*
          in-cluster consumer is this kernel — the paper's [d_j] ("input
          data for kernel kj except those shared with kernels executed
          later") *)
  rout_objects : Data.t list;
      (** results of this kernel that outlive the cluster (used by later
          clusters or final) — the paper's [rout_j] *)
  intermediate_objects : (Data.t * Kernel.id) list;
      (** results of this kernel consumed only inside the cluster, paired
          with their last in-cluster consumer [t] — the paper's [r_jt] *)
}

type cluster_profile = {
  cluster : Cluster.t;
  kernel_profiles : kernel_profile list;  (** in kernel order *)
  external_inputs : Data.t list;
      (** every object consumed in the cluster but produced outside it
          (external memory or an earlier cluster) *)
  outliving : Data.t list;
      (** every object produced in the cluster that must survive it *)
  contexts : int;  (** context words of the cluster's kernels *)
  compute_cycles : int;  (** RC-array cycles for ONE iteration *)
}

val d_words : kernel_profile -> int
val rout_words : kernel_profile -> int
val intermediate_words : kernel_profile -> int

val profile :
  Application.t -> Cluster.clustering -> Cluster.t -> cluster_profile

val profiles : Application.t -> Cluster.clustering -> cluster_profile list

val produced_in : Cluster.t -> Data.t -> bool
val consumed_in : Cluster.t -> Data.t -> bool

val last_consumer_in : Cluster.t -> Data.t -> Kernel.id option
(** Last consumer of the object among the cluster's kernels. *)

val outlives : Cluster.clustering -> Cluster.t -> Data.t -> bool
(** True when the object, produced in the cluster, is final or consumed by a
    later cluster. *)

(** {1 Inter-cluster sharing} *)

(** A retention candidate: an object used by several clusters, plus the
    clusters involved. The paper's [D_i..j] (shared data, including results
    of *earlier* clusters consumed by several later ones) and [R_i,j..k]
    (shared results). *)
type shared =
  | Shared_data of { data : Data.t; consumer_clusters : int list }
      (** external datum consumed by [consumer_clusters] (>= 2 of them) *)
  | Shared_result of {
      data : Data.t;
      producer_cluster : int;
      consumer_clusters : int list;
          (** clusters other than the producer's that consume it (>= 1) *)
    }

val shared_of_data : shared -> Data.t
val sharing : Application.t -> Cluster.clustering -> shared list
(** All sharing candidates, regardless of FB-set compatibility (the
    retention pass filters by set). *)

val clusters_involved : shared -> int list
(** Producer (if any) followed by consumer clusters, ascending. *)

val pp_shared : Format.formatter -> shared -> unit
