type kernel_profile = {
  kernel : Kernel.id;
  d_objects : Data.t list;
  rout_objects : Data.t list;
  intermediate_objects : (Data.t * Kernel.id) list;
}

type cluster_profile = {
  cluster : Cluster.t;
  kernel_profiles : kernel_profile list;
  external_inputs : Data.t list;
  outliving : Data.t list;
  contexts : int;
  compute_cycles : int;
}

let size_sum = Msutil.Listx.sum_by (fun (d : Data.t) -> d.size)

let d_words p = size_sum p.d_objects
let rout_words p = size_sum p.rout_objects

let intermediate_words p =
  Msutil.Listx.sum_by (fun ((d : Data.t), _) -> d.size) p.intermediate_objects

let produced_in (c : Cluster.t) (d : Data.t) =
  match d.producer with
  | Data.External -> false
  | Data.Produced_by k -> List.mem k c.kernels

let consumed_in (c : Cluster.t) (d : Data.t) =
  List.exists (fun k -> List.mem k c.kernels) d.consumers

let last_consumer_in (c : Cluster.t) (d : Data.t) =
  List.filter (fun k -> List.mem k c.kernels) d.consumers |> Msutil.Listx.last

let outlives clustering (c : Cluster.t) (d : Data.t) =
  produced_in c d
  && (d.final
     || List.exists
          (fun k ->
            let owner = Cluster.cluster_of_kernel clustering k in
            owner.id > c.id)
          d.consumers)

let profile app clustering (c : Cluster.t) =
  let all_data = app.Application.data in
  let external_inputs =
    List.filter (fun d -> consumed_in c d && not (produced_in c d)) all_data
  in
  let outliving = List.filter (outlives clustering c) all_data in
  let kernel_profiles =
    List.map
      (fun kid ->
        let d_objects =
          List.filter
            (fun d -> last_consumer_in c d = Some kid)
            external_inputs
        in
        let produced =
          List.filter
            (fun (d : Data.t) -> d.producer = Data.Produced_by kid)
            all_data
        in
        let rout_objects = List.filter (outlives clustering c) produced in
        let intermediate_objects =
          List.filter_map
            (fun (d : Data.t) ->
              if outlives clustering c d then None
              else
                match last_consumer_in c d with
                | Some t -> Some (d, t)
                | None -> None)
            produced
        in
        { kernel = kid; d_objects; rout_objects; intermediate_objects })
      c.kernels
  in
  let contexts =
    Msutil.Listx.sum_by
      (fun kid -> (Application.kernel app kid).Kernel.contexts)
      c.kernels
  in
  let compute_cycles =
    Msutil.Listx.sum_by
      (fun kid -> (Application.kernel app kid).Kernel.exec_cycles)
      c.kernels
  in
  {
    cluster = c;
    kernel_profiles;
    external_inputs;
    outliving;
    contexts;
    compute_cycles;
  }

let profiles app clustering = List.map (profile app clustering) clustering

type shared =
  | Shared_data of { data : Data.t; consumer_clusters : int list }
  | Shared_result of {
      data : Data.t;
      producer_cluster : int;
      consumer_clusters : int list;
    }

let shared_of_data = function
  | Shared_data { data; _ } | Shared_result { data; _ } -> data

let clusters_involved = function
  | Shared_data { consumer_clusters; _ } -> consumer_clusters
  | Shared_result { producer_cluster; consumer_clusters; _ } ->
    producer_cluster :: consumer_clusters

let sharing app clustering =
  List.filter_map
    (fun (d : Data.t) ->
      let consumer_clusters =
        List.map
          (fun k -> (Cluster.cluster_of_kernel clustering k).Cluster.id)
          d.consumers
        |> List.sort_uniq compare
      in
      match d.producer with
      | Data.External ->
        if List.length consumer_clusters >= 2 then
          Some (Shared_data { data = d; consumer_clusters })
        else None
      | Data.Produced_by k ->
        let producer_cluster = (Cluster.cluster_of_kernel clustering k).Cluster.id in
        let later =
          List.filter (fun c -> c <> producer_cluster) consumer_clusters
        in
        if later <> [] then
          Some
            (Shared_result
               { data = d; producer_cluster; consumer_clusters = later })
        else None)
    app.Application.data

let pp_shared fmt = function
  | Shared_data { data; consumer_clusters } ->
    Format.fprintf fmt "D{%s}(%dw) used by Cl%s" data.Data.name data.Data.size
      (String.concat ",Cl" (List.map string_of_int consumer_clusters))
  | Shared_result { data; producer_cluster; consumer_clusters } ->
    Format.fprintf fmt "R{%s}(%dw) Cl%d -> Cl%s" data.Data.name data.Data.size
      producer_cluster
      (String.concat ",Cl" (List.map string_of_int consumer_clusters))
