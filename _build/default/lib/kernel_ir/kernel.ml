type id = int

type t = { id : id; name : string; contexts : int; exec_cycles : int }

let make ~id ~name ~contexts ~exec_cycles =
  if id < 0 then invalid_arg "Kernel.make: negative id";
  if name = "" then invalid_arg "Kernel.make: empty name";
  if contexts <= 0 then invalid_arg "Kernel.make: contexts must be positive";
  if exec_cycles <= 0 then
    invalid_arg "Kernel.make: exec_cycles must be positive";
  { id; name; contexts; exec_cycles }

let pp fmt t =
  Format.fprintf fmt "%s#%d(ctx=%d,cyc=%d)" t.name t.id t.contexts
    t.exec_cycles

let equal (a : t) (b : t) = a = b
