(** Graphviz export of kernel scheduling graphs, including the loop-fission
    view of paper Figure 3 (each kernel annotated with its consecutive
    execution count RF). *)

val kernel_graph : Application.t -> string
(** DOT digraph of kernels and data edges. External data are boxes, kernels
    are ellipses, final results are double circles. *)

val clustered_graph : Application.t -> Cluster.clustering -> string
(** Same graph with one subgraph cluster per scheduler cluster, labelled
    with its FB set. *)

val loop_fission_graph : Application.t -> rf:int -> string
(** Paper Figure 3(b): the kernel sequence with each kernel self-looped
    [rf] times before handing over to its successor. *)
