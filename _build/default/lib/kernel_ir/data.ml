type producer = External | Produced_by of Kernel.id

type t = {
  id : int;
  name : string;
  size : int;
  producer : producer;
  consumers : Kernel.id list;
  final : bool;
  invariant : bool;
}

let make ?(invariant = false) ~id ~name ~size ~producer ~consumers ~final () =
  if name = "" then invalid_arg "Data.make: empty name";
  if size <= 0 then invalid_arg ("Data.make: size must be positive: " ^ name);
  if invariant && producer <> External then
    invalid_arg ("Data.make: only external data can be invariant: " ^ name);
  let consumers = List.sort_uniq compare consumers in
  (match producer with
  | External ->
    if consumers = [] then
      invalid_arg ("Data.make: external data without consumers: " ^ name)
  | Produced_by k ->
    if consumers = [] && not final then
      invalid_arg ("Data.make: dead result (no consumer, not final): " ^ name);
    if List.exists (fun c -> c = k) consumers then
      invalid_arg ("Data.make: kernel consumes its own result: " ^ name);
    if List.exists (fun c -> c < k) consumers then
      invalid_arg ("Data.make: consumer precedes producer: " ^ name));
  { id; name; size; producer; consumers; final; invariant }

let instance_iter t g = if t.invariant then 0 else g

let is_external t = t.producer = External
let is_result t = not (is_external t)

let first_consumer t = match t.consumers with [] -> None | c :: _ -> Some c
let last_consumer t = Msutil.Listx.last t.consumers
let consumed_by t k = List.mem k t.consumers

let producer_kernel t =
  match t.producer with External -> None | Produced_by k -> Some k

let pp fmt t =
  let producer_str =
    match t.producer with
    | External -> "ext"
    | Produced_by k -> Printf.sprintf "k%d" k
  in
  Format.fprintf fmt "%s(%dw,%s->%s%s%s)" t.name t.size producer_str
    (String.concat "," (List.map string_of_int t.consumers))
    (if t.final then ",final" else "")
    (if t.invariant then ",invariant" else "")

let equal (a : t) (b : t) = a = b
