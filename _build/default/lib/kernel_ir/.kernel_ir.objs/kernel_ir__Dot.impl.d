lib/kernel_ir/dot.ml: Application Array Buffer Cluster Data Kernel List Morphosys Printf
