lib/kernel_ir/builder.mli: Application
