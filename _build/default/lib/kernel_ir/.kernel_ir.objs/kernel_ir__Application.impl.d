lib/kernel_ir/application.ml: Array Data Format Kernel List Msutil Printf String
