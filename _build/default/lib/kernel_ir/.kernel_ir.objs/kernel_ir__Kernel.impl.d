lib/kernel_ir/kernel.ml: Format
