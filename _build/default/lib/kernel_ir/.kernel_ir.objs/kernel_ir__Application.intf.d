lib/kernel_ir/application.mli: Data Format Kernel
