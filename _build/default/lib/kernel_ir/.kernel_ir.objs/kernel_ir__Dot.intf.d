lib/kernel_ir/dot.mli: Application Cluster
