lib/kernel_ir/cluster.ml: Application Format Kernel List Morphosys Msutil Printf String
