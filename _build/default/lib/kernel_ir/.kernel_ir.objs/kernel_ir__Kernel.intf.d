lib/kernel_ir/kernel.mli: Format
