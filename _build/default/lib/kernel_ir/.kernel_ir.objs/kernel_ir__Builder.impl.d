lib/kernel_ir/builder.ml: Application Data Kernel List Printf
