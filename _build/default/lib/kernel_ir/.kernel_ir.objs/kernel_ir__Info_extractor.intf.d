lib/kernel_ir/info_extractor.mli: Application Cluster Data Format Kernel
