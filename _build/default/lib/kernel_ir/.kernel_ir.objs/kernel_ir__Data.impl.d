lib/kernel_ir/data.ml: Format Kernel List Msutil Printf String
