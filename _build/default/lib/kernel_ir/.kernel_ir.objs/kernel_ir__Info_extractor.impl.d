lib/kernel_ir/info_extractor.ml: Application Cluster Data Format Kernel List Msutil String
