lib/kernel_ir/data.mli: Format Kernel
