lib/kernel_ir/cluster.mli: Application Format Kernel Morphosys
