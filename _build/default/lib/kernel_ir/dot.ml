let buffer_graph f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph app {\n  rankdir=LR;\n";
  f buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let kernel_node (k : Kernel.t) =
  Printf.sprintf "  k%d [label=\"%s\\nctx=%d cyc=%d\"];\n" k.id k.name
    k.contexts k.exec_cycles

let data_edges buf (app : Application.t) =
  List.iter
    (fun (d : Data.t) ->
      let attrs = Printf.sprintf "label=\"%s (%dw)\"" d.name d.size in
      (match d.producer with
      | Data.External ->
        Buffer.add_string buf
          (Printf.sprintf "  ext_%s [shape=box,label=\"%s\"];\n" d.name d.name);
        List.iter
          (fun c ->
            Buffer.add_string buf
              (Printf.sprintf "  ext_%s -> k%d [%s];\n" d.name c attrs))
          d.consumers
      | Data.Produced_by p ->
        List.iter
          (fun c ->
            Buffer.add_string buf
              (Printf.sprintf "  k%d -> k%d [%s];\n" p c attrs))
          d.consumers);
      if d.final then begin
        Buffer.add_string buf
          (Printf.sprintf "  out_%s [shape=doublecircle,label=\"%s\"];\n"
             d.name d.name);
        match d.producer with
        | Data.Produced_by p ->
          Buffer.add_string buf (Printf.sprintf "  k%d -> out_%s;\n" p d.name)
        | Data.External -> ()
      end)
    app.data

let kernel_graph (app : Application.t) =
  buffer_graph (fun buf ->
      Array.iter (fun k -> Buffer.add_string buf (kernel_node k)) app.kernels;
      data_edges buf app)

let clustered_graph (app : Application.t) clustering =
  buffer_graph (fun buf ->
      List.iter
        (fun (c : Cluster.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  subgraph cluster_%d {\n    label=\"Cl%d (FB %s)\";\n"
               c.id c.id
               (Morphosys.Frame_buffer.set_to_string c.fb_set));
          List.iter
            (fun kid ->
              Buffer.add_string buf
                ("  " ^ kernel_node (Application.kernel app kid)))
            c.kernels;
          Buffer.add_string buf "  }\n")
        clustering;
      data_edges buf app)

let loop_fission_graph (app : Application.t) ~rf =
  if rf <= 0 then invalid_arg "Dot.loop_fission_graph: rf must be positive";
  buffer_graph (fun buf ->
      Array.iter
        (fun (k : Kernel.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  k%d [label=\"%s x%d\"];\n" k.id k.name rf);
          Buffer.add_string buf
            (Printf.sprintf "  k%d -> k%d [label=\"RF=%d\"];\n" k.id k.id rf))
        app.kernels;
      Array.iter
        (fun (k : Kernel.t) ->
          if k.id + 1 < Array.length app.kernels then
            Buffer.add_string buf (Printf.sprintf "  k%d -> k%d;\n" k.id (k.id + 1)))
        app.kernels)
