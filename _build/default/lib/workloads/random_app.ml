module Gen = QCheck.Gen
module B = Kernel_ir.Builder
module Cluster = Kernel_ir.Cluster

let kernel_name i = Printf.sprintf "k%d" i

(* A random non-empty sorted subset of [lo..hi]. *)
let gen_consumers ~lo ~hi =
  let open Gen in
  if lo > hi then pure []
  else
    let* picks =
      list_size (int_range 1 (min 3 (hi - lo + 1))) (int_range lo hi)
    in
    pure (List.sort_uniq compare picks)

let gen_app ?(min_kernels = 2) ?(max_kernels = 6) ?(max_data = 8)
    ?(max_size = 256) () =
  let open Gen in
  let* n = int_range min_kernels max_kernels in
  let* iterations = int_range 2 12 in
  let* kernel_specs =
    list_repeat n
      (pair (int_range 32 256) (* contexts *) (int_range 100 600)
      (* cycles *))
  in
  let base =
    List.fold_left
      (fun (b, i) (contexts, cycles) ->
        (B.kernel (kernel_name i) ~contexts ~cycles b, i + 1))
      (B.create "random" ~iterations, 0)
      kernel_specs
    |> fst
  in
  (* every kernel gets a private input so no kernel is data-free *)
  let* private_sizes = list_repeat n (int_range 8 max_size) in
  let base =
    List.fold_left
      (fun (b, i) size ->
        ( B.input (Printf.sprintf "in%d" i) ~size
            ~consumers:[ kernel_name i ] b,
          i + 1 ))
      (base, 0) private_sizes
    |> fst
  in
  (* extra random objects: shared inputs, intermediate chains, finals *)
  let* extras = int_range 0 max_data in
  let gen_extra i =
    let* size = int_range 8 max_size in
    let* kind = int_range 0 2 in
    match kind with
    | 0 ->
      (* shared external input, sometimes an iteration-invariant table *)
      let* consumers = gen_consumers ~lo:0 ~hi:(n - 1) in
      let* invariant = QCheck.Gen.bool in
      pure
        (B.input ~invariant
           (Printf.sprintf "sh%d" i)
           ~size
           ~consumers:(List.map kernel_name consumers))
    | 1 when n >= 2 ->
      (* result of some kernel, consumed later, possibly also final *)
      let* producer = int_range 0 (n - 2) in
      let* consumers = gen_consumers ~lo:(producer + 1) ~hi:(n - 1) in
      let* final = bool in
      pure
        (B.result
           (Printf.sprintf "r%d" i)
           ~final ~size
           ~producer:(kernel_name producer)
           ~consumers:(List.map kernel_name consumers))
    | _ ->
      (* pure final result *)
      let* producer = int_range 0 (n - 1) in
      pure
        (B.final (Printf.sprintf "f%d" i) ~size ~producer:(kernel_name producer))
  in
  let* extra_fns = List.init extras gen_extra |> flatten_l in
  (* every kernel must also produce something for realism: add a final per
     kernel lacking outputs, deterministic and cheap *)
  let b = List.fold_left (fun b f -> f b) base extra_fns in
  let b =
    List.fold_left
      (fun b i ->
        B.final (Printf.sprintf "out%d" i) ~size:16
          ~producer:(kernel_name i) b)
      b
      (List.init n (fun i -> i))
  in
  pure (B.build b)

let gen_clustering app =
  let open Gen in
  let n = Kernel_ir.Application.n_kernels app in
  let rec gen_sizes remaining =
    if remaining = 0 then pure []
    else
      let* first = int_range 1 remaining in
      let* rest = gen_sizes (remaining - first) in
      pure (first :: rest)
  in
  let* sizes = gen_sizes n in
  pure (Cluster.of_partition app sizes)

let gen_app_with_clustering ?min_kernels ?max_kernels ?max_data ?max_size () =
  let open Gen in
  let* app = gen_app ?min_kernels ?max_kernels ?max_data ?max_size () in
  let* clustering = gen_clustering app in
  pure (app, clustering)

let arb_app_with_clustering =
  QCheck.make
    ~print:(fun (app, clustering) ->
      Format.asprintf "%a@\n%a" Kernel_ir.Application.pp app
        Cluster.pp_clustering clustering)
    (gen_app_with_clustering ())
