(** The synthetic experiments of paper §6 (E1, E2, E3) plus the small
    applications behind Figures 3 and 5.

    The paper generated these by hand "to consider additional features that
    are not present in the analyzed real applications"; the exact kernel
    graphs were not published, so the ones here are reconstructed to match
    the surviving Table 1 columns (RF at each FB size, DT, and the relative
    ordering of the DS/CDS improvements) — see EXPERIMENTS.md.

    - E1: no intermediate results at all; all reuse is inter-cluster shared
      input data, so the Data Scheduler gains nothing at RF = 1 (its
      improvement is exactly 0%, as in the paper's first row).
    - E2: producer/consumer chains inside each cluster plus one shared
      datum and one shared result between the two set-A clusters.
    - E3: a deep 4-cluster pipeline with tiny data and heavy context
      pressure, where loop fission reaches RF = 11 at a 3K frame buffer.
    - Figure 5 app: seven clusters; cluster 3 (paper numbering) holds three
      kernels with shared data D13/D37, private inputs d1/d2, intermediates
      r13/r23, the retained shared result R3,5 and a final result Rout.
    - Figure 3 app: a three-kernel chain used to draw the loop-fission
      graph. *)

val e1 : unit -> Kernel_ir.Application.t
val e1_clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering

val e2 : unit -> Kernel_ir.Application.t
val e2_clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering

val e3 : unit -> Kernel_ir.Application.t
val e3_clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering

val figure5 : unit -> Kernel_ir.Application.t
val figure5_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering

val figure5_focus_cluster : int
(** Our id of the paper's "cluster 3" (the one Figure 5 traces). *)

val figure3 : unit -> Kernel_ir.Application.t

val retention_stress : unit -> Kernel_ir.Application.t
(** Six singleton clusters with competing retention candidates of unequal
    sizes and consumer counts — the workload behind the TF-ordering
    ablation. *)

val retention_stress_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
