(** Name-based registry of the bundled workloads, for the command-line
    driver and the examples. *)

type entry = {
  name : string;
  description : string;
  app : unit -> Kernel_ir.Application.t;
  clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering;
      (** the default (paper) kernel schedule *)
  default_fb : int;  (** frame-buffer set size the paper evaluates it at *)
}

val all : entry list
val find : string -> entry option
val names : unit -> string list
