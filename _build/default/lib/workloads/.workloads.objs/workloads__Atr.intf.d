lib/workloads/atr.mli: Kernel_ir
