lib/workloads/random_app.ml: Format Kernel_ir List Printf QCheck
