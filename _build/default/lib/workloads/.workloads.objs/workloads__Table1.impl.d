lib/workloads/table1.ml: Atr Kernel_ir List Morphosys Mpeg Synthetic
