lib/workloads/table1.mli: Kernel_ir Morphosys
