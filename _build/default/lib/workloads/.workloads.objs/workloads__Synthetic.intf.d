lib/workloads/synthetic.mli: Kernel_ir
