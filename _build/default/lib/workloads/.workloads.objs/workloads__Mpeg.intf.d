lib/workloads/mpeg.mli: Kernel_ir
