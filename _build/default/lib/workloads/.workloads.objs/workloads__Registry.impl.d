lib/workloads/registry.ml: Atr Kernel_ir List Mpeg Synthetic
