lib/workloads/synthetic.ml: Kernel_ir List Printf
