lib/workloads/mpeg.ml: Kernel_ir
