lib/workloads/random_app.mli: Kernel_ir QCheck
