lib/workloads/registry.mli: Kernel_ir
