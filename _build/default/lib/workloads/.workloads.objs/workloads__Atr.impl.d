lib/workloads/atr.ml: Kernel_ir List Printf
