module B = Kernel_ir.Builder
module Cluster = Kernel_ir.Cluster

(* SLD: four (correlate, reduce) pairs over one shared image chip. The chip
   dominates the traffic, so whether its consumer clusters share an FB set
   decides how much the Complete Data Scheduler can retain. *)
let sld () =
  let correlator b i =
    let corr = Printf.sprintf "corr%d" i in
    let red = Printf.sprintf "red%d" i in
    b
    |> B.kernel corr ~contexts:256 ~cycles:450
    |> B.kernel red ~contexts:256 ~cycles:240
    |> B.input (Printf.sprintf "tmpl%d" i) ~size:512 ~consumers:[ corr ]
    |> B.result (Printf.sprintf "partial%d" i) ~size:512 ~producer:corr
         ~consumers:[ red ]
    |> B.final (Printf.sprintf "score%d" i) ~size:384 ~producer:red
  in
  let b = B.create "ATR-SLD" ~iterations:60 in
  (* kernels must be declared in execution order: corr1 red1 corr2 red2 ... *)
  let b = List.fold_left correlator b [ 1; 2; 3; 4 ] in
  b
  |> B.input "img" ~size:5120 ~consumers:[ "corr1"; "corr2"; "corr3"; "corr4" ]
  |> B.build

let sld_clustering app = Cluster.of_partition app [ 2; 2; 2; 2 ]
let sld_star_clustering app = Cluster.of_partition app [ 1; 1; 1; 1; 1; 1; 1; 1 ]
let sld_star2_clustering app = Cluster.of_partition app [ 2; 4; 2 ]

(* FI: a six-kernel identification pipeline over candidate feature vectors,
   with two small library tables shared across non-adjacent clusters. *)
let fi () =
  B.create "ATR-FI" ~iterations:60
  |> B.kernel "feat1" ~contexts:384 ~cycles:240
  |> B.kernel "feat2" ~contexts:384 ~cycles:240
  |> B.kernel "dist1" ~contexts:384 ~cycles:260
  |> B.kernel "dist2" ~contexts:384 ~cycles:260
  |> B.kernel "rank" ~contexts:384 ~cycles:220
  |> B.kernel "select" ~contexts:384 ~cycles:220
  |> B.input "cand" ~size:120 ~consumers:[ "feat1" ]
  |> B.input "lib_a" ~size:100 ~consumers:[ "feat1"; "rank" ]
  |> B.input "lib_b" ~size:100 ~consumers:[ "feat2"; "select" ]
  |> B.input "gallery" ~size:128 ~consumers:[ "dist1" ]
  |> B.result "f1" ~size:64 ~producer:"feat1" ~consumers:[ "feat2" ]
  |> B.result "f2" ~size:96 ~producer:"feat2" ~consumers:[ "dist1" ]
  |> B.result "d1" ~size:64 ~producer:"dist1" ~consumers:[ "dist2" ]
  |> B.result "d2" ~size:96 ~producer:"dist2" ~consumers:[ "rank" ]
  |> B.result "r1" ~size:64 ~producer:"rank" ~consumers:[ "select" ]
  |> B.final "ident" ~size:60 ~producer:"select"
  |> B.build

let fi_clustering app = Cluster.of_partition app [ 2; 2; 2 ]
let fi_star2_clustering app = Cluster.of_partition app [ 1; 2; 2; 1 ]
