(** Automatic Target Recognition workloads, modelled after the MorphoSys
    ATR mapping (template correlation over image chips).

    {b ATR-SLD} — second level of detection: four template correlators,
    each a (correlate, reduce) kernel pair, all reading the same large
    image chip. The chip is the dominant retention opportunity; the three
    Table 1 variants are three kernel schedules of the same application:

    - [sld_clustering] — [{c1,r1} {c2,r2} {c3,r3} {c4,r4}] (the paper's
      ATR-SLD row);
    - [sld_star_clustering] — eight singleton clusters (the ATR-SLD-star
      row): all intermediates become inter-cluster results, so the Data
      Scheduler gains nothing (0%) while retention saves the most;
    - [sld_star2_clustering] — [{c1,r1} {c2,r2,c3,r3} {c4,r4}] (the
      ATR-SLD-star-star row): only two of the chip's consumer clusters
      share a set, so retention helps less than in the other two schedules.

    {b ATR-FI} — final identification: a lighter three-cluster pipeline of
    distance computations over candidate feature vectors with small shared
    tables; RF grows with the FB size (2 at 1K, 5 at 2K). [fi_clustering]
    is the schedule of the ATR-FI and ATR-FI-star rows and
    [fi_star2_clustering] the ATR-FI-star-star variant. *)

val sld : unit -> Kernel_ir.Application.t
val sld_clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
val sld_star_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
val sld_star2_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering

val fi : unit -> Kernel_ir.Application.t
val fi_clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
val fi_star2_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
