module B = Kernel_ir.Builder
module Cluster = Kernel_ir.Cluster

let app () =
  B.create "MPEG" ~iterations:60
  |> B.kernel "iq" ~contexts:384 ~cycles:520
  |> B.kernel "idct_row" ~contexts:384 ~cycles:560
  |> B.kernel "idct_col" ~contexts:384 ~cycles:560
  |> B.kernel "mc" ~contexts:384 ~cycles:480
  |> B.kernel "add" ~contexts:384 ~cycles:360
  |> B.kernel "filter" ~contexts:384 ~cycles:420
  (* inputs of the strip *)
  |> B.input "coeff" ~size:256 ~consumers:[ "iq" ]
  |> B.input "qmat" ~size:48 ~consumers:[ "iq" ]
  |> B.input "mb_hdr" ~size:56 ~consumers:[ "iq"; "add"; "filter" ]
  |> B.input "strip_params" ~size:48 ~consumers:[ "iq"; "filter" ]
  |> B.input "ref_win" ~size:192 ~consumers:[ "mc" ]
  |> B.input "mv" ~size:32 ~consumers:[ "mc" ]
  (* dataflow *)
  |> B.result "dequant" ~size:320 ~producer:"iq" ~consumers:[ "idct_row" ]
  |> B.result "idct_r" ~size:320 ~producer:"idct_row"
       ~consumers:[ "idct_col" ]
  |> B.result "pixels" ~size:224 ~producer:"idct_col" ~consumers:[ "add" ]
  |> B.result "pred" ~size:192 ~producer:"mc" ~consumers:[ "add" ]
  |> B.result "recon" ~size:216 ~producer:"add" ~consumers:[ "filter" ]
  |> B.final "strip_out" ~size:256 ~producer:"filter"
  |> B.build

let clustering app = Cluster.of_partition app [ 2; 2; 2 ]

(* The extension study: the quantisation matrix and strip parameters are in
   reality iteration-invariant constant tables. Marking them as such lets
   the Complete Data Scheduler keep them in the frame buffer for the whole
   run — our best explanation for the paper's MPEG CDS improvement being
   15 points above DS despite a DT of only ~0.1K words. *)
let app_invariant () =
  B.create "MPEG-inv" ~iterations:60
  |> B.kernel "iq" ~contexts:384 ~cycles:520
  |> B.kernel "idct_row" ~contexts:384 ~cycles:560
  |> B.kernel "idct_col" ~contexts:384 ~cycles:560
  |> B.kernel "mc" ~contexts:384 ~cycles:480
  |> B.kernel "add" ~contexts:384 ~cycles:360
  |> B.kernel "filter" ~contexts:384 ~cycles:420
  |> B.input "coeff" ~size:256 ~consumers:[ "iq" ]
  |> B.input ~invariant:true "qmat" ~size:48 ~consumers:[ "iq" ]
  |> B.input ~invariant:true "mb_hdr" ~size:56 ~consumers:[ "iq"; "add"; "filter" ]
  |> B.input ~invariant:true "strip_params" ~size:48 ~consumers:[ "iq"; "filter" ]
  |> B.input "ref_win" ~size:192 ~consumers:[ "mc" ]
  |> B.input "mv" ~size:32 ~consumers:[ "mc" ]
  |> B.result "dequant" ~size:320 ~producer:"iq" ~consumers:[ "idct_row" ]
  |> B.result "idct_r" ~size:320 ~producer:"idct_row" ~consumers:[ "idct_col" ]
  |> B.result "pixels" ~size:224 ~producer:"idct_col" ~consumers:[ "add" ]
  |> B.result "pred" ~size:192 ~producer:"mc" ~consumers:[ "add" ]
  |> B.result "recon" ~size:216 ~producer:"add" ~consumers:[ "filter" ]
  |> B.final "strip_out" ~size:256 ~producer:"filter"
  |> B.build
