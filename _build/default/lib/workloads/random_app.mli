(** QCheck generators for random — but always well-formed — applications and
    clusterings, used by the property-based tests (scheduler invariants,
    DS(C) formula agreement, allocator soundness). *)

val gen_app :
  ?min_kernels:int ->
  ?max_kernels:int ->
  ?max_data:int ->
  ?max_size:int ->
  unit ->
  Kernel_ir.Application.t QCheck.Gen.t
(** Random kernel chain with random external inputs, intermediate chains,
    shared data and final results. Every application validates; every
    kernel consumes at least one object and every object has a legal
    producer/consumer relation. *)

val gen_clustering :
  Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering QCheck.Gen.t
(** A random partition of the application's kernel sequence. *)

val gen_app_with_clustering :
  ?min_kernels:int ->
  ?max_kernels:int ->
  ?max_data:int ->
  ?max_size:int ->
  unit ->
  (Kernel_ir.Application.t * Kernel_ir.Cluster.clustering) QCheck.Gen.t

val arb_app_with_clustering :
  (Kernel_ir.Application.t * Kernel_ir.Cluster.clustering) QCheck.arbitrary
(** With a printer, default parameters. *)
