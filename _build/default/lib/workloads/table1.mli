(** The twelve experiments of the paper's Table 1, with the surviving paper
    numbers for comparison. Each experiment fixes an application, a kernel
    schedule (clustering) and a frame-buffer set size; starred variants
    reuse the same application with a different FB size or clustering. *)

type paper_row = {
  rf : int;  (** paper's reuse factor *)
  dt_kwords : float;  (** paper's data transfers avoided per iteration, K *)
  fb_kwords : float;  (** paper's FB set size, K *)
  ds_pct : float;  (** paper's Data Scheduler improvement over Basic, % *)
  cds_pct : float;  (** paper's Complete Data Scheduler improvement, % *)
  note : string;  (** reconstruction caveats for this row *)
}

type experiment = {
  id : string;
  app : Kernel_ir.Application.t;
  clustering : Kernel_ir.Cluster.clustering;
  config : Morphosys.Config.t;
  paper : paper_row;
}

val all : unit -> experiment list
(** The twelve rows in paper order: E1, E1*, E2, E3, MPEG, MPEG*, ATR-SLD,
    ATR-SLD*, ATR-SLD**, ATR-FI, ATR-FI*, ATR-FI**. *)

val by_id : string -> experiment
(** @raise Not_found for an unknown id. *)

val ids : unit -> string list
