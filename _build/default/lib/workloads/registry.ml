type entry = {
  name : string;
  description : string;
  app : unit -> Kernel_ir.Application.t;
  clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering;
  default_fb : int;
}

let all =
  [
    {
      name = "e1";
      description = "synthetic E1: inter-cluster shared inputs, no intermediates";
      app = Synthetic.e1;
      clustering = Synthetic.e1_clustering;
      default_fb = 1024;
    };
    {
      name = "e2";
      description = "synthetic E2: in-cluster chains plus same-set sharing";
      app = Synthetic.e2;
      clustering = Synthetic.e2_clustering;
      default_fb = 2048;
    };
    {
      name = "e3";
      description = "synthetic E3: tiny data, heavy context pressure (RF=11)";
      app = Synthetic.e3;
      clustering = Synthetic.e3_clustering;
      default_fb = 3072;
    };
    {
      name = "mpeg";
      description = "MPEG-2 decoder macroblock pipeline";
      app = Mpeg.app;
      clustering = Mpeg.clustering;
      default_fb = 2048;
    };
    {
      name = "atr-sld";
      description = "ATR second-level detection (paired schedule)";
      app = Atr.sld;
      clustering = Atr.sld_clustering;
      default_fb = 8192;
    };
    {
      name = "atr-sld-star";
      description = "ATR-SLD under the singleton kernel schedule";
      app = Atr.sld;
      clustering = Atr.sld_star_clustering;
      default_fb = 8192;
    };
    {
      name = "atr-fi";
      description = "ATR final identification pipeline";
      app = Atr.fi;
      clustering = Atr.fi_clustering;
      default_fb = 1024;
    };
    {
      name = "figure5";
      description = "the paper's Figure 5 allocation example";
      app = Synthetic.figure5;
      clustering = Synthetic.figure5_clustering;
      default_fb = 512;
    };
    {
      name = "figure3";
      description = "the paper's Figure 3 loop-fission chain";
      app = Synthetic.figure3;
      clustering = (fun app -> Kernel_ir.Cluster.singleton_per_kernel app);
      default_fb = 1024;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all
