(** MPEG-2 decoder macroblock pipeline, modelled after the MorphoSys
    mapping (Singh et al., DAC'00): inverse quantisation, row/column IDCT,
    motion compensation, reconstruction and loop filtering over batches of
    macroblocks. One application iteration processes one macroblock strip.

    The kernel graph reconstructs the paper's MPEG rows of Table 1: the
    Basic Scheduler's no-replacement footprint exceeds a 1K frame-buffer
    set (the paper: "Basic Scheduler cannot execute MPEG if memory size is
    1K"), while the Data Scheduler's replacement footprint fits; RF grows
    from 2 (FB = 2K) to 4 (FB = 3K). Retention opportunities are small
    (macroblock headers shared between the set-A clusters), matching the
    paper's DT of roughly 0.1K words per iteration. *)

val app : unit -> Kernel_ir.Application.t

val clustering : Kernel_ir.Application.t -> Kernel_ir.Cluster.clustering
(** The 3-cluster schedule used in the experiments:
    [{iq, idct_row} {idct_col, mc} {add, filter}]. *)

val app_invariant : unit -> Kernel_ir.Application.t
(** The same decoder with the quantisation matrix, macroblock headers and
    strip parameters marked iteration-invariant (the extension study:
    retaining constant tables for the whole run). *)
