module B = Kernel_ir.Builder
module Cluster = Kernel_ir.Cluster

(* E1 — four clusters of two kernels, no intermediates. Each cluster reads
   a private input and emits final results; one datum per FB set is shared
   between that set's two clusters, so only the Complete Data Scheduler has
   anything to retain. Footprint ~600w per cluster: RF=1 at a 1K set,
   RF=3 at 2K. *)
let e1 () =
  let cluster b i =
    let k1 = Printf.sprintf "e1_k%d" ((2 * i) + 1) in
    let k2 = Printf.sprintf "e1_k%d" ((2 * i) + 2) in
    b
    |> B.kernel k1 ~contexts:384 ~cycles:180
    |> B.kernel k2 ~contexts:384 ~cycles:180
    |> B.input (Printf.sprintf "e1_d%d" i) ~size:90 ~consumers:[ k1; k2 ]
    |> B.final (Printf.sprintf "e1_out%da" i) ~size:35 ~producer:k1
    |> B.final (Printf.sprintf "e1_out%db" i) ~size:35 ~producer:k2
  in
  let b = B.create "E1" ~iterations:60 in
  let b = List.fold_left cluster b [ 0; 1; 2; 3 ] in
  b
  |> B.input "e1_shA" ~size:420 ~consumers:[ "e1_k1"; "e1_k5" ]
  |> B.input "e1_shB" ~size:420 ~consumers:[ "e1_k3"; "e1_k7" ]
  |> B.build

let e1_clustering app = Cluster.of_partition app [ 2; 2; 2; 2 ]

(* E2 — three clusters of two kernels with an in-cluster producer/consumer
   chain, plus a shared datum and a shared result between the two set-A
   clusters. Footprint ~670w: RF=1 at 1K, RF=3 at 2K. *)
let e2 () =
  let cluster b i =
    let k1 = Printf.sprintf "e2_k%d" ((2 * i) + 1) in
    let k2 = Printf.sprintf "e2_k%d" ((2 * i) + 2) in
    b
    |> B.kernel k1 ~contexts:448 ~cycles:200
    |> B.kernel k2 ~contexts:448 ~cycles:200
    |> B.input (Printf.sprintf "e2_d%d" i) ~size:150 ~consumers:[ k1 ]
    |> B.result (Printf.sprintf "e2_r%d" i) ~size:120 ~producer:k1
         ~consumers:[ k2 ]
    |> B.final (Printf.sprintf "e2_out%d" i) ~size:100 ~producer:k2
  in
  let b = B.create "E2" ~iterations:60 in
  let b = List.fold_left cluster b [ 0; 1; 2 ] in
  b
  |> B.input "e2_sh" ~size:180 ~consumers:[ "e2_k1"; "e2_k5" ]
  |> B.result "e2_r02" ~size:120 ~producer:"e2_k2" ~consumers:[ "e2_k6" ]
  |> B.build

let e2_clustering app = Cluster.of_partition app [ 2; 2; 2 ]

(* E3 — four clusters of two kernels, tiny data (footprint ~270w, so a 3K
   set reaches RF=11) under heavy context pressure (3.5K context words
   against a 2K CM), which is where loop fission pays most. *)
let e3 () =
  let cluster b i =
    let k1 = Printf.sprintf "e3_k%d" ((2 * i) + 1) in
    let k2 = Printf.sprintf "e3_k%d" ((2 * i) + 2) in
    b
    |> B.kernel k1 ~contexts:448 ~cycles:120
    |> B.kernel k2 ~contexts:448 ~cycles:120
    |> B.input (Printf.sprintf "e3_d%d" i) ~size:100 ~consumers:[ k1 ]
    |> B.result (Printf.sprintf "e3_r%d" i) ~size:60 ~producer:k1
         ~consumers:[ k2 ]
    |> B.final (Printf.sprintf "e3_out%d" i) ~size:70 ~producer:k2
  in
  let b = B.create "E3" ~iterations:66 in
  let b = List.fold_left cluster b [ 0; 1; 2; 3 ] in
  b
  |> B.input "e3_shA" ~size:100 ~consumers:[ "e3_k1"; "e3_k5" ]
  |> B.input "e3_shB" ~size:100 ~consumers:[ "e3_k3"; "e3_k7" ]
  |> B.build

let e3_clustering app = Cluster.of_partition app [ 2; 2; 2; 2 ]

(* Figure 5 — seven single-kernel clusters around a three-kernel "cluster 3"
   (our cluster id 2). Shared data D13 (clusters 1 and 3, paper numbering),
   D37 (3 and 7), private inputs d1/d2, intermediates r13/r23, shared result
   R3,5 and final result Rout, all inside cluster 3. Sizes chosen so that a
   1K frame-buffer set runs it at RF=2 like the figure. *)
let figure5 () =
  B.create "Figure5" ~iterations:8
  |> B.kernel "f5_a" ~contexts:96 ~cycles:200 (* paper cluster 1 *)
  |> B.kernel "f5_b" ~contexts:96 ~cycles:200 (* paper cluster 2 *)
  |> B.kernel "k1" ~contexts:96 ~cycles:200 (* paper cluster 3 ... *)
  |> B.kernel "k2" ~contexts:96 ~cycles:200
  |> B.kernel "k3" ~contexts:96 ~cycles:200
  |> B.kernel "f5_d" ~contexts:96 ~cycles:200 (* paper cluster 4 *)
  |> B.kernel "f5_e" ~contexts:96 ~cycles:200 (* paper cluster 5 *)
  |> B.kernel "f5_f" ~contexts:96 ~cycles:200 (* paper cluster 6 *)
  |> B.kernel "f5_g" ~contexts:96 ~cycles:200 (* paper cluster 7 *)
  |> B.input "D13" ~size:48 ~consumers:[ "f5_a"; "k1" ]
  |> B.input "D37" ~size:64 ~consumers:[ "k1"; "f5_g" ]
  |> B.input "d1" ~size:40 ~consumers:[ "k1"; "k3" ]
  |> B.input "d2" ~size:40 ~consumers:[ "k2" ]
  |> B.result "r13" ~size:48 ~producer:"k1" ~consumers:[ "k3" ]
  |> B.result "r23" ~size:32 ~producer:"k2" ~consumers:[ "k3" ]
  |> B.result "R3_5" ~size:56 ~producer:"k3" ~consumers:[ "f5_e" ]
  |> B.final "Rout" ~size:48 ~producer:"k3"
  |> B.input "f5_dx" ~size:32 ~consumers:[ "f5_b" ]
  |> B.final "f5_ox" ~size:24 ~producer:"f5_b"
  |> B.final "f5_oa" ~size:24 ~producer:"f5_a"
  |> B.final "f5_od" ~size:24 ~producer:"f5_d"
  |> B.final "f5_oe" ~size:24 ~producer:"f5_e"
  |> B.final "f5_of" ~size:24 ~producer:"f5_f"
  |> B.final "f5_og" ~size:24 ~producer:"f5_g"
  |> B.build

let figure5_clustering app =
  Cluster.of_partition app [ 1; 1; 3; 1; 1; 1; 1 ]

let figure5_focus_cluster = 2

(* Figure 3 — the kernel-scheduling graph used to illustrate loop fission:
   a plain three-kernel chain. *)
let figure3 () =
  B.create "Figure3" ~iterations:12
  |> B.kernel "k1" ~contexts:128 ~cycles:300
  |> B.kernel "k2" ~contexts:128 ~cycles:300
  |> B.kernel "k3" ~contexts:128 ~cycles:300
  |> B.input "a" ~size:64 ~consumers:[ "k1" ]
  |> B.result "t1" ~size:64 ~producer:"k1" ~consumers:[ "k2" ]
  |> B.result "t2" ~size:64 ~producer:"k2" ~consumers:[ "k3" ]
  |> B.final "y" ~size:64 ~producer:"k3"
  |> B.build

(* Retention stress — ten singleton clusters; the even ones share FB set A.
   Two candidates compete for the same retention budget with different
   size/benefit profiles:
   - rs_sH: 300 words, consumed by the outermost set-A clusters (k0, k8) —
     it avoids 300 words/iteration but pins 300 words of pure overhead on
     the middle set-A clusters (2, 4, 6);
   - rs_sG: 200 words, consumed by k0, k4 and k8 — it avoids 400
     words/iteration at only 200 words of overhead.
   Under a tight frame buffer only one fits: the paper's TF order picks
   rs_sG (more traffic avoided), a largest-first or declaration order picks
   rs_sH. The ablation benchmark sweeps the FB size over the crossover. *)
let retention_stress () =
  let b = B.create "retention_stress" ~iterations:20 in
  let b =
    List.fold_left
      (fun b i ->
        let k = Printf.sprintf "rs_k%d" i in
        let private_size = if i = 2 || i = 6 then 150 else 60 in
        b
        |> B.kernel k ~contexts:128 ~cycles:150
        |> B.input (Printf.sprintf "rs_d%d" i) ~size:private_size
             ~consumers:[ k ]
        |> B.final (Printf.sprintf "rs_o%d" i) ~size:30 ~producer:k)
      b
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  b
  |> B.input "rs_sH" ~size:300 ~consumers:[ "rs_k0"; "rs_k8" ]
  |> B.input "rs_sG" ~size:200 ~consumers:[ "rs_k0"; "rs_k4"; "rs_k8" ]
  |> B.build

let retention_stress_clustering app =
  Cluster.of_partition app [ 1; 1; 1; 1; 1; 1; 1; 1; 1; 1 ]
