type paper_row = {
  rf : int;
  dt_kwords : float;
  fb_kwords : float;
  ds_pct : float;
  cds_pct : float;
  note : string;
}

type experiment = {
  id : string;
  app : Kernel_ir.Application.t;
  clustering : Kernel_ir.Cluster.clustering;
  config : Morphosys.Config.t;
  paper : paper_row;
}

let kw k = int_of_float (k *. 1024.)

let experiment id ~app ~clustering ~paper =
  let config = Morphosys.Config.m1 ~fb_set_size:(kw paper.fb_kwords) in
  { id; app; clustering = clustering app; config; paper }

let all () =
  let e1 = Synthetic.e1 () in
  let e2 = Synthetic.e2 () in
  let e3 = Synthetic.e3 () in
  let mpeg = Mpeg.app () in
  let sld = Atr.sld () in
  let fi = Atr.fi () in
  [
    experiment "E1" ~app:e1 ~clustering:Synthetic.e1_clustering
      ~paper:
        {
          rf = 1;
          dt_kwords = 0.5;
          fb_kwords = 1.;
          ds_pct = 0.;
          cds_pct = 19.;
          note = "paper DT column unreadable in source; DT here is ours";
        };
    experiment "E1*" ~app:e1 ~clustering:Synthetic.e1_clustering
      ~paper:
        {
          rf = 3;
          dt_kwords = 0.5;
          fb_kwords = 2.;
          ds_pct = 38.;
          cds_pct = 58.;
          note = "same app as E1, 2K frame buffer";
        };
    experiment "E2" ~app:e2 ~clustering:Synthetic.e2_clustering
      ~paper:
        {
          rf = 3;
          dt_kwords = 0.8;
          fb_kwords = 2.;
          ds_pct = 44.;
          cds_pct = 48.;
          note = "";
        };
    experiment "E3" ~app:e3 ~clustering:Synthetic.e3_clustering
      ~paper:
        {
          rf = 11;
          dt_kwords = 0.6;
          fb_kwords = 3.;
          ds_pct = 67.;
          cds_pct = 76.;
          note = "";
        };
    experiment "MPEG" ~app:mpeg ~clustering:Mpeg.clustering
      ~paper:
        {
          rf = 2;
          dt_kwords = 0.1;
          fb_kwords = 2.;
          ds_pct = 30.;
          cds_pct = 45.;
          note = "Basic infeasible at FB=1K; DS/CDS run under 1K";
        };
    experiment "MPEG*" ~app:mpeg ~clustering:Mpeg.clustering
      ~paper:
        {
          rf = 4;
          dt_kwords = 0.1;
          fb_kwords = 3.;
          ds_pct = 35.;
          cds_pct = 50.;
          note = "same app as MPEG, 3K frame buffer";
        };
    experiment "ATR-SLD" ~app:sld ~clustering:Atr.sld_clustering
      ~paper:
        {
          rf = 1;
          dt_kwords = 6.;
          fb_kwords = 8.;
          ds_pct = 15.;
          cds_pct = 32.;
          note = "";
        };
    experiment "ATR-SLD*" ~app:sld ~clustering:Atr.sld_star_clustering
      ~paper:
        {
          rf = 1;
          dt_kwords = 8.;
          fb_kwords = 8.;
          ds_pct = 0.;
          cds_pct = 60.;
          note = "singleton clusters: all reuse is inter-cluster";
        };
    experiment "ATR-SLD**" ~app:sld ~clustering:Atr.sld_star2_clustering
      ~paper:
        {
          rf = 1;
          dt_kwords = 6.;
          fb_kwords = 8.;
          ds_pct = 13.;
          cds_pct = 27.;
          note = "third kernel schedule of the same application";
        };
    experiment "ATR-FI" ~app:fi ~clustering:Atr.fi_clustering
      ~paper:
        {
          rf = 2;
          dt_kwords = 0.3;
          fb_kwords = 1.;
          ds_pct = 26.;
          cds_pct = 30.;
          note = "";
        };
    experiment "ATR-FI*" ~app:fi ~clustering:Atr.fi_clustering
      ~paper:
        {
          rf = 5;
          dt_kwords = 0.3;
          fb_kwords = 2.;
          ds_pct = 35.;
          cds_pct = 61.;
          note =
            "paper prints DS=61/CDS=35, contradicting its own CDS>=DS claim \
             and Figure 6; treated as swapped";
        };
    experiment "ATR-FI**" ~app:fi ~clustering:Atr.fi_star2_clustering
      ~paper:
        {
          rf = 2;
          dt_kwords = 0.3;
          fb_kwords = 1.;
          ds_pct = 33.;
          cds_pct = 37.;
          note = "second kernel schedule of the same application";
        };
  ]

let by_id id =
  match List.find_opt (fun e -> e.id = id) (all ()) with
  | Some e -> e
  | None -> raise Not_found

let ids () = List.map (fun e -> e.id) (all ())
