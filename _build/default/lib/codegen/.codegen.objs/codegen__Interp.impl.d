lib/codegen/interp.ml: Format Hashtbl Instruction List Morphosys Sched
