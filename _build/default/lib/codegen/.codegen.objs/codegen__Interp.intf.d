lib/codegen/interp.mli: Format Instruction Morphosys
