lib/codegen/emit.ml: Instruction Kernel_ir List Morphosys Printf Sched
