lib/codegen/instruction.ml: Format List Morphosys Msutil Printf
