lib/codegen/instruction.mli: Format Morphosys
