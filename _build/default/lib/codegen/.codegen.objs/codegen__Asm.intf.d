lib/codegen/asm.mli: Instruction
