lib/codegen/emit.mli: Instruction Sched
