lib/codegen/asm.ml: Buffer Format Instruction List Morphosys Printf Result String
