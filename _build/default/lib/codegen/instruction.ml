module Fb = Morphosys.Frame_buffer

type iter_ref = Abs of int | Rel of int

type t =
  | Ldctxt of { label : string; words : int }
  | Ldfb of { set : Fb.set; name : string; iter : iter_ref; words : int }
  | Stfb of { set : Fb.set; name : string; iter : iter_ref; words : int }
  | Dma_wait
  | Cbcast of { kernel : string; contexts : int }
  | Execute of { kernel : string; cycles : int; iterations : int }
  | Wrfb of { set : Fb.set; name : string; iter : iter_ref }
  | Loop of { start : int; stride : int; count : int; body : t list }
  | Comment of string
  | Halt

type program = t list

let pp_iter_ref fmt = function
  | Abs i -> Format.fprintf fmt "%d" i
  | Rel k -> Format.fprintf fmt "%+d" k

let rec pp fmt = function
  | Ldctxt { label; words } -> Format.fprintf fmt "ldctxt  %s, %d" label words
  | Ldfb { set; name; iter; words } ->
    Format.fprintf fmt "ldfb    %s, %s@%a, %d" (Fb.set_to_string set) name
      pp_iter_ref iter words
  | Stfb { set; name; iter; words } ->
    Format.fprintf fmt "stfb    %s, %s@%a, %d" (Fb.set_to_string set) name
      pp_iter_ref iter words
  | Dma_wait -> Format.fprintf fmt "dmaw"
  | Cbcast { kernel; contexts } ->
    Format.fprintf fmt "cbcast  %s, %d" kernel contexts
  | Execute { kernel; cycles; iterations } ->
    Format.fprintf fmt "exec    %s, %d, %d" kernel cycles iterations
  | Wrfb { set; name; iter } ->
    Format.fprintf fmt "wrfb    %s, %s@%a" (Fb.set_to_string set) name
      pp_iter_ref iter
  | Loop { start; stride; count; body } ->
    Format.fprintf fmt "loop    %d, %d, %d" start stride count;
    List.iter (fun insn -> Format.fprintf fmt "@\n  %a" pp insn) body;
    Format.fprintf fmt "@\nendloop"
  | Comment text -> Format.fprintf fmt "; %s" text
  | Halt -> Format.fprintf fmt "halt"

let equal (a : t) (b : t) = a = b

let resolve iter ~induction =
  match (iter, induction) with
  | Abs i, _ -> Ok i
  | Rel k, Some base -> Ok (base + k)
  | Rel k, None ->
    Error (Printf.sprintf "relative reference +%d outside any loop" k)

let rec unroll_with ~induction program =
  List.concat_map
    (fun insn ->
      match insn with
      | Loop { start; stride; count; body } ->
        List.concat
          (List.init count (fun i ->
               unroll_with ~induction:(Some (start + (i * stride))) body))
      | Ldfb ({ iter = Rel _; _ } as r) -> (
        match resolve r.iter ~induction with
        | Ok i -> [ Ldfb { r with iter = Abs i } ]
        | Error msg -> invalid_arg ("Instruction.unroll: " ^ msg))
      | Stfb ({ iter = Rel _; _ } as r) -> (
        match resolve r.iter ~induction with
        | Ok i -> [ Stfb { r with iter = Abs i } ]
        | Error msg -> invalid_arg ("Instruction.unroll: " ^ msg))
      | Wrfb ({ iter = Rel _; _ } as r) -> (
        match resolve r.iter ~induction with
        | Ok i -> [ Wrfb { r with iter = Abs i } ]
        | Error msg -> invalid_arg ("Instruction.unroll: " ^ msg))
      | other -> [ other ])
    program

let unroll program = unroll_with ~induction:None program

let rec size program =
  Msutil.Listx.sum_by
    (function
      | Comment _ -> 0
      | Loop { body; _ } -> 1 + size body
      | _ -> 1)
    program

let rec dma_words program =
  Msutil.Listx.sum_by
    (function
      | Ldctxt { words; _ } | Ldfb { words; _ } | Stfb { words; _ } -> words
      | Loop { count; body; _ } -> count * dma_words body
      | Dma_wait | Cbcast _ | Execute _ | Wrfb _ | Comment _ | Halt -> 0)
    program

let rec execute_cycles program =
  Msutil.Listx.sum_by
    (function
      | Execute { cycles; iterations; _ } -> cycles * iterations
      | Loop { count; body; _ } -> count * execute_cycles body
      | Ldctxt _ | Ldfb _ | Stfb _ | Dma_wait | Cbcast _ | Wrfb _ | Comment _
      | Halt -> 0)
    program
