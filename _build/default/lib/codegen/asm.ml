module Fb = Morphosys.Frame_buffer

let rec render_instruction buf ~indent insn =
  match insn with
  | Instruction.Loop { start; stride; count; body } ->
    Buffer.add_string buf
      (Printf.sprintf "%sloop    %d, %d, %d\n" indent start stride count);
    List.iter (render_instruction buf ~indent:(indent ^ "  ")) body;
    Buffer.add_string buf (indent ^ "endloop\n")
  | insn ->
    Buffer.add_string buf indent;
    Buffer.add_string buf (Format.asprintf "%a" Instruction.pp insn);
    Buffer.add_char buf '\n'

let to_string program =
  let buf = Buffer.create 4096 in
  List.iter (render_instruction buf ~indent:"") program;
  Buffer.contents buf

let set_of_string = function
  | "A" -> Some Fb.Set_a
  | "B" -> Some Fb.Set_b
  | _ -> None

let split_operands rest =
  String.split_on_char ',' rest |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let int_tok what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer %S for %s" s what)

(* "name@3" = absolute, "name@+2" / "name@-1" = loop-relative *)
let instance_of_string s =
  match String.rindex_opt s '@' with
  | None -> Error (Printf.sprintf "missing '@' in data reference %S" s)
  | Some i ->
    let name = String.sub s 0 i in
    let iter = String.sub s (i + 1) (String.length s - i - 1) in
    if name = "" then Error (Printf.sprintf "empty name in %S" s)
    else if iter = "" then Error (Printf.sprintf "empty iteration in %S" s)
    else
      let relative = iter.[0] = '+' || iter.[0] = '-' in
      Result.map
        (fun n ->
          (name, if relative then Instruction.Rel n else Instruction.Abs n))
        (int_tok "iteration" iter)

let ( let* ) = Result.bind

type parsed = Plain of Instruction.t | Loop_open of int * int * int | Loop_close

let parse_line line =
  let line = String.trim line in
  if line = "" then Ok None
  else if String.length line >= 1 && line.[0] = ';' then
    Ok
      (Some
         (Plain
            (Instruction.Comment
               (String.trim (String.sub line 1 (String.length line - 1))))))
  else
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
    in
    let operands = split_operands rest in
    match (mnemonic, operands) with
    | "ldctxt", [ label; words ] ->
      let* words = int_tok "words" words in
      Ok (Some (Plain (Instruction.Ldctxt { label; words })))
    | "ldfb", [ set; ref_; words ] | "stfb", [ set; ref_; words ] -> (
      match set_of_string set with
      | None -> Error (Printf.sprintf "bad FB set %S" set)
      | Some set ->
        let* name, iter = instance_of_string ref_ in
        let* words = int_tok "words" words in
        Ok
          (Some
             (Plain
                (if mnemonic = "ldfb" then
                   Instruction.Ldfb { set; name; iter; words }
                 else Instruction.Stfb { set; name; iter; words }))))
    | "wrfb", [ set; ref_ ] -> (
      match set_of_string set with
      | None -> Error (Printf.sprintf "bad FB set %S" set)
      | Some set ->
        let* name, iter = instance_of_string ref_ in
        Ok (Some (Plain (Instruction.Wrfb { set; name; iter }))))
    | "dmaw", [] -> Ok (Some (Plain Instruction.Dma_wait))
    | "cbcast", [ kernel; contexts ] ->
      let* contexts = int_tok "contexts" contexts in
      Ok (Some (Plain (Instruction.Cbcast { kernel; contexts })))
    | "exec", [ kernel; cycles; iterations ] ->
      let* cycles = int_tok "cycles" cycles in
      let* iterations = int_tok "iterations" iterations in
      Ok (Some (Plain (Instruction.Execute { kernel; cycles; iterations })))
    | "loop", [ start; stride; count ] ->
      let* start = int_tok "start" start in
      let* stride = int_tok "stride" stride in
      let* count = int_tok "count" count in
      Ok (Some (Loop_open (start, stride, count)))
    | "endloop", [] -> Ok (Some Loop_close)
    | "halt", [] -> Ok (Some (Plain Instruction.Halt))
    | _ -> Error (Printf.sprintf "unrecognised instruction %S" line)

let parse text =
  let lines = String.split_on_char '\n' text in
  (* stack of (loop header, reversed instructions collected so far) *)
  let rec loop stack acc lineno = function
    | [] -> (
      match stack with
      | [] -> Ok (List.rev acc)
      | _ -> Error (Printf.sprintf "line %d: unterminated loop" lineno))
    | line :: rest -> (
      match parse_line line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok None -> loop stack acc (lineno + 1) rest
      | Ok (Some (Plain insn)) -> (
        match stack with
        | [] -> loop stack (insn :: acc) (lineno + 1) rest
        | (header, body) :: outer ->
          loop ((header, insn :: body) :: outer) acc (lineno + 1) rest)
      | Ok (Some (Loop_open (start, stride, count))) ->
        loop (((start, stride, count), []) :: stack) acc (lineno + 1) rest
      | Ok (Some Loop_close) -> (
        match stack with
        | [] -> Error (Printf.sprintf "line %d: endloop without loop" lineno)
        | ((start, stride, count), body) :: outer ->
          let insn =
            Instruction.Loop { start; stride; count; body = List.rev body }
          in
          (match outer with
          | [] -> loop [] (insn :: acc) (lineno + 1) rest
          | (h, b) :: outer' -> loop ((h, insn :: b) :: outer') acc (lineno + 1) rest)))
  in
  loop [] [] 1 lines
