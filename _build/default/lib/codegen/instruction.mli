(** Control instructions for the TinyRISC processor that orchestrates
    MorphoSys (the "Code Generator" box of the paper's Figure 2).

    The real M1 extends a MIPS-like core with DMA and context-broadcast
    instructions; this is the subset a data/context schedule compiles to.
    DMA instructions are *asynchronous* — they enqueue work on the single
    DMA channel and return immediately; [Dma_wait] joins the channel.

    Data transfers reference object instances as a name plus an iteration
    {!iter_ref}: [Abs i] is the global iteration [i]; [Rel k] resolves
    against the enclosing {!constructor-Loop}'s induction value, which is
    how one loop body serves every round (strided DMA addressing). *)

type iter_ref =
  | Abs of int  (** a fixed global iteration *)
  | Rel of int  (** induction + k, inside a [Loop] body *)

type t =
  | Ldctxt of { label : string; words : int }
      (** start a DMA transfer of context words into the context memory *)
  | Ldfb of {
      set : Morphosys.Frame_buffer.set;
      name : string;
      iter : iter_ref;
      words : int;
    }  (** start a DMA transfer from external memory into a frame-buffer set *)
  | Stfb of {
      set : Morphosys.Frame_buffer.set;
      name : string;
      iter : iter_ref;
      words : int;
    }  (** start a DMA transfer from a frame-buffer set to external memory *)
  | Dma_wait  (** stall until every outstanding DMA transfer has finished *)
  | Cbcast of { kernel : string; contexts : int }
      (** broadcast a kernel's context words from the CM into the array
          (row-parallel; the cheap dynamic reconfiguration) *)
  | Execute of { kernel : string; cycles : int; iterations : int }
      (** run the configured kernel for [iterations] consecutive
          iterations of [cycles] RC-array cycles each *)
  | Wrfb of { set : Morphosys.Frame_buffer.set; name : string; iter : iter_ref }
      (** zero-cost marker: the preceding execution wrote this result block
          into the frame buffer (lets the interpreter check later stores) *)
  | Loop of { start : int; stride : int; count : int; body : t list }
      (** zero-overhead hardware loop: run [body] [count] times with the
          induction value [start], [start+stride], ... — [Rel k] references
          and [Execute]s inside resolve against it *)
  | Comment of string  (** listing annotation; no effect *)
  | Halt

type program = t list

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val pp_iter_ref : Format.formatter -> iter_ref -> unit

val resolve : iter_ref -> induction:int option -> (int, string) result
(** The global iteration an [iter_ref] denotes; [Rel] without an enclosing
    loop is an error. *)

val unroll : program -> program
(** Expand every [Loop], rewriting [Rel] references to [Abs] against the
    unrolled induction values; drops nothing else. The result contains no
    [Loop] or [Rel]. *)

val size : program -> int
(** Instruction count, loops counted by their static body (code size), not
    their trip count; comments excluded. *)

val dma_words : program -> int
(** Total words the program's DMA instructions move at run time (loops
    multiply by their trip count). *)

val execute_cycles : program -> int
(** Total RC-array busy cycles of the [Execute] instructions at run time
    (context broadcasts are machine-dependent and accounted by the
    interpreter). *)
