(** Assembly listing syntax for control programs — rendering and parsing
    (round-trip safe, property-tested).

    One instruction per line; loop bodies are bracketed by
    [loop start, stride, count] / [endloop] and may nest. Data references
    are [name@3] (absolute iteration) or [name@+2] / [name@-1]
    (loop-relative):
    {v
    ; step 0: dma (prime first cluster)
    ldctxt  Cl0, 768
    ldfb    A, coeff@0, 256
    dmaw
    loop    2, 2, 28
      ldfb    A, coeff@+2, 256
      cbcast  iq, 384
      exec    iq, 520, 2
      wrfb    A, dequant@+0
      stfb    B, strip_out@-1, 256
      dmaw
    endloop
    halt
    v} *)

val to_string : Instruction.program -> string

val parse : string -> (Instruction.program, string) result
(** Blank lines are skipped; [; ...] lines become [Comment]s. The error
    message carries the offending line number. *)
