type t = {
  config : Config.t;
  frame_buffer : Frame_buffer.t;
  context_memory : Context_memory.t;
}

let create config =
  {
    config;
    frame_buffer = Frame_buffer.create config;
    context_memory = Context_memory.create config;
  }

let reset t = create t.config

let pp_summary fmt t =
  Format.fprintf fmt "FB A:%d/%d B:%d/%d CM:%d/%d"
    (Frame_buffer.used_words t.frame_buffer ~set:Frame_buffer.Set_a)
    t.config.fb_set_size
    (Frame_buffer.used_words t.frame_buffer ~set:Frame_buffer.Set_b)
    t.config.fb_set_size
    (Context_memory.used_words t.context_memory)
    t.config.cm_capacity
