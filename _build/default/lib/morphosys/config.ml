type t = {
  fb_set_size : int;
  cm_capacity : int;
  data_cycles_per_word : int;
  context_cycles_per_word : int;
  dma_setup_cycles : int;
  array_rows : int;
  array_cols : int;
}

let validate t =
  if t.fb_set_size <= 0 then Error "fb_set_size must be positive"
  else if t.cm_capacity <= 0 then Error "cm_capacity must be positive"
  else if t.data_cycles_per_word <= 0 then
    Error "data_cycles_per_word must be positive"
  else if t.context_cycles_per_word <= 0 then
    Error "context_cycles_per_word must be positive"
  else if t.dma_setup_cycles < 0 then Error "dma_setup_cycles must be >= 0"
  else if t.array_rows <= 0 || t.array_cols <= 0 then
    Error "array dimensions must be positive"
  else Ok ()

let make ?(cm_capacity = 2048) ?(data_cycles_per_word = 1)
    ?(context_cycles_per_word = 1) ?(dma_setup_cycles = 0) ?(array_rows = 8)
    ?(array_cols = 8) ~fb_set_size () =
  let t =
    {
      fb_set_size;
      cm_capacity;
      data_cycles_per_word;
      context_cycles_per_word;
      dma_setup_cycles;
      array_rows;
      array_cols;
    }
  in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Config.make: " ^ msg)

let m1 ~fb_set_size = make ~fb_set_size ()

let rc_count t = t.array_rows * t.array_cols

let pp fmt t =
  Format.fprintf fmt
    "@[<h>{fb_set=%dw; cm=%dw; dma=%d/%d cyc/w +%d; array=%dx%d}@]"
    t.fb_set_size t.cm_capacity t.data_cycles_per_word
    t.context_cycles_per_word t.dma_setup_cycles t.array_rows t.array_cols

let equal (a : t) (b : t) = a = b
