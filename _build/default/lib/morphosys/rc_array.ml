let cycles_of_ops config ?(efficiency = 0.8) ~ops () =
  if ops < 0 then invalid_arg "Rc_array.cycles_of_ops: negative ops";
  if efficiency <= 0. || efficiency > 1. then
    invalid_arg "Rc_array.cycles_of_ops: efficiency must be in (0,1]";
  let cells = float_of_int (Config.rc_count config) in
  let cycles = float_of_int ops /. (cells *. efficiency) in
  max 1 (int_of_float (ceil cycles))

let broadcast_cycles (_ : Config.t) = 1

let reconfigure_cycles config ~contexts =
  if contexts < 0 then invalid_arg "Rc_array.reconfigure_cycles: negative";
  (* Context words broadcast to a whole row or column at once. *)
  let rows = config.Config.array_rows in
  (contexts + rows - 1) / rows * broadcast_cycles config
