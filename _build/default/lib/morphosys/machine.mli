(** Bundled mutable machine state: one frame buffer, one context memory and
    the configuration they were built from. The simulator owns a [Machine.t]
    and threads it through schedule replay. *)

type t = {
  config : Config.t;
  frame_buffer : Frame_buffer.t;
  context_memory : Context_memory.t;
}

val create : Config.t -> t
val reset : t -> t
(** Fresh machine with the same configuration. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line occupancy summary (FB set usage, CM usage). *)
