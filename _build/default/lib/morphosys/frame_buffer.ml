module Interval = Msutil.Interval

type set = Set_a | Set_b

let other = function Set_a -> Set_b | Set_b -> Set_a
let set_to_string = function Set_a -> "A" | Set_b -> "B"
let pp_set fmt s = Format.pp_print_string fmt (set_to_string s)

type bank = (string, Interval.t list) Hashtbl.t

type t = { size : int; bank_a : bank; bank_b : bank }

let create (config : Config.t) =
  {
    size = config.fb_set_size;
    bank_a = Hashtbl.create 64;
    bank_b = Hashtbl.create 64;
  }

let set_size t = t.size
let bank t = function Set_a -> t.bank_a | Set_b -> t.bank_b

let check_bounds t iv =
  if Interval.(iv.lo) < 0 || Interval.(iv.hi) > t.size then
    invalid_arg
      (Format.asprintf "Frame_buffer.place: interval %a out of bounds [0,%d)"
         Interval.pp iv t.size)

let check_overlap b label ivs =
  Hashtbl.iter
    (fun other_label other_ivs ->
      List.iter
        (fun iv ->
          List.iter
            (fun other_iv ->
              if Interval.overlaps iv other_iv then
                invalid_arg
                  (Format.asprintf
                     "Frame_buffer.place: %s at %a overlaps resident %s at %a"
                     label Interval.pp iv other_label Interval.pp other_iv))
            other_ivs)
        ivs)
    b

let place t ~set ~label ivs =
  let b = bank t set in
  if Hashtbl.mem b label then
    invalid_arg ("Frame_buffer.place: already resident: " ^ label);
  if ivs = [] then invalid_arg "Frame_buffer.place: empty interval list";
  List.iter (check_bounds t) ivs;
  check_overlap b label ivs;
  Hashtbl.replace b label ivs

let evict t ~set ~label =
  let b = bank t set in
  if not (Hashtbl.mem b label) then raise Not_found;
  Hashtbl.remove b label

let resident t ~set ~label = Hashtbl.mem (bank t set) label

let intervals_of t ~set ~label =
  match Hashtbl.find_opt (bank t set) label with
  | Some ivs -> ivs
  | None -> raise Not_found

let used_words t ~set =
  Hashtbl.fold
    (fun _ ivs acc -> acc + Msutil.Listx.sum_by Interval.length ivs)
    (bank t set) 0

let free_words t ~set = t.size - used_words t ~set

let residents t ~set =
  let entries =
    Hashtbl.fold (fun label ivs acc -> (label, ivs) :: acc) (bank t set) []
  in
  let first_lo (_, ivs) =
    Msutil.Listx.max_by (fun _ -> 0) ivs |> ignore;
    match ivs with [] -> 0 | iv :: _ -> Interval.(iv.lo)
  in
  List.sort (fun a b -> compare (first_lo a) (first_lo b)) entries

let clear_set t ~set = Hashtbl.reset (bank t set)

let occupancy_map t ~set =
  let map = Array.make t.size None in
  Hashtbl.iter
    (fun label ivs ->
      List.iter
        (fun iv ->
          for addr = Interval.(iv.lo) to Interval.(iv.hi) - 1 do
            map.(addr) <- Some label
          done)
        ivs)
    (bank t set);
  map
