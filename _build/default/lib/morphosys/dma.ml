type direction = Load | Store

type kind =
  | Data of { set : Frame_buffer.set; direction : direction }
  | Context

type t = { label : string; kind : kind; words : int }

let check_words words =
  if words <= 0 then invalid_arg "Dma: transfer words must be positive"

let data_load ~set ~label ~words =
  check_words words;
  { label; kind = Data { set; direction = Load }; words }

let data_store ~set ~label ~words =
  check_words words;
  { label; kind = Data { set; direction = Store }; words }

let context_load ~kernel ~words =
  check_words words;
  { label = kernel; kind = Context; words }

let cost (config : Config.t) t =
  config.dma_setup_cycles
  +
  match t.kind with
  | Data _ -> t.words * config.data_cycles_per_word
  | Context -> t.words * config.context_cycles_per_word

let total_cost config transfers =
  Msutil.Listx.sum_by (cost config) transfers

let words_of_kind pred transfers =
  Msutil.Listx.sum_by
    (fun t -> if pred t.kind then t.words else 0)
    transfers

let is_data = function Data _ -> true | Context -> false
let is_context = function Context -> true | Data _ -> false

let pp fmt t =
  match t.kind with
  | Data { set; direction = Load } ->
    Format.fprintf fmt "load %s (%dw) -> FB:%a" t.label t.words
      Frame_buffer.pp_set set
  | Data { set; direction = Store } ->
    Format.fprintf fmt "store %s (%dw) <- FB:%a" t.label t.words
      Frame_buffer.pp_set set
  | Context -> Format.fprintf fmt "ctx %s (%dw) -> CM" t.label t.words
