(** Mutable model of the MorphoSys context memory (CM).

    The CM holds the 32-bit context words configuring the RC array. Several
    kernels' context sets can be resident at once; dynamic reconfiguration
    switches among resident sets without external-memory traffic. The context
    scheduler decides *when* sets are loaded; this module tracks residency
    and enforces the capacity limit. *)

type t

val create : Config.t -> t
val capacity : t -> int

val load : t -> kernel:string -> words:int -> unit
(** Marks the context set of [kernel] ([words] context words) resident.
    Loading an already-resident kernel is a no-op (its contexts are reused).
    @raise Invalid_argument if the set does not fit the remaining space or
    [words] is not positive. *)

val evict : t -> kernel:string -> unit
(** @raise Not_found if [kernel] has no resident contexts. *)

val resident : t -> kernel:string -> bool
val used_words : t -> int
val free_words : t -> int
val residents : t -> (string * int) list
(** [(kernel, words)] pairs, sorted by kernel name. *)
