(** Timing model of the 8x8 reconfigurable-cell array.

    At the abstraction level of the schedulers a kernel is characterised by
    its per-iteration execution cycles; this module provides the estimate
    used by the information extractor when a kernel is described by raw
    operation counts instead (each of the [rc_count] cells retires one
    operation per cycle under perfect parallelisation, degraded by an
    efficiency factor). *)

val cycles_of_ops : Config.t -> ?efficiency:float -> ops:int -> unit -> int
(** [cycles_of_ops config ~ops ()] is the estimated execution cycles for a
    kernel iteration performing [ops] word-level operations.
    [efficiency] (default 0.8, in (0, 1]) models mapping overheads.
    @raise Invalid_argument if [ops < 0] or [efficiency] is out of range. *)

val broadcast_cycles : Config.t -> int
(** Cycles to broadcast one context word to a row or column of the array
    (context switching cost when changing among CM-resident contexts). *)

val reconfigure_cycles : Config.t -> contexts:int -> int
(** Cycles to switch the array onto a kernel whose contexts are already in
    the CM: context words broadcast one row (or column) per cycle. This is
    the cheap dynamic reconfiguration multi-context architectures provide —
    compare with the [context_cycles_per_word] external reload cost. *)
