(** Parameters of the MorphoSys M1 target.

    The schedulers never hard-code machine constants: everything they need
    (frame-buffer set size, context-memory capacity, DMA cost per word) comes
    from a [Config.t]. The paper's experiments vary the frame-buffer size
    between 1K and 8K words per set, so the same application can be scheduled
    against several configurations. *)

type t = {
  fb_set_size : int;  (** words available in ONE frame-buffer set *)
  cm_capacity : int;  (** context words the context memory can hold *)
  data_cycles_per_word : int;
      (** DMA cycles to move one data word between external memory and FB *)
  context_cycles_per_word : int;
      (** DMA cycles to move one context word from external memory to CM *)
  dma_setup_cycles : int;
      (** fixed per-transfer channel setup cost (descriptor fetch, external
          row activation); 0 models the paper's pure streaming assumption *)
  array_rows : int;  (** reconfigurable-cell array rows (8 on M1) *)
  array_cols : int;  (** reconfigurable-cell array columns (8 on M1) *)
}

val m1 : fb_set_size:int -> t
(** [m1 ~fb_set_size] is the first MorphoSys implementation: 8x8 RC array,
    single-cycle-per-word DMA, 2048-context-word context memory. Only the
    frame-buffer size is left free because Table 1 sweeps it. *)

val make :
  ?cm_capacity:int ->
  ?data_cycles_per_word:int ->
  ?context_cycles_per_word:int ->
  ?dma_setup_cycles:int ->
  ?array_rows:int ->
  ?array_cols:int ->
  fb_set_size:int ->
  unit ->
  t
(** General constructor with M1 defaults.
    @raise Invalid_argument on non-positive sizes or costs. *)

val rc_count : t -> int
(** Number of reconfigurable cells in the array. *)

val validate : t -> (unit, string) result
(** Checks internal consistency of the configuration. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
