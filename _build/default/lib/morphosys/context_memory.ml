type t = { capacity : int; table : (string, int) Hashtbl.t }

let create (config : Config.t) =
  { capacity = config.cm_capacity; table = Hashtbl.create 16 }

let capacity t = t.capacity

let used_words t = Hashtbl.fold (fun _ w acc -> acc + w) t.table 0
let free_words t = t.capacity - used_words t

let resident t ~kernel = Hashtbl.mem t.table kernel

let load t ~kernel ~words =
  if words <= 0 then invalid_arg "Context_memory.load: words must be positive";
  if not (resident t ~kernel) then begin
    if words > free_words t then
      invalid_arg
        (Printf.sprintf
           "Context_memory.load: %s needs %d words but only %d are free"
           kernel words (free_words t));
    Hashtbl.replace t.table kernel words
  end

let evict t ~kernel =
  if not (Hashtbl.mem t.table kernel) then raise Not_found;
  Hashtbl.remove t.table kernel

let residents t =
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
