(** DMA transfer descriptors and their cost model.

    MorphoSys has a single DMA channel bridging external memory with both the
    frame buffer and the context memory, so data and context transfers can
    never happen simultaneously — they serialise on the channel. A transfer's
    cost in cycles depends only on its word count and the per-word cost of
    its kind. *)

type direction = Load | Store
(** [Load]: external memory -> on chip. [Store]: on chip -> external. *)

type kind =
  | Data of { set : Frame_buffer.set; direction : direction }
      (** data or result words moving between external memory and an FB set *)
  | Context  (** context words moving into the context memory *)

type t = { label : string; kind : kind; words : int }
(** One DMA request. [label] identifies the object (data name, result name or
    kernel name for contexts). *)

val data_load : set:Frame_buffer.set -> label:string -> words:int -> t
val data_store : set:Frame_buffer.set -> label:string -> words:int -> t
val context_load : kernel:string -> words:int -> t

val cost : Config.t -> t -> int
(** Channel occupancy of the transfer, in cycles. *)

val total_cost : Config.t -> t list -> int
(** Serial cost of a batch: the channel processes requests one at a time. *)

val words_of_kind : (kind -> bool) -> t list -> int
(** Total words of the transfers whose kind satisfies the predicate. *)

val is_data : kind -> bool
val is_context : kind -> bool
val pp : Format.formatter -> t -> unit
