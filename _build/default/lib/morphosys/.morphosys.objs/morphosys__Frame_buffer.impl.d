lib/morphosys/frame_buffer.ml: Array Config Format Hashtbl List Msutil
