lib/morphosys/machine.ml: Config Context_memory Format Frame_buffer
