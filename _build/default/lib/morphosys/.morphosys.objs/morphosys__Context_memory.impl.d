lib/morphosys/context_memory.ml: Config Hashtbl List Printf String
