lib/morphosys/rc_array.ml: Config
