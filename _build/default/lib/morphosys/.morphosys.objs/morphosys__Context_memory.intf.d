lib/morphosys/context_memory.mli: Config
