lib/morphosys/rc_array.mli: Config
