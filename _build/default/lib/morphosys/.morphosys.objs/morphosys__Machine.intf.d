lib/morphosys/machine.mli: Config Context_memory Format Frame_buffer
