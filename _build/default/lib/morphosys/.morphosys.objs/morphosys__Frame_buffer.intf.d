lib/morphosys/frame_buffer.mli: Config Format Msutil
