lib/morphosys/dma.mli: Config Format Frame_buffer
