lib/morphosys/config.ml: Format
