lib/morphosys/dma.ml: Config Format Frame_buffer Msutil
