lib/morphosys/config.mli: Format
