(** Mutable model of the MorphoSys frame buffer.

    The frame buffer has two independent sets so that the RC array computes
    out of one set while the DMA fills/drains the other. Each set is a flat
    word-addressable memory; residency is tracked as labelled address
    intervals. The *placement* decisions are made by the allocator in
    [Fb_alloc]; this module only records and checks them, and is used by the
    simulator to enforce the residency invariant ("a kernel executes only if
    its inputs are in its set"). *)

type set = Set_a | Set_b

val other : set -> set
val set_to_string : set -> string
val pp_set : Format.formatter -> set -> unit

type t

val create : Config.t -> t
(** Fresh, empty frame buffer for the given machine. *)

val set_size : t -> int
(** Words per set, from the machine configuration. *)

val place : t -> set:set -> label:string -> Msutil.Interval.t list -> unit
(** [place t ~set ~label ivs] records the object [label] as resident in
    [set], occupying intervals [ivs] (several intervals when the allocator
    had to split the object).
    @raise Invalid_argument if [label] is already resident in [set], an
    interval is out of bounds, or it overlaps another resident object. *)

val evict : t -> set:set -> label:string -> unit
(** Removes a resident object.
    @raise Not_found if [label] is not resident in [set]. *)

val resident : t -> set:set -> label:string -> bool

val intervals_of : t -> set:set -> label:string -> Msutil.Interval.t list
(** @raise Not_found if not resident. *)

val used_words : t -> set:set -> int
val free_words : t -> set:set -> int
val residents : t -> set:set -> (string * Msutil.Interval.t list) list
(** Snapshot of the set's contents, sorted by first interval address. *)

val clear_set : t -> set:set -> unit
(** Evicts everything from one set. *)

val occupancy_map : t -> set:set -> string option array
(** [occupancy_map t ~set] is a word-by-word view of the set: cell [i] holds
    the label of the object occupying address [i], if any. Used to render
    Figure 5-style snapshots. *)
