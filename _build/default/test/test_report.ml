(* The reporting layer: Table 1 rows, CSV export, and the machine-model
   refinements it surfaces (DMA setup cost, FB-size monotonicity). *)

let rows = lazy (Report.Table_report.run_rows ())

let test_csv_shape () =
  let csv = Report.Table_report.to_csv (Lazy.force rows) in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + 12 rows" 13 (List.length lines);
  let header = List.hd lines in
  Alcotest.(check bool) "header columns" true
    (Astring_contains.contains header "cds_pct");
  List.iteri
    (fun i line ->
      if i > 0 then
        Alcotest.(check int)
          ("row " ^ string_of_int i ^ " arity")
          12
          (List.length (String.split_on_char ',' line)))
    lines

let test_rows_complete () =
  Alcotest.(check int) "12 experiments" 12 (List.length (Lazy.force rows));
  List.iter
    (fun (r : Report.Table_report.row) ->
      Alcotest.(check bool)
        (r.Report.Table_report.experiment.Workloads.Table1.id ^ " cds ok")
        true
        (Result.is_ok r.Report.Table_report.comparison.Cds.Pipeline.cds))
    (Lazy.force rows)

let test_dma_setup_cost () =
  let base = Morphosys.Config.make ~fb_set_size:64 () in
  let priced = Morphosys.Config.make ~fb_set_size:64 ~dma_setup_cycles:10 () in
  let tr = Morphosys.Dma.data_load ~set:Morphosys.Frame_buffer.Set_a
      ~label:"d@0" ~words:8 in
  Alcotest.(check int) "free setup" 8 (Morphosys.Dma.cost base tr);
  Alcotest.(check int) "priced setup" 18 (Morphosys.Dma.cost priced tr);
  match Morphosys.Config.make ~fb_set_size:64 ~dma_setup_cycles:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative setup must be rejected"

(* Growing the frame buffer can never slow the CDS down: a bigger set only
   enlarges the candidate RF range and the retention budget, and the
   scheduler keeps the fastest candidate. *)
let test_cds_monotone_in_fb () =
  List.iter
    (fun name ->
      let entry = Option.get (Workloads.Registry.find name) in
      let app = entry.Workloads.Registry.app () in
      let clustering = entry.Workloads.Registry.clustering app in
      let base_fb = entry.Workloads.Registry.default_fb in
      let cycles fb =
        let config = Morphosys.Config.m1 ~fb_set_size:fb in
        match Cds.Complete_data_scheduler.schedule config app clustering with
        | Ok r ->
          Some
            (Msim.Executor.run config r.Cds.Complete_data_scheduler.schedule)
              .Msim.Metrics.total_cycles
        | Error _ -> None
      in
      let sweep =
        List.filter_map cycles
          [ base_fb; base_fb * 2; base_fb * 3; base_fb * 4 ]
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      Alcotest.(check bool)
        (name ^ " cycles non-increasing in FB size")
        true (non_increasing sweep))
    [ "e1"; "e2"; "e3"; "mpeg"; "atr-fi" ]

(* The interpreter agrees with the executor even with a priced DMA setup. *)
let test_interp_with_setup_cost () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config =
    Morphosys.Config.make ~fb_set_size:1024 ~dma_setup_cycles:7 ()
  in
  match Cds.Complete_data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let s = r.Cds.Complete_data_scheduler.schedule in
    let m = Msim.Executor.run config s in
    let interp = Codegen.Interp.run config (Codegen.Emit.program s) in
    Alcotest.(check int) "cycles agree" m.Msim.Metrics.total_cycles
      interp.Codegen.Interp.cycles

let tests =
  ( "report",
    [
      Alcotest.test_case "csv shape" `Quick test_csv_shape;
      Alcotest.test_case "rows complete" `Quick test_rows_complete;
      Alcotest.test_case "dma setup cost" `Quick test_dma_setup_cost;
      Alcotest.test_case "cds monotone in fb" `Quick test_cds_monotone_in_fb;
      Alcotest.test_case "interp with setup cost" `Quick
        test_interp_with_setup_cost;
    ] )
