open Morphosys
module Interval = Msutil.Interval

let iv lo hi = Interval.make ~lo ~hi

(* -- Config ---------------------------------------------------------- *)

let test_config_m1 () =
  let c = Config.m1 ~fb_set_size:2048 in
  Alcotest.(check int) "fb" 2048 c.Config.fb_set_size;
  Alcotest.(check int) "cells" 64 (Config.rc_count c);
  Alcotest.(check bool) "valid" true (Config.validate c = Ok ())

let test_config_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Config.make ~fb_set_size:0 ());
  expect_invalid (fun () -> Config.make ~fb_set_size:1024 ~cm_capacity:(-1) ());
  expect_invalid (fun () ->
      Config.make ~fb_set_size:1024 ~data_cycles_per_word:0 ());
  expect_invalid (fun () -> Config.make ~fb_set_size:1024 ~array_rows:0 ())

(* -- Frame buffer ---------------------------------------------------- *)

let fb () = Frame_buffer.create (Config.m1 ~fb_set_size:64)

let test_fb_place_evict () =
  let t = fb () in
  Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"x" [ iv 0 10 ];
  Alcotest.(check bool) "resident" true
    (Frame_buffer.resident t ~set:Frame_buffer.Set_a ~label:"x");
  Alcotest.(check bool) "other set empty" false
    (Frame_buffer.resident t ~set:Frame_buffer.Set_b ~label:"x");
  Alcotest.(check int) "used" 10
    (Frame_buffer.used_words t ~set:Frame_buffer.Set_a);
  Alcotest.(check int) "free" 54
    (Frame_buffer.free_words t ~set:Frame_buffer.Set_a);
  Frame_buffer.evict t ~set:Frame_buffer.Set_a ~label:"x";
  Alcotest.(check bool) "gone" false
    (Frame_buffer.resident t ~set:Frame_buffer.Set_a ~label:"x")

let test_fb_errors () =
  let t = fb () in
  Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"x" [ iv 0 10 ];
  (match
     Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"y" [ iv 5 15 ]
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected overlap rejection");
  (match
     Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"z" [ iv 60 70 ]
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected bounds rejection");
  (match Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"x" [ iv 20 22 ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected duplicate rejection");
  (match Frame_buffer.evict t ~set:Frame_buffer.Set_b ~label:"x" with
  | exception Not_found -> ()
  | () -> Alcotest.fail "expected Not_found")

let test_fb_occupancy () =
  let t = fb () in
  Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"x" [ iv 2 4 ];
  let map = Frame_buffer.occupancy_map t ~set:Frame_buffer.Set_a in
  Alcotest.(check (option string)) "cell 2" (Some "x") map.(2);
  Alcotest.(check (option string)) "cell 4 empty" None map.(4);
  Frame_buffer.clear_set t ~set:Frame_buffer.Set_a;
  Alcotest.(check int) "cleared" 0
    (Frame_buffer.used_words t ~set:Frame_buffer.Set_a)

let test_fb_split_placement () =
  let t = fb () in
  Frame_buffer.place t ~set:Frame_buffer.Set_a ~label:"s" [ iv 0 4; iv 10 14 ];
  Alcotest.(check int) "split used" 8
    (Frame_buffer.used_words t ~set:Frame_buffer.Set_a);
  Alcotest.(check int) "intervals" 2
    (List.length (Frame_buffer.intervals_of t ~set:Frame_buffer.Set_a ~label:"s"))

(* -- Context memory --------------------------------------------------- *)

let test_cm () =
  let cm = Context_memory.create (Config.make ~fb_set_size:64 ~cm_capacity:100 ()) in
  Context_memory.load cm ~kernel:"k1" ~words:60;
  Alcotest.(check bool) "resident" true (Context_memory.resident cm ~kernel:"k1");
  Alcotest.(check int) "free" 40 (Context_memory.free_words cm);
  (* reloading is a no-op *)
  Context_memory.load cm ~kernel:"k1" ~words:60;
  Alcotest.(check int) "still 40 free" 40 (Context_memory.free_words cm);
  (match Context_memory.load cm ~kernel:"k2" ~words:50 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected capacity rejection");
  Context_memory.load cm ~kernel:"k2" ~words:40;
  Alcotest.(check int) "full" 0 (Context_memory.free_words cm);
  Context_memory.evict cm ~kernel:"k1";
  Alcotest.(check int) "evicted" 60 (Context_memory.free_words cm);
  (match Context_memory.evict cm ~kernel:"k1" with
  | exception Not_found -> ()
  | () -> Alcotest.fail "expected Not_found");
  Alcotest.(check (list (pair string int))) "residents" [ ("k2", 40) ]
    (Context_memory.residents cm)

(* -- DMA --------------------------------------------------------------- *)

let test_dma_cost () =
  let c = Config.make ~fb_set_size:64 ~data_cycles_per_word:2
      ~context_cycles_per_word:3 () in
  let load = Dma.data_load ~set:Frame_buffer.Set_a ~label:"d" ~words:10 in
  let store = Dma.data_store ~set:Frame_buffer.Set_b ~label:"r" ~words:5 in
  let ctx = Dma.context_load ~kernel:"k" ~words:4 in
  Alcotest.(check int) "load cost" 20 (Dma.cost c load);
  Alcotest.(check int) "store cost" 10 (Dma.cost c store);
  Alcotest.(check int) "ctx cost" 12 (Dma.cost c ctx);
  Alcotest.(check int) "total serial" 42 (Dma.total_cost c [ load; store; ctx ]);
  Alcotest.(check int) "data words" 15
    (Dma.words_of_kind Dma.is_data [ load; store; ctx ]);
  Alcotest.(check int) "ctx words" 4
    (Dma.words_of_kind Dma.is_context [ load; store; ctx ]);
  match Dma.data_load ~set:Frame_buffer.Set_a ~label:"bad" ~words:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected words validation"

(* -- RC array ----------------------------------------------------------- *)

let test_rc_array () =
  let c = Config.m1 ~fb_set_size:64 in
  Alcotest.(check int) "cycles of ops" 2
    (Rc_array.cycles_of_ops c ~efficiency:1.0 ~ops:128 ());
  Alcotest.(check int) "at least one cycle" 1
    (Rc_array.cycles_of_ops c ~ops:1 ());
  Alcotest.(check int) "reconfigure row-parallel" 12
    (Rc_array.reconfigure_cycles c ~contexts:96);
  (match Rc_array.cycles_of_ops c ~ops:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative ops");
  match Rc_array.cycles_of_ops c ~efficiency:1.5 ~ops:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad efficiency"

let test_machine () =
  let m = Machine.create (Config.m1 ~fb_set_size:64) in
  Frame_buffer.place m.Machine.frame_buffer ~set:Frame_buffer.Set_a ~label:"x"
    [ iv 0 8 ];
  let m2 = Machine.reset m in
  Alcotest.(check int) "reset clears FB" 0
    (Frame_buffer.used_words m2.Machine.frame_buffer ~set:Frame_buffer.Set_a);
  let summary = Format.asprintf "%a" Machine.pp_summary m in
  Alcotest.(check bool) "summary mentions FB" true
    (Astring_contains.contains summary "FB")

let tests =
  ( "morphosys",
    [
      Alcotest.test_case "config m1" `Quick test_config_m1;
      Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "fb place/evict" `Quick test_fb_place_evict;
      Alcotest.test_case "fb errors" `Quick test_fb_errors;
      Alcotest.test_case "fb occupancy" `Quick test_fb_occupancy;
      Alcotest.test_case "fb split placement" `Quick test_fb_split_placement;
      Alcotest.test_case "context memory" `Quick test_cm;
      Alcotest.test_case "dma cost model" `Quick test_dma_cost;
      Alcotest.test_case "rc array timing" `Quick test_rc_array;
      Alcotest.test_case "machine bundle" `Quick test_machine;
    ] )
