open Kernel_ir
module IE = Info_extractor

let profiles_of app clustering = IE.profiles app clustering

let test_toy_footprints () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let p0 = List.nth (profiles_of app clustering) 0 in
  (* walk cluster 0 {k0,k1}: inputs a(100)+b(50)=150; k0 adds r01(40)+r03(30)
     -> 220 peak; a dies -> 120; k1 adds f1(25) -> 145; peak is 220 *)
  Alcotest.(check int) "closed form" 220 (Sched.Ds_formula.closed_form p0);
  Alcotest.(check int) "simulation agrees" 220 (Sched.Ds_formula.by_simulation p0);
  (* basic: all inputs (150) + all produced (40+30+25 = 95) *)
  Alcotest.(check int) "basic footprint" 245 (Sched.Ds_formula.footprint_basic p0);
  let p1 = List.nth (profiles_of app clustering) 1 in
  (* cluster 1 {k2,k3}: inputs a(100)+f1(25)+r03(30)=155; k2 produces nothing;
     a,f1 die -> 30; k3 adds f3(20) -> 50; peak 155 *)
  Alcotest.(check int) "cluster 1 closed form" 155 (Sched.Ds_formula.closed_form p1);
  Alcotest.(check int) "cluster 1 simulation" 155 (Sched.Ds_formula.by_simulation p1)

let test_pinned () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let p1 = List.nth (profiles_of app clustering) 1 in
  let a = Application.data_by_name app "a" in
  (* pinning 'a' removes it from the positional terms but charges it for the
     whole window: peak becomes (f1+r03=55; k3 -> 75... max 55+?) + 100 *)
  let pinned = Sched.Ds_formula.closed_form ~pinned:[ a ] p1 in
  Alcotest.(check bool) "pinned >= plain" true
    (pinned >= Sched.Ds_formula.closed_form p1);
  Alcotest.(check int) "pinned value" 155 pinned;
  Alcotest.(check int) "simulation agrees" 155
    (Sched.Ds_formula.by_simulation ~pinned:[ a ] p1)

let prop_formula_agrees =
  QCheck.Test.make ~name:"closed form = symbolic execution" ~count:300
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      List.for_all
        (fun p ->
          Sched.Ds_formula.closed_form p = Sched.Ds_formula.by_simulation p)
        (profiles_of app clustering))

let prop_basic_dominates =
  QCheck.Test.make ~name:"no-replacement footprint >= DS(C)" ~count:300
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      List.for_all
        (fun p ->
          Sched.Ds_formula.footprint_basic p >= Sched.Ds_formula.closed_form p)
        (profiles_of app clustering))

let prop_pinning_monotone =
  QCheck.Test.make ~name:"pinning never shrinks the footprint" ~count:200
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      List.for_all
        (fun (p : IE.cluster_profile) ->
          match p.IE.external_inputs with
          | [] -> true
          | d :: _ ->
            Sched.Ds_formula.closed_form ~pinned:[ d ] p
            >= Sched.Ds_formula.closed_form p)
        (profiles_of app clustering))

let tests =
  ( "ds_formula",
    [
      Alcotest.test_case "toy footprints" `Quick test_toy_footprints;
      Alcotest.test_case "pinned accounting" `Quick test_pinned;
      QCheck_alcotest.to_alcotest prop_formula_agrees;
      QCheck_alcotest.to_alcotest prop_basic_dominates;
      QCheck_alcotest.to_alcotest prop_pinning_monotone;
    ] )
