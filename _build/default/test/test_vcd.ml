(* VCD export: structure, parse-back, and consistency with the executor's
   timeline. *)

module Vcd = Msim.Vcd

let config = Fixtures.default_config

let schedule () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  match Sched.Data_scheduler.schedule config app clustering with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let test_structure () =
  let text = Vcd.of_schedule config (schedule ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring_contains.contains text needle))
    [
      "$timescale"; "$enddefinitions"; "rc_busy"; "dma_busy"; "cluster";
      "dma_words"; "$dumpvars";
    ]

let test_parse_back () =
  let text = Vcd.of_schedule config (schedule ()) in
  match Vcd.Parse.parse text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check string) "timescale" "1 ns" parsed.Vcd.Parse.timescale;
    Alcotest.(check int) "five signals" 5
      (List.length parsed.Vcd.Parse.signals);
    Alcotest.(check bool) "signals named" true
      (List.exists (fun (_, n) -> n = "rc_busy") parsed.Vcd.Parse.signals);
    (* change times are monotone *)
    let times = List.map (fun c -> c.Vcd.Parse.time) parsed.Vcd.Parse.changes in
    let rec monotone = function
      | a :: (b :: _ as rest) -> a <= b && monotone rest
      | _ -> true
    in
    Alcotest.(check bool) "monotone times" true (monotone times)

let test_consistent_with_executor () =
  let s = schedule () in
  let metrics, timeline = Msim.Executor.run_timed config s in
  let text = Vcd.of_schedule config s in
  match Vcd.Parse.parse text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let rc_changes =
      List.filter (fun c -> c.Vcd.Parse.id = "!") parsed.Vcd.Parse.changes
    in
    (* rc_busy rises once per compute step (plus the initial dump) *)
    let rises =
      List.filter (fun c -> c.Vcd.Parse.value = "1") rc_changes
    in
    let compute_steps =
      List.length
        (List.filter
           (fun (t : Msim.Executor.timed_step) ->
             t.Msim.Executor.step.Sched.Schedule.compute <> None)
           timeline)
    in
    Alcotest.(check int) "one rise per compute step" compute_steps
      (List.length rises);
    (* the last change never exceeds the total cycle count *)
    let last_time =
      Msutil.Listx.max_by (fun c -> c.Vcd.Parse.time) parsed.Vcd.Parse.changes
    in
    Alcotest.(check bool) "within total" true
      (last_time <= metrics.Msim.Metrics.total_cycles)

let test_binary_widths () =
  let text = Vcd.of_schedule config (schedule ()) in
  match Vcd.Parse.parse text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    List.iter
      (fun (c : Vcd.Parse.change) ->
        if c.Vcd.Parse.id = "#" && c.Vcd.Parse.value <> "x" then
          Alcotest.(check int) "cluster vector width" 8
            (String.length c.Vcd.Parse.value))
      parsed.Vcd.Parse.changes

let test_parse_rejects_garbage () =
  match Vcd.Parse.parse "$var wire oops $end" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let tests =
  ( "vcd",
    [
      Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "parse back" `Quick test_parse_back;
      Alcotest.test_case "consistent with executor" `Quick
        test_consistent_with_executor;
      Alcotest.test_case "binary widths" `Quick test_binary_widths;
      Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
    ] )
