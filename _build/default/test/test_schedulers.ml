(* End-to-end tests of the three schedulers: feasibility rules, transfer
   accounting, simulation metrics and the central paper invariant
   time(CDS) <= time(DS) <= time(Basic). *)

module Schedule = Sched.Schedule
module Metrics = Msim.Metrics

let toy_setup () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  (app, clustering, Fixtures.default_config)

let run_ok name = function
  | Ok s -> s
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_basic_structure () =
  let app, clustering, config = toy_setup () in
  let s = run_ok "basic" (Sched.Basic_scheduler.schedule config app clustering) in
  Alcotest.(check int) "rf 1" 1 s.Schedule.rf;
  Alcotest.(check int) "rounds = iterations" 4 (Schedule.rounds s);
  Msim.Validate.check_exn s;
  (* loads: per iteration, cluster 0 loads a+b (150), cluster 1 loads
     a+r03+f1 (155) -> 305 * 4 iterations *)
  Alcotest.(check int) "loads" 1220 (Schedule.data_words_loaded s);
  (* stores: per iteration every produced result: r01+r03+f1 (95) from
     cluster 0, f3 (20) from cluster 1 -> 115 * 4 *)
  Alcotest.(check int) "stores" 460 (Schedule.data_words_stored s)

let test_ds_structure () =
  let app, clustering, config = toy_setup () in
  let s = run_ok "ds" (Sched.Data_scheduler.schedule config app clustering) in
  Msim.Validate.check_exn s;
  Alcotest.(check bool) "rf >= 1" true (s.Schedule.rf >= 1);
  (* DS loads are the same as Basic's; stores skip intermediates: cluster 0
     stores r03+f1 (55), cluster 1 stores f3 (20) -> 75 * 4 *)
  Alcotest.(check int) "loads" 1220 (Schedule.data_words_loaded s);
  Alcotest.(check int) "stores" 300 (Schedule.data_words_stored s)

let test_cds_structure () =
  let app, clustering, config = toy_setup () in
  let r =
    run_ok "cds" (Cds.Complete_data_scheduler.schedule config app clustering)
  in
  let s = r.Cds.Complete_data_scheduler.schedule in
  Msim.Validate.check_exn s;
  (* toy's sharing is all cross-set (clusters 0 and 1), so nothing can be
     retained without cross_set mode *)
  Alcotest.(check int) "nothing retained" 0
    (List.length r.Cds.Complete_data_scheduler.retention.Cds.Retention.retained);
  Alcotest.(check int) "dt 0" 0 r.Cds.Complete_data_scheduler.data_words_avoided_per_iteration;
  Alcotest.(check int) "same loads as ds" 1220 (Schedule.data_words_loaded s)

let test_cds_cross_set () =
  let app, clustering, config = toy_setup () in
  let r =
    run_ok "cds-xset"
      (Cds.Complete_data_scheduler.schedule ~cross_set:true config app
         clustering)
  in
  let s = r.Cds.Complete_data_scheduler.schedule in
  Alcotest.(check bool) "flag recorded" true s.Schedule.cross_set;
  Msim.Validate.check_exn s;
  Alcotest.(check bool) "something retained" true
    (r.Cds.Complete_data_scheduler.data_words_avoided_per_iteration > 0);
  (* fewer external words than the plain CDS *)
  Alcotest.(check bool) "fewer loads" true
    (Schedule.data_words_loaded s < 1220)

let test_cds_retention_same_set () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config = Fixtures.default_config in
  let r =
    run_ok "cds" (Cds.Complete_data_scheduler.schedule config app clustering)
  in
  Msim.Validate.check_exn r.Cds.Complete_data_scheduler.schedule;
  let retained =
    List.map
      (fun c -> (Cds.Sharing.data c).Kernel_ir.Data.name)
      r.Cds.Complete_data_scheduler.retention.Cds.Retention.retained
  in
  Alcotest.(check (list string)) "retains sh and rshare" [ "rshare"; "sh" ]
    (List.sort compare retained);
  (* sh: one load avoided (60); rshare: one store + one load avoided (40) *)
  Alcotest.(check int) "dt words" 100
    r.Cds.Complete_data_scheduler.data_words_avoided_per_iteration

let test_basic_infeasible_when_tight () =
  let app, clustering, _ = toy_setup () in
  (* basic needs 245 words; ds only 220 *)
  let config = Morphosys.Config.m1 ~fb_set_size:230 in
  Alcotest.(check bool) "basic rejected" true
    (Result.is_error (Sched.Basic_scheduler.schedule config app clustering));
  Alcotest.(check bool) "ds still fine" true
    (Result.is_ok
       (Sched.Data_scheduler.schedule ~alloc_efficiency:1.0 config app
          clustering))

let test_ds_infeasible_when_tighter () =
  let app, clustering, _ = toy_setup () in
  let config = Morphosys.Config.m1 ~fb_set_size:210 in
  Alcotest.(check bool) "ds rejected" true
    (Result.is_error
       (Sched.Data_scheduler.schedule ~alloc_efficiency:1.0 config app
          clustering))

let test_alloc_efficiency_validation () =
  let app, clustering, config = toy_setup () in
  match
    Sched.Data_scheduler.schedule ~alloc_efficiency:1.5 config app clustering
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected efficiency validation"

let test_overlap_metrics () =
  let app, clustering, config = toy_setup () in
  let s = run_ok "ds" (Sched.Data_scheduler.schedule config app clustering) in
  let m = Msim.Executor.run config s in
  Alcotest.(check bool) "total >= compute" true
    (m.Metrics.total_cycles >= m.Metrics.compute_cycles);
  Alcotest.(check int) "stall accounting" m.Metrics.stall_cycles
    (m.Metrics.total_cycles - m.Metrics.compute_cycles);
  Alcotest.(check int) "loads metric matches schedule"
    (Schedule.data_words_loaded s) m.Metrics.data_words_loaded;
  Alcotest.(check bool) "some overlap happened" true
    (m.Metrics.overlapped_dma_cycles > 0)

(* The headline invariant. Random well-formed apps on a machine big enough
   for everything: CDS never slower than DS, DS never slower than Basic. *)
let prop_scheduler_ordering =
  QCheck.Test.make ~name:"cycles: cds <= ds <= basic" ~count:100
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      match
        ( Sched.Basic_scheduler.schedule config app clustering,
          Sched.Data_scheduler.schedule config app clustering,
          Cds.Complete_data_scheduler.schedule config app clustering )
      with
      | Ok b, Ok d, Ok c ->
        let cycles s = (Msim.Executor.run config s).Metrics.total_cycles in
        let cb = cycles b
        and cd = cycles d
        and cc = cycles c.Cds.Complete_data_scheduler.schedule in
        cc <= cd && cd <= cb
      | _ -> false (* everything fits the big machine *))

(* All three schedulers always produce semantically valid schedules. *)
let prop_schedules_validate =
  QCheck.Test.make ~name:"schedules pass the validator" ~count:100
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      let valid = function
        | Ok s -> Msim.Validate.check s = []
        | Error _ -> false
      in
      valid (Sched.Basic_scheduler.schedule config app clustering)
      && valid (Sched.Data_scheduler.schedule config app clustering)
      && valid
           (Result.map
              (fun r -> r.Cds.Complete_data_scheduler.schedule)
              (Cds.Complete_data_scheduler.schedule config app clustering)))

(* CDS with retention disabled must coincide with DS exactly (same RF would
   require same allocator; compare at full efficiency). *)
let prop_ablated_cds_equals_ds =
  QCheck.Test.make ~name:"cds without retention = ds (full efficiency)"
    ~count:100 Workloads.Random_app.arb_app_with_clustering
    (fun (app, clustering) ->
      let config = Fixtures.big_config in
      match
        ( Sched.Data_scheduler.schedule ~alloc_efficiency:1.0 config app
            clustering,
          Cds.Complete_data_scheduler.schedule ~retention:false config app
            clustering )
      with
      | Ok d, Ok c ->
        let s = c.Cds.Complete_data_scheduler.schedule in
        Schedule.data_words_loaded d = Schedule.data_words_loaded s
        && Schedule.data_words_stored d = Schedule.data_words_stored s
        && d.Schedule.rf = s.Schedule.rf
      | _ -> false)

let tests =
  ( "schedulers",
    [
      Alcotest.test_case "basic structure" `Quick test_basic_structure;
      Alcotest.test_case "ds structure" `Quick test_ds_structure;
      Alcotest.test_case "cds structure" `Quick test_cds_structure;
      Alcotest.test_case "cds cross-set" `Quick test_cds_cross_set;
      Alcotest.test_case "cds same-set retention" `Quick
        test_cds_retention_same_set;
      Alcotest.test_case "basic infeasible when tight" `Quick
        test_basic_infeasible_when_tight;
      Alcotest.test_case "ds infeasible when tighter" `Quick
        test_ds_infeasible_when_tighter;
      Alcotest.test_case "alloc efficiency validation" `Quick
        test_alloc_efficiency_validation;
      Alcotest.test_case "overlap metrics" `Quick test_overlap_metrics;
      QCheck_alcotest.to_alcotest prop_scheduler_ordering;
      QCheck_alcotest.to_alcotest prop_schedules_validate;
      QCheck_alcotest.to_alcotest prop_ablated_cds_equals_ds;
    ] )
