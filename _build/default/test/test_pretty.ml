open Msutil

let test_kbytes () =
  Alcotest.(check string) "sub-K" "768" (Pretty.kbytes 768);
  Alcotest.(check string) "exact K" "2K" (Pretty.kbytes 2048);
  Alcotest.(check string) "fraction" "1.5K" (Pretty.kbytes 1536)

let test_pct () =
  Alcotest.(check string) "pct rounds" "45%" (Pretty.pct 45.4);
  Alcotest.(check string) "pct zero" "0%" (Pretty.pct 0.)

let test_table () =
  let out =
    Format.asprintf "%t" (fun fmt ->
        Pretty.table ~header:[ "a"; "bb" ] ~rows:[ [ "x"; "y" ] ] fmt)
  in
  Alcotest.(check bool) "contains header" true
    (Astring_contains.contains out "a");
  Alcotest.(check bool) "contains rule" true (Astring_contains.contains out "---");
  Alcotest.check_raises "arity"
    (Invalid_argument "Pretty.table: row arity mismatch") (fun () ->
      Pretty.table ~header:[ "a" ] ~rows:[ [ "x"; "y" ] ] Format.str_formatter)

let test_bar () =
  Alcotest.(check string) "full" "##########" (Pretty.bar ~width:10 10. 10.);
  Alcotest.(check string) "half" "#####" (Pretty.bar ~width:10 5. 10.);
  Alcotest.(check string) "zero max" "" (Pretty.bar ~width:10 5. 0.);
  Alcotest.(check string) "clamped" "##########" (Pretty.bar ~width:10 20. 10.)

let tests =
  ( "pretty",
    [
      Alcotest.test_case "kbytes" `Quick test_kbytes;
      Alcotest.test_case "pct" `Quick test_pct;
      Alcotest.test_case "table" `Quick test_table;
      Alcotest.test_case "bar" `Quick test_bar;
    ] )
