(* Executor timing model, validator violation detection and trace
   rendering. *)

module Schedule = Sched.Schedule
module Dma = Morphosys.Dma
module Fb = Morphosys.Frame_buffer
module Metrics = Msim.Metrics

let config = Morphosys.Config.m1 ~fb_set_size:1024

let ds_schedule () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  match Sched.Data_scheduler.schedule config app clustering with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* A tiny hand-rolled schedule (not semantically meaningful) to pin down
   the timing arithmetic. *)
let hand_schedule () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let c0 = Kernel_ir.Cluster.find clustering 0 in
  let steps =
    [
      {
        Schedule.compute = None;
        dma = [ Dma.data_load ~set:Fb.Set_a ~label:"a@0" ~words:100 ];
        note = "prime";
      };
      {
        Schedule.compute =
          Some
            {
              Schedule.cluster = c0;
              round = 0;
              iterations = 1;
              compute_cycles = 400;
            };
        dma = [ Dma.data_load ~set:Fb.Set_b ~label:"b@0" ~words:150 ];
        note = "";
      };
      {
        Schedule.compute = None;
        dma = [ Dma.data_store ~set:Fb.Set_a ~label:"a@0" ~words:50 ];
        note = "drain";
      };
    ]
  in
  {
    Schedule.scheduler = "hand";
    app;
    clustering;
    rf = 1;
    cross_set = false;
    steps;
  }

let test_executor_arithmetic () =
  let m, timeline = Msim.Executor.run_timed config (hand_schedule ()) in
  (* step durations: 100 (dma only), max(400, 150) = 400, 50 *)
  Alcotest.(check int) "total" 550 m.Metrics.total_cycles;
  Alcotest.(check int) "compute" 400 m.Metrics.compute_cycles;
  Alcotest.(check int) "dma busy" 300 m.Metrics.dma_cycles;
  Alcotest.(check int) "overlap" 150 m.Metrics.overlapped_dma_cycles;
  Alcotest.(check int) "stall" 150 m.Metrics.stall_cycles;
  Alcotest.(check int) "loads" 250 m.Metrics.data_words_loaded;
  Alcotest.(check int) "stores" 50 m.Metrics.data_words_stored;
  Alcotest.(check int) "steps" 3 m.Metrics.steps;
  let second = List.nth timeline 1 in
  Alcotest.(check int) "second step start" 100 second.Msim.Executor.start_cycle;
  Alcotest.(check int) "second step end" 500 second.Msim.Executor.end_cycle

let test_improvement () =
  let base = { (Msim.Executor.run config (hand_schedule ())) with Metrics.total_cycles = 1000 } in
  let faster = { base with Metrics.total_cycles = 600 } in
  Alcotest.(check (float 1e-6)) "40%" 40. (Metrics.improvement_over ~baseline:base faster);
  Alcotest.(check (float 1e-6)) "degenerate baseline" 0.
    (Metrics.improvement_over
       ~baseline:{ base with Metrics.total_cycles = 0 }
       faster)

let test_validator_accepts_real_schedules () =
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (Format.asprintf "%a" Msim.Validate.pp_violation)
       (Msim.Validate.check (ds_schedule ())))

let count_violations s = List.length (Msim.Validate.check s)

let test_validator_catches_missing_load () =
  let s = ds_schedule () in
  (* drop every load of datum 'a': kernels k0/k2 read it unloaded *)
  let steps =
    List.map
      (fun (step : Schedule.step) ->
        {
          step with
          Schedule.dma =
            List.filter
              (fun (tr : Dma.t) ->
                match Schedule.parse_label tr.Dma.label with
                | Some ("a", _) ->
                  (match tr.Dma.kind with
                  | Dma.Data { direction = Dma.Load; _ } -> false
                  | _ -> true)
                | _ -> true)
              step.Schedule.dma;
        })
      s.Schedule.steps
  in
  Alcotest.(check bool) "violations reported" true
    (count_violations { s with Schedule.steps } > 0)

let test_validator_catches_missing_final_store () =
  let s = ds_schedule () in
  let steps =
    List.map
      (fun (step : Schedule.step) ->
        {
          step with
          Schedule.dma =
            List.filter
              (fun (tr : Dma.t) ->
                match Schedule.parse_label tr.Dma.label with
                | Some ("f3", _) -> false
                | _ -> true)
              step.Schedule.dma;
        })
      s.Schedule.steps
  in
  let violations = Msim.Validate.check { s with Schedule.steps } in
  Alcotest.(check bool) "missing final store caught" true
    (List.exists
       (fun (v : Msim.Validate.violation) ->
         Astring_contains.contains v.Msim.Validate.message "never stored")
       violations)

let test_validator_catches_set_conflict () =
  let s = ds_schedule () in
  (* inject a transfer that touches the computing cluster's own set *)
  let steps =
    List.map
      (fun (step : Schedule.step) ->
        match step.Schedule.compute with
        | Some c ->
          let bad =
            Dma.data_load
              ~set:c.Schedule.cluster.Kernel_ir.Cluster.fb_set
              ~label:"a@0" ~words:4
          in
          { step with Schedule.dma = bad :: step.Schedule.dma }
        | None -> step)
      s.Schedule.steps
  in
  let violations = Msim.Validate.check { s with Schedule.steps } in
  Alcotest.(check bool) "conflict caught" true
    (List.exists
       (fun (v : Msim.Validate.violation) ->
         Astring_contains.contains v.Msim.Validate.message "computing set")
       violations)

let test_validator_catches_unknown_data () =
  let s = ds_schedule () in
  let steps =
    match s.Schedule.steps with
    | first :: rest ->
      {
        first with
        Schedule.dma =
          Dma.data_load ~set:Fb.Set_a ~label:"ghost@0" ~words:4
          :: first.Schedule.dma;
      }
      :: rest
    | [] -> []
  in
  let violations = Msim.Validate.check { s with Schedule.steps } in
  Alcotest.(check bool) "unknown data caught" true
    (List.exists
       (fun (v : Msim.Validate.violation) ->
         Astring_contains.contains v.Msim.Validate.message "unknown data")
       violations)

let test_validator_check_exn () =
  match Msim.Validate.check_exn (hand_schedule ()) with
  | exception Failure _ -> () (* hand schedule is not semantically valid *)
  | () -> Alcotest.fail "expected failure on the hand schedule"

let test_trace_render () =
  let s = ds_schedule () in
  let text = Msim.Trace.render config s in
  Alcotest.(check bool) "mentions scheduler" true
    (Astring_contains.contains text "ds");
  Alcotest.(check bool) "mentions cycles" true
    (Astring_contains.contains text "total=");
  let gantt = Msim.Trace.render_gantt config s in
  Alcotest.(check bool) "has RC row" true (Astring_contains.contains gantt "RC ");
  Alcotest.(check bool) "has DMA row" true (Astring_contains.contains gantt "DMA")

let tests =
  ( "sim",
    [
      Alcotest.test_case "executor arithmetic" `Quick test_executor_arithmetic;
      Alcotest.test_case "improvement" `Quick test_improvement;
      Alcotest.test_case "validator accepts real schedules" `Quick
        test_validator_accepts_real_schedules;
      Alcotest.test_case "validator: missing load" `Quick
        test_validator_catches_missing_load;
      Alcotest.test_case "validator: missing final store" `Quick
        test_validator_catches_missing_final_store;
      Alcotest.test_case "validator: set conflict" `Quick
        test_validator_catches_set_conflict;
      Alcotest.test_case "validator: unknown data" `Quick
        test_validator_catches_unknown_data;
      Alcotest.test_case "validator: check_exn" `Quick test_validator_check_exn;
      Alcotest.test_case "trace render" `Quick test_trace_render;
    ] )
