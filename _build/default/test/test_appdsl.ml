(* The textual application format: parsing, error reporting, render
   round-trip, and end-to-end scheduling of a parsed spec. *)

let sample =
  {|# a small pipeline
app demo iterations 16

kernel iq   contexts 384 cycles 520
kernel idct contexts 384 cycles 560

input  coeff   size 256 -> iq
input  hdr     size 56  -> iq idct
result dequant size 320 from iq -> idct
result half    size 64  from iq -> idct final
final  out     size 256 from idct

partition 1 1
fb 2048
cm 4096
|}

let parse_ok text =
  match Appdsl.parse text with
  | Ok spec -> spec
  | Error e -> Alcotest.fail e

let test_parse_sample () =
  let spec = parse_ok sample in
  let app = spec.Appdsl.app in
  Alcotest.(check string) "name" "demo" app.Kernel_ir.Application.name;
  Alcotest.(check int) "iterations" 16 app.Kernel_ir.Application.iterations;
  Alcotest.(check int) "kernels" 2 (Kernel_ir.Application.n_kernels app);
  Alcotest.(check int) "data objects" 5 (List.length app.Kernel_ir.Application.data);
  let half = Kernel_ir.Application.data_by_name app "half" in
  Alcotest.(check bool) "result can be final too" true half.Kernel_ir.Data.final;
  Alcotest.(check bool) "and still consumed" true
    (half.Kernel_ir.Data.consumers <> []);
  Alcotest.(check (option (list int))) "partition" (Some [ 1; 1 ])
    spec.Appdsl.partition;
  let config = Appdsl.config spec in
  Alcotest.(check int) "fb" 2048 config.Morphosys.Config.fb_set_size;
  Alcotest.(check int) "cm" 4096 config.Morphosys.Config.cm_capacity

let test_parse_errors () =
  let expect_error fragment text =
    match Appdsl.parse text with
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg fragment)
        true
        (Astring_contains.contains msg fragment)
    | Ok _ -> Alcotest.fail ("expected parse failure for: " ^ text)
  in
  expect_error "app" "kernel k contexts 1 cycles 1";
  expect_error "line 2" "app a iterations 4\nbogus directive";
  expect_error "integer" "app a iterations many";
  expect_error "consumer" "app a iterations 1\nkernel k contexts 1 cycles 1\ninput d size 4 ->";
  expect_error "duplicate" "app a iterations 1\napp b iterations 2";
  expect_error "'->'" "app a iterations 1\nkernel k contexts 1 cycles 1\ninput d size 4 k";
  (* IR-level validation surfaces too: unknown kernel name *)
  expect_error "unknown kernel"
    "app a iterations 1\nkernel k contexts 1 cycles 1\ninput d size 4 -> ghost"

let test_round_trip () =
  let spec = parse_ok sample in
  let spec2 = parse_ok (Appdsl.render spec) in
  Alcotest.(check string) "same app name" spec.Appdsl.app.Kernel_ir.Application.name
    spec2.Appdsl.app.Kernel_ir.Application.name;
  Alcotest.(check int) "same data count"
    (List.length spec.Appdsl.app.Kernel_ir.Application.data)
    (List.length spec2.Appdsl.app.Kernel_ir.Application.data);
  Alcotest.(check (option (list int))) "same partition" spec.Appdsl.partition
    spec2.Appdsl.partition;
  List.iter2
    (fun (a : Kernel_ir.Data.t) (b : Kernel_ir.Data.t) ->
      Alcotest.(check bool) "same data object" true (Kernel_ir.Data.equal a b))
    spec.Appdsl.app.Kernel_ir.Application.data
    spec2.Appdsl.app.Kernel_ir.Application.data

let test_schedule_parsed_spec () =
  let spec = parse_ok sample in
  let config = Appdsl.config spec in
  let clustering = Appdsl.clustering spec in
  let c = Cds.Pipeline.run config spec.Appdsl.app clustering in
  Alcotest.(check bool) "cds feasible" true (Result.is_ok c.Cds.Pipeline.cds);
  match Cds.Pipeline.improvement c `Cds with
  | Some pct -> Alcotest.(check bool) "non-negative improvement" true (pct >= 0.)
  | None -> Alcotest.fail "no improvement computed"

let test_defaults () =
  let spec = parse_ok "app a iterations 2\nkernel k contexts 4 cycles 5\ninput d size 4 -> k\nfinal o size 4 from k" in
  Alcotest.(check int) "default fb" 512
    (Appdsl.config ~default_fb:512 spec).Morphosys.Config.fb_set_size;
  Alcotest.(check int) "singleton clustering" 1
    (Kernel_ir.Cluster.n_clusters (Appdsl.clustering spec))

(* round-trip property over random applications: render a spec from any
   random app, reparse, compare the IR piecewise *)
let prop_render_parse_round_trip =
  QCheck.Test.make ~name:"render/parse round-trips random apps" ~count:100
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let spec =
        {
          Appdsl.app;
          partition = Some (Kernel_ir.Cluster.partition_sizes clustering);
          fb_set_size = Some 4096;
          cm_capacity = None;
        }
      in
      match Appdsl.parse (Appdsl.render spec) with
      | Error _ -> false
      | Ok spec2 ->
        let a = spec.Appdsl.app and b = spec2.Appdsl.app in
        a.Kernel_ir.Application.name = b.Kernel_ir.Application.name
        && a.Kernel_ir.Application.iterations = b.Kernel_ir.Application.iterations
        && Array.for_all2 Kernel_ir.Kernel.equal a.Kernel_ir.Application.kernels
             b.Kernel_ir.Application.kernels
        && List.for_all2 Kernel_ir.Data.equal a.Kernel_ir.Application.data
             b.Kernel_ir.Application.data
        && spec2.Appdsl.partition = spec.Appdsl.partition)

let tests =
  ( "appdsl",
    [
      Alcotest.test_case "parse sample" `Quick test_parse_sample;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "round trip" `Quick test_round_trip;
      Alcotest.test_case "schedule parsed spec" `Quick test_schedule_parsed_spec;
      Alcotest.test_case "defaults" `Quick test_defaults;
      QCheck_alcotest.to_alcotest prop_render_parse_round_trip;
    ] )
