open Msutil

let check_int = Alcotest.(check int)
let check_int_list = Alcotest.(check (list int))

let test_sum () =
  check_int "sum empty" 0 (Listx.sum []);
  check_int "sum" 10 (Listx.sum [ 1; 2; 3; 4 ]);
  check_int "sum_by" 6 (Listx.sum_by String.length [ "a"; "bb"; "ccc" ])

let test_max_by () =
  check_int "max_by empty" 0 (Listx.max_by (fun x -> x) []);
  check_int "max_by" 9 (Listx.max_by (fun x -> x * x) [ -3; 2; 1 ])

let test_take_drop () =
  check_int_list "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  check_int_list "take more than length" [ 1; 2 ] (Listx.take 5 [ 1; 2 ]);
  check_int_list "take zero" [] (Listx.take 0 [ 1 ]);
  check_int_list "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  check_int_list "drop all" [] (Listx.drop 5 [ 1; 2 ])

let test_last () =
  Alcotest.(check (option int)) "last empty" None (Listx.last []);
  Alcotest.(check (option int)) "last" (Some 3) (Listx.last [ 1; 2; 3 ])

let test_index_of () =
  Alcotest.(check (option int))
    "found" (Some 1)
    (Listx.index_of (fun x -> x = 5) [ 4; 5; 6 ]);
  Alcotest.(check (option int))
    "missing" None
    (Listx.index_of (fun x -> x = 9) [ 4; 5; 6 ])

let test_uniq () =
  check_int_list "uniq keeps first" [ 1; 2; 3 ] (Listx.uniq ( = ) [ 1; 2; 1; 3; 2 ])

let test_windows () =
  let w = Listx.windows [ 1; 2; 3 ] in
  Alcotest.(check int) "window count" 3 (List.length w);
  let before, x, after = List.nth w 1 in
  check_int_list "before" [ 1 ] before;
  check_int "element" 2 x;
  check_int_list "after" [ 3 ] after

let test_compositions () =
  check_int "compositions of 0" 1 (List.length (Listx.compositions 0));
  check_int "compositions of 4" 8 (List.length (Listx.compositions 4));
  (* each composition sums to n *)
  List.iter
    (fun c -> check_int "sums to 5" 5 (Listx.sum c))
    (Listx.compositions 5);
  (* 2^(n-1) compositions of n *)
  check_int "count 2^(n-1)" 64 (List.length (Listx.compositions 7));
  Alcotest.check_raises "negative" (Invalid_argument
    "Listx.compositions: negative argument") (fun () ->
      ignore (Listx.compositions (-1)))

let test_group_consecutive () =
  Alcotest.(check (list (list int)))
    "groups"
    [ [ 1; 1 ]; [ 2 ]; [ 1 ] ]
    (Listx.group_consecutive ( = ) [ 1; 1; 2; 1 ]);
  Alcotest.(check (list (list int))) "empty" [] (Listx.group_consecutive ( = ) [])

let test_pairs () =
  Alcotest.(check (list (pair int int)))
    "ordered pairs"
    [ (1, 2); (1, 3); (2, 3) ]
    (Listx.pairs [ 1; 2; 3 ])

let prop_take_drop =
  QCheck.Test.make ~name:"take n @ drop n = id" ~count:200
    QCheck.(pair small_nat (small_list int))
    (fun (n, l) -> Listx.take n l @ Listx.drop n l = l)

let prop_compositions_distinct =
  QCheck.Test.make ~name:"compositions are distinct" ~count:20
    QCheck.(int_range 1 8)
    (fun n ->
      let cs = Listx.compositions n in
      List.length (List.sort_uniq compare cs) = List.length cs)

let tests =
  ( "listx",
    [
      Alcotest.test_case "sum" `Quick test_sum;
      Alcotest.test_case "max_by" `Quick test_max_by;
      Alcotest.test_case "take/drop" `Quick test_take_drop;
      Alcotest.test_case "last" `Quick test_last;
      Alcotest.test_case "index_of" `Quick test_index_of;
      Alcotest.test_case "uniq" `Quick test_uniq;
      Alcotest.test_case "windows" `Quick test_windows;
      Alcotest.test_case "compositions" `Quick test_compositions;
      Alcotest.test_case "group_consecutive" `Quick test_group_consecutive;
      Alcotest.test_case "pairs" `Quick test_pairs;
      QCheck_alcotest.to_alcotest prop_take_drop;
      QCheck_alcotest.to_alcotest prop_compositions_distinct;
    ] )
