(* Tiny substring helper shared by the test modules (keeps the suite free of
   extra dependencies). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec loop i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else loop (i + 1)
    in
    loop 0
