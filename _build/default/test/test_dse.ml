(* Design-space exploration: sweep structure, CSV, best point and the
   Pareto frontier. *)

module Dse = Report.Dse

let points () =
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  Dse.sweep ~fb_list:[ 1024; 2048; 3072 ] app clustering

let test_sweep_shape () =
  let pts = points () in
  Alcotest.(check int) "3 sizes x 3 schedulers" 9 (List.length pts);
  (* MPEG at 1K: basic infeasible, ds/cds feasible (the paper's claim) *)
  let at fb scheduler =
    List.find
      (fun (p : Dse.point) ->
        p.Dse.fb_set_size = fb && p.Dse.scheduler = scheduler)
      pts
  in
  Alcotest.(check bool) "basic infeasible at 1K" false (at 1024 "basic").Dse.feasible;
  Alcotest.(check bool) "ds feasible at 1K" true (at 1024 "ds").Dse.feasible;
  Alcotest.(check bool) "cds feasible at 1K" true (at 1024 "cds").Dse.feasible;
  Alcotest.(check (option int)) "cds rf at 3K" (Some 4) (at 3072 "cds").Dse.rf

let test_best () =
  match Dse.best (points ()) with
  | None -> Alcotest.fail "no best point"
  | Some p ->
    Alcotest.(check string) "cds wins" "cds" p.Dse.scheduler;
    Alcotest.(check int) "at the largest FB" 3072 p.Dse.fb_set_size

let test_pareto () =
  let frontier = Dse.pareto (points ()) in
  Alcotest.(check bool) "non-empty" true (frontier <> []);
  (* frontier is ascending in size and strictly descending in cycles *)
  let rec check = function
    | (a : Dse.point) :: (b : Dse.point) :: rest ->
      Alcotest.(check bool) "sizes ascend" true (a.Dse.fb_set_size < b.Dse.fb_set_size);
      Alcotest.(check bool) "cycles descend" true
        (Option.get a.Dse.total_cycles > Option.get b.Dse.total_cycles);
      check (b :: rest)
    | _ -> ()
  in
  check frontier;
  (* every frontier point is feasible and undominated by the best point *)
  List.iter
    (fun (p : Dse.point) ->
      Alcotest.(check bool) "feasible" true p.Dse.feasible)
    frontier

let test_csv () =
  let csv = Dse.to_csv (points ()) in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 9 rows" 10 (List.length lines);
  Alcotest.(check bool) "infeasible rows have empty cells" true
    (List.exists (fun l -> Astring_contains.contains l "basic,false,,,,") lines)

let test_cm_and_setup_axes () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let pts =
    Dse.sweep ~cm_list:[ 100; 4096 ] ~setup_list:[ 0; 32 ]
      ~fb_list:[ 1024 ] app clustering
  in
  Alcotest.(check int) "1 x 2 x 2 x 3 points" 12 (List.length pts);
  (* a 100-word CM cannot hold a 128-context-word cluster *)
  List.iter
    (fun (p : Dse.point) ->
      if p.Dse.cm_capacity = 100 then
        Alcotest.(check bool) "tiny CM infeasible" false p.Dse.feasible)
    pts;
  (* setup cost only ever slows things down *)
  let cycles cm setup =
    (List.find
       (fun (p : Dse.point) ->
         p.Dse.cm_capacity = cm && p.Dse.dma_setup_cycles = setup
         && p.Dse.scheduler = "cds")
       pts)
      .Dse.total_cycles
  in
  match (cycles 4096 0, cycles 4096 32) with
  | Some free, Some priced ->
    Alcotest.(check bool) "setup cost slows down" true (priced > free)
  | _ -> Alcotest.fail "expected feasible points"

let tests =
  ( "dse",
    [
      Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
      Alcotest.test_case "best point" `Quick test_best;
      Alcotest.test_case "pareto frontier" `Quick test_pareto;
      Alcotest.test_case "csv" `Quick test_csv;
      Alcotest.test_case "cm and setup axes" `Quick test_cm_and_setup_axes;
    ] )
