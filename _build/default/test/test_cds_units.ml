(* Unit tests for the CDS building blocks: sharing candidates, the TF
   ranking, and the greedy retention pass. *)

open Cds
module IE = Kernel_ir.Info_extractor
module Data = Kernel_ir.Data
module Fb = Morphosys.Frame_buffer

let same_set_candidates () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  (app, clustering, Sharing.candidates app clustering)

let find_candidate name candidates =
  match
    List.find_opt
      (fun c -> (Sharing.data c).Data.name = name)
      candidates
  with
  | Some c -> c
  | None -> Alcotest.fail ("no candidate for " ^ name)

let test_candidates_same_set () =
  let _, _, cands = same_set_candidates () in
  Alcotest.(check int) "two candidates" 2 (List.length cands);
  let sh = find_candidate "sh" cands in
  Alcotest.(check int) "sh first cluster" 0 sh.Sharing.first_cluster;
  Alcotest.(check (pair int int)) "sh window" (0, 2) sh.Sharing.window;
  Alcotest.(check (list int)) "sh beneficiaries" [ 0; 2 ] sh.Sharing.beneficiaries;
  Alcotest.(check int) "sh avoided words" 60 sh.Sharing.avoided_words;
  Alcotest.(check int) "sh avoided transfers" 1 sh.Sharing.avoided_transfers;
  let r = find_candidate "rshare" cands in
  Alcotest.(check int) "r producer" 0 r.Sharing.first_cluster;
  (* non-final shared result with one consumer: N+1 = 2 transfers avoided *)
  Alcotest.(check int) "r avoided transfers" 2 r.Sharing.avoided_transfers;
  Alcotest.(check int) "r avoided words" 40 r.Sharing.avoided_words

let test_candidates_cross_set_off () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  Alcotest.(check int) "no same-set candidates in toy" 0
    (List.length (Sharing.candidates app clustering));
  Alcotest.(check int) "cross-set enables them" 3
    (List.length (Sharing.candidates ~cross_set:true app clustering))

let test_final_shared_result_counts_n () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let cands = Sharing.candidates ~cross_set:true app clustering in
  let f1 = find_candidate "f1" cands in
  (* final shared result: the store is mandatory, so only N = 1 loads
     avoided *)
  Alcotest.(check int) "final result avoided" 1 f1.Sharing.avoided_transfers;
  let r03 = find_candidate "r03" cands in
  Alcotest.(check int) "non-final result avoided" 2 r03.Sharing.avoided_transfers

let test_pins_and_skips () =
  let _, _, cands = same_set_candidates () in
  let sh = find_candidate "sh" cands in
  Alcotest.(check bool) "pins first consumer" true
    (Sharing.pins_cluster sh ~cluster_id:0);
  Alcotest.(check bool) "pins window middle" true
    (Sharing.pins_cluster sh ~cluster_id:1);
  Alcotest.(check bool) "no pin outside window" false
    (Sharing.pins_cluster sh ~cluster_id:3);
  Alcotest.(check bool) "first consumer still loads" false
    (Sharing.skips_load sh ~cluster_id:0);
  Alcotest.(check bool) "second consumer skips" true
    (Sharing.skips_load sh ~cluster_id:2);
  Alcotest.(check bool) "shared data never skips stores" false
    (Sharing.skips_store sh ~cluster_id:0);
  let r = find_candidate "rshare" cands in
  Alcotest.(check bool) "producer not pinned (rout covers it)" false
    (Sharing.pins_cluster r ~cluster_id:0);
  Alcotest.(check bool) "consumer pinned" true (Sharing.pins_cluster r ~cluster_id:2);
  Alcotest.(check bool) "producer skips store" true
    (Sharing.skips_store r ~cluster_id:0);
  Alcotest.(check bool) "consumer skips load" true
    (Sharing.skips_load r ~cluster_id:2)

let test_tf_ranking () =
  let app, _, cands = same_set_candidates () in
  let tds = Time_factor.tds app in
  Alcotest.(check int) "tds" 290 tds;
  let ranked = Time_factor.rank ~tds cands in
  Alcotest.(check (list string)) "sh (60w) outranks rshare (40w)"
    [ "sh"; "rshare" ]
    (List.map (fun c -> (Sharing.data c).Data.name) ranked);
  let tf_sh = Time_factor.tf ~tds (find_candidate "sh" cands) in
  Alcotest.(check (float 1e-9)) "tf formula" (60. /. 290.) tf_sh;
  match Time_factor.tf ~tds:0 (find_candidate "sh" cands) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tds validation"

let test_retention_accepts_when_roomy () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let d = Retention.choose Fixtures.default_config app clustering ~rf:1 in
  Alcotest.(check int) "both retained" 2 (List.length d.Retention.retained);
  Alcotest.(check int) "avoided sum" 100 d.Retention.avoided_words_per_iteration;
  Alcotest.(check int) "avoided transfers" 3
    d.Retention.avoided_transfers_per_iteration;
  let c0 = Kernel_ir.Cluster.find clustering 0 in
  let pinned0 = Retention.pinned_for ~retained:d.Retention.retained ~cluster:c0 in
  Alcotest.(check (list string)) "cluster 0 pins sh only" [ "sh" ]
    (List.map (fun (x : Data.t) -> x.Data.name) pinned0);
  let c2 = Kernel_ir.Cluster.find clustering 2 in
  let pinned2 = Retention.pinned_for ~retained:d.Retention.retained ~cluster:c2 in
  Alcotest.(check (list string)) "cluster 2 pins both" [ "rshare"; "sh" ]
    (List.sort compare (List.map (fun (x : Data.t) -> x.Data.name) pinned2))

(* An app where retention is NOT free: the shared datum dies at cluster 2's
   first kernel but the cluster's residency peak comes at the second kernel,
   so pinning the datum genuinely raises DS(C). *)
let late_peak_app () =
  let module B = Kernel_ir.Builder in
  B.create "late_peak" ~iterations:2
  |> B.kernel "k0" ~contexts:16 ~cycles:50
  |> B.kernel "k1" ~contexts:16 ~cycles:50
  |> B.kernel "k2" ~contexts:16 ~cycles:50
  |> B.kernel "k3" ~contexts:16 ~cycles:50
  |> B.kernel "k4" ~contexts:16 ~cycles:50
  |> B.kernel "k5" ~contexts:16 ~cycles:50
  |> B.input "sh" ~size:50 ~consumers:[ "k0"; "k4" ]
  |> B.input "p0" ~size:10 ~consumers:[ "k0" ]
  |> B.result "i0" ~size:20 ~producer:"k0" ~consumers:[ "k1" ]
  |> B.final "out0" ~size:10 ~producer:"k1"
  |> B.input "p1" ~size:10 ~consumers:[ "k2" ]
  |> B.result "i1" ~size:20 ~producer:"k2" ~consumers:[ "k3" ]
  |> B.final "out1" ~size:10 ~producer:"k3"
  |> B.input "p2" ~size:10 ~consumers:[ "k4" ]
  |> B.result "ib" ~size:100 ~producer:"k4" ~consumers:[ "k5" ]
  |> B.final "outbig" ~size:200 ~producer:"k5"
  |> B.build

let test_retention_rejects_when_tight () =
  let app = late_peak_app () in
  let clustering = Kernel_ir.Cluster.of_partition app [ 2; 2; 2 ] in
  (* cluster 2 peaks at 300 words (ib + outbig); a 310-word FB fits the
     base schedule at RF=1 but cannot afford pinning the 50-word shared
     datum through the peak *)
  let config = Morphosys.Config.m1 ~fb_set_size:310 in
  let d = Retention.choose config app clustering ~rf:1 in
  Alcotest.(check int) "nothing retained" 0 (List.length d.Retention.retained);
  Alcotest.(check int) "rejected with a reason" 1
    (List.length d.Retention.rejected);
  List.iter
    (fun (_, reason) ->
      Alcotest.(check bool) "reason mentions the FB" true
        (Astring_contains.contains reason "FB"))
    d.Retention.rejected;
  (* with a roomier FB the same candidate is accepted *)
  let roomy = Retention.choose Fixtures.default_config app clustering ~rf:1 in
  Alcotest.(check int) "retained when roomy" 1
    (List.length roomy.Retention.retained)

let test_retention_rf_validation () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  match Retention.choose Fixtures.default_config app clustering ~rf:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rf validation"

(* Property: the retention pass never breaks the footprint constraint — for
   every cluster, rf * DS(C, pinned) <= fb_set_size. *)
let prop_retention_sound =
  QCheck.Test.make ~name:"retention respects footprints" ~count:100
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      let footprints = Sched.Data_scheduler.footprints app clustering in
      let rf =
        Sched.Reuse_factor.common ~fb_set_size:config.fb_set_size ~footprints
          ~iterations:app.Kernel_ir.Application.iterations
      in
      QCheck.assume (rf >= 1);
      let d = Retention.choose config app clustering ~rf in
      let profiles = IE.profiles app clustering in
      List.for_all2
        (fun (p : IE.cluster_profile) _fp ->
          let pinned =
            Retention.pinned_for ~retained:d.Retention.retained
              ~cluster:p.IE.cluster
          in
          rf * Sched.Ds_formula.closed_form ~pinned p <= config.fb_set_size)
        profiles footprints)

let tests =
  ( "cds_units",
    [
      Alcotest.test_case "candidates same set" `Quick test_candidates_same_set;
      Alcotest.test_case "candidates cross set" `Quick
        test_candidates_cross_set_off;
      Alcotest.test_case "final shared result" `Quick
        test_final_shared_result_counts_n;
      Alcotest.test_case "pins and skips" `Quick test_pins_and_skips;
      Alcotest.test_case "tf ranking" `Quick test_tf_ranking;
      Alcotest.test_case "retention roomy" `Quick test_retention_accepts_when_roomy;
      Alcotest.test_case "retention tight" `Quick test_retention_rejects_when_tight;
      Alcotest.test_case "retention rf validation" `Quick
        test_retention_rf_validation;
      QCheck_alcotest.to_alcotest prop_retention_sound;
    ] )

let test_tf_ordering_beats_naive () =
  (* the retention-stress workload is built so that under a 600-word FB the
     TF order avoids more traffic than largest-first / declaration order *)
  let app = Workloads.Synthetic.retention_stress () in
  let clustering = Workloads.Synthetic.retention_stress_clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:600 in
  let avoided ranking =
    (Retention.choose ~ranking config app clustering ~rf:1)
      .Retention.avoided_words_per_iteration
  in
  Alcotest.(check int) "tf" 400 (avoided `Tf);
  Alcotest.(check int) "smallest" 400 (avoided `Smallest_first);
  Alcotest.(check int) "fifo" 300 (avoided `Fifo);
  Alcotest.(check int) "largest" 300 (avoided `Largest_first);
  (* with enough memory every order retains everything *)
  let roomy = Morphosys.Config.m1 ~fb_set_size:1024 in
  List.iter
    (fun ranking ->
      Alcotest.(check int) "roomy ties" 700
        (Retention.choose ~ranking roomy app clustering ~rf:1)
          .Retention.avoided_words_per_iteration)
    [ `Tf; `Fifo; `Smallest_first; `Largest_first ]

let tests =
  (fst tests, snd tests @ [
    Alcotest.test_case "tf ordering beats naive" `Quick
      test_tf_ordering_beats_naive;
  ])
