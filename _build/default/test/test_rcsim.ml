(* The RC-array functional simulator: context encoding, cell/array
   semantics, and every library kernel against its reference model. *)

module C = Rcsim.Context
module A = Rcsim.Array_sim

let config = Morphosys.Config.m1 ~fb_set_size:1024

let check_arr = Alcotest.(check (array int))

(* -- context encoding --------------------------------------------------- *)

let test_context_make_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> C.make C.Add (C.Reg 4) (C.Reg 0) ~dst:0);
  expect_invalid (fun () -> C.make C.Add (C.Imm 3) (C.Reg 0) ~dst:0);
  expect_invalid (fun () -> C.make C.Add (C.Reg 0) (C.Imm 4000) ~dst:0);
  expect_invalid (fun () -> C.make C.Add (C.Reg 0) (C.Reg 0) ~dst:7)

let test_context_round_trip_hand () =
  let cases =
    [
      C.make C.Add (C.Reg 1) (C.Imm (-7)) ~dst:2;
      C.make ~fb_write:true C.Mac C.Fb_port (C.Imm 2047) ~dst:1;
      C.make C.Abs_diff C.North C.East ~dst:3;
      C.make C.Pass_a C.West (C.Reg 3) ~dst:0;
      C.make C.Shr (C.Reg 2) (C.Imm (-2048)) ~dst:3;
    ]
  in
  List.iter
    (fun ctx ->
      match C.decode (C.encode ctx) with
      | Ok decoded ->
        Alcotest.(check bool)
          (Format.asprintf "%a" C.pp ctx)
          true (C.equal ctx decoded)
      | Error e -> Alcotest.fail e)
    cases

let test_context_decode_rejects () =
  (* opcode 15 is unused *)
  match C.decode 15l with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad opcode accepted"

let gen_context =
  let open QCheck.Gen in
  let gen_src ~allow_imm =
    let base =
      [ map (fun r -> C.Reg r) (int_range 0 3);
        pure C.North; pure C.South; pure C.East; pure C.West; pure C.Fb_port ]
    in
    let choices =
      if allow_imm then map (fun v -> C.Imm v) (int_range (-2048) 2047) :: base
      else base
    in
    oneof choices
  in
  let* op =
    oneofl
      [ C.Add; C.Sub; C.Mul; C.Mac; C.Band; C.Bor; C.Bxor; C.Shl; C.Shr;
        C.Min; C.Max; C.Abs_diff; C.Pass_a ]
  in
  let* src_a = gen_src ~allow_imm:false in
  let* src_b = gen_src ~allow_imm:true in
  let* dst = int_range 0 3 in
  let* fb_write = bool in
  pure (C.make ~fb_write op src_a src_b ~dst)

let prop_context_round_trip =
  QCheck.Test.make ~name:"context words encode/decode round-trip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" C.pp) gen_context) (fun ctx ->
      match C.decode (C.encode ctx) with
      | Ok decoded -> C.equal ctx decoded
      | Error _ -> false)

(* -- array semantics ------------------------------------------------------ *)

let test_row_selection_isolated () =
  let arr = A.create config in
  let step =
    {
      A.context = C.make C.Pass_a C.Fb_port (C.Reg 0) ~dst:0;
      selector = A.Row 2;
      fb_in = Some (Array.init 8 (fun c -> 100 + c));
    }
  in
  ignore (A.step arr step);
  Alcotest.(check int) "selected row loaded" 103 (A.reg arr ~row:2 ~col:3 0);
  Alcotest.(check int) "other rows untouched" 0 (A.reg arr ~row:1 ~col:3 0)

let test_neighbour_reads_synchronous () =
  let arr = A.create config in
  (* set every cell's output to its column index *)
  ignore
    (A.step arr
       {
         A.context = C.make C.Pass_a C.Fb_port (C.Reg 0) ~dst:0;
         selector = A.All;
         fb_in = Some (Array.init 8 (fun c -> c));
       });
  (* r1 <- east neighbour; all cells simultaneously: must read OLD outputs *)
  ignore
    (A.step arr
       {
         A.context = C.make C.Pass_a C.East (C.Reg 0) ~dst:1;
         selector = A.All;
         fb_in = None;
       });
  Alcotest.(check int) "east of column 2 is 3" 3 (A.reg arr ~row:4 ~col:2 1);
  Alcotest.(check int) "array edge reads 0" 0 (A.reg arr ~row:4 ~col:7 1)

let test_fb_write_needs_selection () =
  let arr = A.create config in
  match
    A.step arr
      {
        A.context = C.make ~fb_write:true C.Pass_a (C.Reg 0) (C.Reg 0) ~dst:0;
        selector = A.All;
        fb_in = None;
      }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fb_write with All must be rejected"

let test_bad_fb_in_length () =
  let arr = A.create config in
  match
    A.step arr
      {
        A.context = C.make C.Pass_a C.Fb_port (C.Reg 0) ~dst:0;
        selector = A.Row 0;
        fb_in = Some [| 1; 2 |];
      }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short fb_in must be rejected"

let test_mac_accumulates () =
  Alcotest.(check int) "alu mac" 23 (Rcsim.Cell.alu C.Mac ~acc:3 4 5);
  Alcotest.(check int) "alu absd" 7 (Rcsim.Cell.alu C.Abs_diff ~acc:0 2 9);
  Alcotest.(check int) "alu shl" 24 (Rcsim.Cell.alu C.Shl ~acc:0 3 3);
  Alcotest.(check int) "alu shr keeps sign" (-2)
    (Rcsim.Cell.alu C.Shr ~acc:0 (-8) 2)

(* -- kernels vs reference ------------------------------------------------- *)

let run_single program =
  let arr = A.create config in
  match A.run arr program with
  | [ out ] -> out
  | outs ->
    Alcotest.fail (Printf.sprintf "expected one output row, got %d" (List.length outs))

let test_vector_add () =
  let a = Array.init 8 (fun i -> i * 3) and b = Array.init 8 (fun i -> 100 - i) in
  check_arr "vector add" (Rcsim.Kernels.vector_add_ref ~a ~b)
    (run_single (Rcsim.Kernels.vector_add ~a ~b))

let test_saxpy () =
  let x = Array.init 8 (fun i -> i - 4) and y = Array.init 8 (fun i -> i * i) in
  check_arr "saxpy" (Rcsim.Kernels.saxpy_ref ~alpha:7 ~x ~y)
    (run_single (Rcsim.Kernels.saxpy ~alpha:7 ~x ~y))

let test_fir () =
  let taps = [ 2; -1; 4; 3 ] in
  let xs = Array.init 11 (fun i -> (i * i) - (3 * i) + 1) in
  check_arr "fir" (Rcsim.Kernels.fir_ref ~taps ~xs)
    (run_single (Rcsim.Kernels.fir ~taps ~xs))

let test_sad () =
  let a = Array.init 8 (fun r -> Array.init 8 (fun c -> (r * c) mod 17) ) in
  let b = Array.init 8 (fun r -> Array.init 8 (fun c -> ((r + c) * 5) mod 23)) in
  check_arr "sad rows" (Rcsim.Kernels.sad_rows_ref ~a ~b)
    (run_single (Rcsim.Kernels.sad_rows ~a ~b))

let test_dct8 () =
  let x = [| 12; -3; 45; 7; -20; 0; 33; 9 |] in
  check_arr "dct8" (Rcsim.Kernels.dct8_ref ~x)
    (run_single (Rcsim.Kernels.dct8 ~x));
  (* DC coefficient sanity: dct[0] = round(128/ (2 sqrt 2)) * sum approx *)
  let flat = Array.make 8 10 in
  let y = run_single (Rcsim.Kernels.dct8 ~x:flat) in
  Alcotest.(check bool) "AC terms of a flat signal vanish" true
    (Array.for_all (fun v -> abs v <= 8) (Array.sub y 1 7))

let prop_vector_add_random =
  QCheck.Test.make ~name:"vector add matches reference" ~count:100
    QCheck.(pair (array_of_size (QCheck.Gen.pure 8) (int_range (-1000) 1000))
              (array_of_size (QCheck.Gen.pure 8) (int_range (-1000) 1000)))
    (fun (a, b) ->
      run_single (Rcsim.Kernels.vector_add ~a ~b)
      = Rcsim.Kernels.vector_add_ref ~a ~b)

let prop_sad_random =
  let gen_tile =
    QCheck.Gen.(
      array_size (pure 8) (array_size (pure 8) (int_range 0 255)))
  in
  QCheck.Test.make ~name:"SAD matches reference" ~count:50
    (QCheck.make (QCheck.Gen.pair gen_tile gen_tile)) (fun (a, b) ->
      run_single (Rcsim.Kernels.sad_rows ~a ~b)
      = Rcsim.Kernels.sad_rows_ref ~a ~b)

let prop_dct_random =
  QCheck.Test.make ~name:"DCT matches reference" ~count:50
    QCheck.(array_of_size (QCheck.Gen.pure 8) (int_range (-128) 127))
    (fun x ->
      run_single (Rcsim.Kernels.dct8 ~x) = Rcsim.Kernels.dct8_ref ~x)

(* -- kernel library -------------------------------------------------------- *)

let test_library_demos_self_check () =
  List.iter
    (fun (e : Rcsim.Kernel_library.entry) ->
      match e.Rcsim.Kernel_library.demo config with
      | Some (got, expected) ->
        Alcotest.(check int)
          (e.Rcsim.Kernel_library.name ^ " output rows")
          (List.length expected) (List.length got);
        List.iter2
          (fun g e' -> check_arr "demo matches reference" e' g)
          got expected
      | None -> Alcotest.fail (e.Rcsim.Kernel_library.name ^ ": no demo"))
    Rcsim.Kernel_library.all

let test_library_to_kernel () =
  match Rcsim.Kernel_library.find "dct8" with
  | None -> Alcotest.fail "dct8 missing"
  | Some e ->
    let k = Rcsim.Kernel_library.to_kernel config ~id:0 e in
    Alcotest.(check string) "name" "dct8" k.Kernel_ir.Kernel.name;
    Alcotest.(check int) "contexts" 18 k.Kernel_ir.Kernel.contexts;
    Alcotest.(check bool) "cycles positive" true (k.Kernel_ir.Kernel.exec_cycles > 0)

let test_library_context_counts_match_programs () =
  (* the registered context_words must equal the actual program length *)
  let check name program =
    match Rcsim.Kernel_library.find name with
    | None -> Alcotest.fail (name ^ " missing")
    | Some e ->
      Alcotest.(check int) (name ^ " context count")
        (A.cycles program) e.Rcsim.Kernel_library.context_words
  in
  check "vector_add"
    (Rcsim.Kernels.vector_add ~a:(Array.make 8 0) ~b:(Array.make 8 0));
  check "saxpy" (Rcsim.Kernels.saxpy ~alpha:1 ~x:(Array.make 8 0) ~y:(Array.make 8 0));
  check "fir4" (Rcsim.Kernels.fir ~taps:[ 1; 1; 1; 1 ] ~xs:(Array.make 11 0));
  check "sad8x8"
    (Rcsim.Kernels.sad_rows
       ~a:(Array.make_matrix 8 8 0)
       ~b:(Array.make_matrix 8 8 0));
  check "dct8" (Rcsim.Kernels.dct8 ~x:(Array.make 8 0))

let tests =
  ( "rcsim",
    [
      Alcotest.test_case "context validation" `Quick test_context_make_validation;
      Alcotest.test_case "context round trip" `Quick test_context_round_trip_hand;
      Alcotest.test_case "context decode rejects" `Quick test_context_decode_rejects;
      QCheck_alcotest.to_alcotest prop_context_round_trip;
      Alcotest.test_case "row selection" `Quick test_row_selection_isolated;
      Alcotest.test_case "synchronous neighbours" `Quick
        test_neighbour_reads_synchronous;
      Alcotest.test_case "fb_write needs selection" `Quick
        test_fb_write_needs_selection;
      Alcotest.test_case "fb_in length" `Quick test_bad_fb_in_length;
      Alcotest.test_case "alu semantics" `Quick test_mac_accumulates;
      Alcotest.test_case "vector add" `Quick test_vector_add;
      Alcotest.test_case "saxpy" `Quick test_saxpy;
      Alcotest.test_case "fir" `Quick test_fir;
      Alcotest.test_case "sad" `Quick test_sad;
      Alcotest.test_case "dct8" `Quick test_dct8;
      QCheck_alcotest.to_alcotest prop_vector_add_random;
      QCheck_alcotest.to_alcotest prop_sad_random;
      QCheck_alcotest.to_alcotest prop_dct_random;
      Alcotest.test_case "library demos self-check" `Quick
        test_library_demos_self_check;
      Alcotest.test_case "library to_kernel" `Quick test_library_to_kernel;
      Alcotest.test_case "library context counts" `Quick
        test_library_context_counts_match_programs;
    ] )

(* -- tile pipeline (2-D transform coding) -------------------------------- *)

let sample_tile () =
  Array.init 8 (fun r -> Array.init 8 (fun c -> 30 + (r * 8) + (c * 3) - ((r * c) mod 11)))

let test_scale_tile () =
  let arr = A.create config in
  let factors = Array.init 8 (fun r -> Array.init 8 (fun c -> 1 + ((r + c) mod 5))) in
  let x = sample_tile () in
  match A.run arr (Rcsim.Kernels.scale_tile ~factors ~shift:2 ~x) with
  | rows when List.length rows = 8 ->
    let got = Array.of_list rows in
    let expected = Rcsim.Kernels.scale_tile_ref ~factors ~shift:2 ~x in
    Array.iteri (fun r row -> check_arr "scale row" expected.(r) row) got
  | _ -> Alcotest.fail "unexpected shape"

let test_dct2d_matches_ref () =
  let arr = A.create config in
  let tile = sample_tile () in
  let got = Rcsim.Tile_pipeline.dct2d arr tile in
  let expected = Rcsim.Tile_pipeline.dct2d_ref tile in
  Alcotest.(check int) "array = reference" 0
    (Rcsim.Tile_pipeline.max_abs_error got expected)

let test_transform_roundtrip () =
  let arr = A.create config in
  let tile = sample_tile () in
  let q = Rcsim.Tile_pipeline.flat_quant 4 in
  let recon = Rcsim.Tile_pipeline.reconstruct arr ~q tile in
  (* matches the pure-integer reference exactly *)
  Alcotest.(check int) "array = reference" 0
    (Rcsim.Tile_pipeline.max_abs_error recon
       (Rcsim.Tile_pipeline.reconstruct_ref ~q tile));
  (* and reconstructs the original within quantisation error *)
  let err = Rcsim.Tile_pipeline.max_abs_error recon tile in
  Alcotest.(check bool)
    (Printf.sprintf "reconstruction error %d <= 12" err)
    true (err <= 12)

let test_idct_inverts_dct () =
  let arr = A.create config in
  let tile = sample_tile () in
  let recon = Rcsim.Tile_pipeline.idct2d arr (Rcsim.Tile_pipeline.dct2d arr tile) in
  let err = Rcsim.Tile_pipeline.max_abs_error recon tile in
  Alcotest.(check bool)
    (Printf.sprintf "idct(dct(x)) error %d <= 6" err)
    true (err <= 6)

let test_quant_validation () =
  match Rcsim.Tile_pipeline.flat_quant 0 |> fun q ->
        Rcsim.Tile_pipeline.quantise_ref ~q (sample_tile ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero quantiser must be rejected"

let prop_roundtrip_error_bounded =
  QCheck.Test.make ~name:"transform roundtrip error bounded" ~count:30
    (QCheck.make
       QCheck.Gen.(
         array_size (pure 8) (array_size (pure 8) (int_range 0 255))))
    (fun tile ->
      let arr = A.create config in
      let q = Rcsim.Tile_pipeline.flat_quant 4 in
      let recon = Rcsim.Tile_pipeline.reconstruct arr ~q tile in
      Rcsim.Tile_pipeline.max_abs_error recon tile <= 24)

let tests =
  ( fst tests,
    snd tests
    @ [
        Alcotest.test_case "scale tile" `Quick test_scale_tile;
        Alcotest.test_case "dct2d matches ref" `Quick test_dct2d_matches_ref;
        Alcotest.test_case "transform roundtrip" `Quick test_transform_roundtrip;
        Alcotest.test_case "idct inverts dct" `Quick test_idct_inverts_dct;
        Alcotest.test_case "quantiser validation" `Quick test_quant_validation;
        QCheck_alcotest.to_alcotest prop_roundtrip_error_bounded;
      ] )

(* -- motion estimation ----------------------------------------------------- *)

let frame_of seed rows cols =
  Array.init rows (fun r -> Array.init cols (fun c -> ((r * 31) + (c * 7) + seed) mod 251))

let test_motion_finds_planted_vector () =
  let reference = frame_of 3 24 24 in
  (* the current block is an exact copy of the reference at (+2, -3) *)
  let origin = (8, 8) in
  let block = Rcsim.Motion.window reference ~row:10 ~col:5 in
  let arr = A.create config in
  let v = Rcsim.Motion.search arr ~reference ~block ~origin ~range:4 in
  Alcotest.(check int) "dy" 2 v.Rcsim.Motion.dy;
  Alcotest.(check int) "dx" (-3) v.Rcsim.Motion.dx;
  Alcotest.(check int) "exact match" 0 v.Rcsim.Motion.sad

let test_motion_matches_reference_model () =
  let reference = frame_of 11 20 20 in
  let block =
    Array.init 8 (fun r -> Array.init 8 (fun c -> ((r * c) + 100) mod 255))
  in
  let arr = A.create config in
  let got = Rcsim.Motion.search arr ~reference ~block ~origin:(6, 6) ~range:3 in
  let expected = Rcsim.Motion.search_ref ~reference ~block ~origin:(6, 6) ~range:3 in
  Alcotest.(check bool) "same vector" true (got = expected)

let test_motion_respects_frame_bounds () =
  let reference = frame_of 0 10 10 in
  let block = Rcsim.Motion.window reference ~row:0 ~col:0 in
  let arr = A.create config in
  (* origin at the corner: only displacements into the frame are legal *)
  let v = Rcsim.Motion.search arr ~reference ~block ~origin:(0, 0) ~range:4 in
  Alcotest.(check bool) "legal dy" true (v.Rcsim.Motion.dy >= 0);
  Alcotest.(check bool) "legal dx" true (v.Rcsim.Motion.dx >= 0);
  Alcotest.(check int) "zero vector wins on identical content" 0
    (abs v.Rcsim.Motion.dx + abs v.Rcsim.Motion.dy)

let test_motion_validation () =
  let reference = frame_of 0 10 10 in
  let arr = A.create config in
  (match Rcsim.Motion.window reference ~row:5 ~col:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window past the edge must be rejected");
  match
    Rcsim.Motion.search arr ~reference ~block:(Array.make_matrix 4 4 0)
      ~origin:(0, 0) ~range:1
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-8x8 block must be rejected"

let prop_motion_matches_ref =
  QCheck.Test.make ~name:"motion search matches reference" ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 0 200) (int_range 0 2)))
    (fun (seed, range) ->
      let reference = frame_of seed 18 18 in
      let block = frame_of (seed + 5) 8 8 in
      let arr = A.create config in
      Rcsim.Motion.search arr ~reference ~block ~origin:(5, 5) ~range:(range + 1)
      = Rcsim.Motion.search_ref ~reference ~block ~origin:(5, 5)
          ~range:(range + 1))

let tests =
  ( fst tests,
    snd tests
    @ [
        Alcotest.test_case "motion: planted vector" `Quick
          test_motion_finds_planted_vector;
        Alcotest.test_case "motion: matches reference" `Quick
          test_motion_matches_reference_model;
        Alcotest.test_case "motion: frame bounds" `Quick
          test_motion_respects_frame_bounds;
        Alcotest.test_case "motion: validation" `Quick test_motion_validation;
        QCheck_alcotest.to_alcotest prop_motion_matches_ref;
      ] )
