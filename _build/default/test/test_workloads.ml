(* The paper's workloads and the Table 1 experiment set: structural
   properties the reproduction depends on. *)

module T1 = Workloads.Table1
module Schedule = Sched.Schedule

let test_apps_validate () =
  (* building any workload exercises the full IR validation *)
  let apps =
    [
      Workloads.Synthetic.e1 ();
      Workloads.Synthetic.e2 ();
      Workloads.Synthetic.e3 ();
      Workloads.Synthetic.figure5 ();
      Workloads.Synthetic.figure3 ();
      Workloads.Mpeg.app ();
      Workloads.Atr.sld ();
      Workloads.Atr.fi ();
    ]
  in
  Alcotest.(check int) "eight applications" 8 (List.length apps);
  List.iter
    (fun (app : Kernel_ir.Application.t) ->
      Alcotest.(check bool)
        (app.Kernel_ir.Application.name ^ " has kernels")
        true
        (Kernel_ir.Application.n_kernels app > 0))
    apps

let test_table1_ids () =
  Alcotest.(check (list string)) "paper row order"
    [
      "E1"; "E1*"; "E2"; "E3"; "MPEG"; "MPEG*"; "ATR-SLD"; "ATR-SLD*";
      "ATR-SLD**"; "ATR-FI"; "ATR-FI*"; "ATR-FI**";
    ]
    (T1.ids ());
  Alcotest.(check string) "by_id" "MPEG" (T1.by_id "MPEG").T1.id;
  match T1.by_id "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_clusterings_valid () =
  List.iter
    (fun (e : T1.experiment) ->
      match Kernel_ir.Cluster.validate e.T1.app e.T1.clustering with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (e.T1.id ^ ": " ^ msg))
    (T1.all ())

(* The reproduction's headline checks: the measured RF equals the paper's
   RF on every row, and the scheduler ordering matches the paper's. *)
let test_rf_matches_paper () =
  List.iter
    (fun (e : T1.experiment) ->
      let c = Cds.Pipeline.run e.T1.config e.T1.app e.T1.clustering in
      match Cds.Pipeline.ds_rf c with
      | Some rf ->
        Alcotest.(check int) (e.T1.id ^ " RF") e.T1.paper.T1.rf rf
      | None -> Alcotest.fail (e.T1.id ^ ": CDS infeasible"))
    (T1.all ())

let test_cds_dominates_ds () =
  List.iter
    (fun (e : T1.experiment) ->
      let c = Cds.Pipeline.run e.T1.config e.T1.app e.T1.clustering in
      match
        (Cds.Pipeline.improvement c `Ds, Cds.Pipeline.improvement c `Cds)
      with
      | Some ds, Some cds ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: CDS (%.1f) >= DS (%.1f)" e.T1.id cds ds)
          true (cds >= ds -. 1e-9);
        Alcotest.(check bool) (e.T1.id ^ ": DS >= 0") true (ds >= -1e-9)
      | _ -> Alcotest.fail (e.T1.id ^ ": scheduler infeasible"))
    (T1.all ())

let test_e1_and_sld_star_ds_zero () =
  let zero id =
    let e = T1.by_id id in
    let c = Cds.Pipeline.run e.T1.config e.T1.app e.T1.clustering in
    match Cds.Pipeline.improvement c `Ds with
    | Some ds ->
      Alcotest.(check (float 0.5)) (id ^ " DS improvement is 0") 0. ds
    | None -> Alcotest.fail (id ^ " infeasible")
  in
  (* E1 has no intermediates and RF=1 at FB=1K; ATR-SLD* has no
     intra-cluster intermediates: in both, DS == Basic, as in the paper *)
  zero "E1";
  zero "ATR-SLD*"

let test_mpeg_1k_feasibility () =
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  Alcotest.(check bool) "basic cannot run MPEG at 1K" true
    (Result.is_error (Sched.Basic_scheduler.schedule config app clustering));
  Alcotest.(check bool) "ds runs MPEG at 1K" true
    (Result.is_ok (Sched.Data_scheduler.schedule config app clustering));
  Alcotest.(check bool) "cds runs MPEG at 1K" true
    (Result.is_ok (Cds.Complete_data_scheduler.schedule config app clustering))

let test_all_schedules_validate () =
  List.iter
    (fun (e : T1.experiment) ->
      (* Pipeline.run validates internally and raises on violations *)
      let (_ : Cds.Pipeline.comparison) =
        Cds.Pipeline.run ~validate:true e.T1.config e.T1.app e.T1.clustering
      in
      ())
    (T1.all ())

let test_dt_positive_where_paper_reports_it () =
  List.iter
    (fun (e : T1.experiment) ->
      let c = Cds.Pipeline.run e.T1.config e.T1.app e.T1.clustering in
      match Cds.Pipeline.dt_words c with
      | Some dt ->
        Alcotest.(check bool) (e.T1.id ^ " DT > 0") true (dt > 0)
      | None -> Alcotest.fail (e.T1.id ^ " infeasible"))
    (T1.all ())

let test_random_app_generator_sane () =
  (* drive the generator directly: it must always produce valid apps *)
  let gen = Workloads.Random_app.gen_app_with_clustering () in
  let rand = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let app, clustering = QCheck.Gen.generate1 ~rand gen in
    match Kernel_ir.Cluster.validate app clustering with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  done

let tests =
  ( "workloads",
    [
      Alcotest.test_case "apps validate" `Quick test_apps_validate;
      Alcotest.test_case "table1 ids" `Quick test_table1_ids;
      Alcotest.test_case "clusterings valid" `Quick test_clusterings_valid;
      Alcotest.test_case "RF matches paper" `Quick test_rf_matches_paper;
      Alcotest.test_case "CDS dominates DS" `Quick test_cds_dominates_ds;
      Alcotest.test_case "DS=0 rows" `Quick test_e1_and_sld_star_ds_zero;
      Alcotest.test_case "MPEG 1K feasibility" `Quick test_mpeg_1k_feasibility;
      Alcotest.test_case "all schedules validate" `Quick
        test_all_schedules_validate;
      Alcotest.test_case "DT positive" `Quick test_dt_positive_where_paper_reports_it;
      Alcotest.test_case "random generator sane" `Quick
        test_random_app_generator_sane;
    ] )
