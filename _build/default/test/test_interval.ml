open Msutil

let iv lo hi = Interval.make ~lo ~hi

let test_make () =
  let t = iv 2 5 in
  Alcotest.(check int) "length" 3 (Interval.length t);
  Alcotest.(check bool) "not empty" false (Interval.is_empty t);
  Alcotest.(check bool) "empty" true (Interval.is_empty (iv 4 4));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make: hi < lo")
    (fun () -> ignore (iv 3 2))

let test_contains () =
  let t = iv 2 5 in
  Alcotest.(check bool) "lo in" true (Interval.contains t 2);
  Alcotest.(check bool) "hi out (half open)" false (Interval.contains t 5);
  Alcotest.(check bool) "below" false (Interval.contains t 1)

let test_overlaps () =
  Alcotest.(check bool) "overlap" true (Interval.overlaps (iv 0 4) (iv 3 6));
  Alcotest.(check bool) "touching do not overlap" false
    (Interval.overlaps (iv 0 3) (iv 3 6));
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (iv 0 2) (iv 5 6))

let test_adjacent () =
  Alcotest.(check bool) "adjacent" true (Interval.adjacent (iv 0 3) (iv 3 6));
  Alcotest.(check bool) "gap" false (Interval.adjacent (iv 0 2) (iv 3 6))

let test_merge () =
  Alcotest.(check bool) "merge adjacent" true
    (Interval.equal (iv 0 6) (Interval.merge (iv 0 3) (iv 3 6)));
  Alcotest.(check bool) "merge overlap" true
    (Interval.equal (iv 0 6) (Interval.merge (iv 0 4) (iv 2 6)));
  Alcotest.check_raises "disjoint merge"
    (Invalid_argument "Interval.merge: disjoint intervals") (fun () ->
      ignore (Interval.merge (iv 0 1) (iv 3 4)))

let test_intersection () =
  (match Interval.intersection (iv 0 4) (iv 2 6) with
  | Some t -> Alcotest.(check bool) "intersection" true (Interval.equal t (iv 2 4))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "no intersection" true
    (Interval.intersection (iv 0 2) (iv 2 4) = None)

let gen_interval =
  QCheck.Gen.(
    let* lo = int_range 0 100 in
    let* len = int_range 0 50 in
    QCheck.Gen.return (iv lo (lo + len)))

let arb_interval =
  QCheck.make ~print:(Format.asprintf "%a" Interval.pp) gen_interval

let prop_merge_covers =
  QCheck.Test.make ~name:"merge covers both operands" ~count:300
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      QCheck.assume (Interval.overlaps a b || Interval.adjacent a b);
      let m = Interval.merge a b in
      Interval.(m.lo) <= Interval.(a.lo)
      && Interval.(m.hi) >= Interval.(b.hi)
      && Interval.length m
         <= Interval.length a + Interval.length b)

let prop_intersection_symmetric =
  QCheck.Test.make ~name:"intersection is symmetric" ~count:300
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      Interval.intersection a b = Interval.intersection b a)

let tests =
  ( "interval",
    [
      Alcotest.test_case "make/length" `Quick test_make;
      Alcotest.test_case "contains" `Quick test_contains;
      Alcotest.test_case "overlaps" `Quick test_overlaps;
      Alcotest.test_case "adjacent" `Quick test_adjacent;
      Alcotest.test_case "merge" `Quick test_merge;
      Alcotest.test_case "intersection" `Quick test_intersection;
      QCheck_alcotest.to_alcotest prop_merge_covers;
      QCheck_alcotest.to_alcotest prop_intersection_symmetric;
    ] )
