open Msutil

let checkf = Alcotest.(check (float 1e-9))

let test_mean () =
  checkf "mean empty" 0. (Stats.mean []);
  checkf "mean" 2. (Stats.mean [ 1.; 2.; 3. ])

let test_geomean () =
  checkf "geomean empty" 0. (Stats.geomean []);
  checkf "geomean" 4. (Stats.geomean [ 2.; 8. ])

let test_stddev () =
  checkf "stddev single" 0. (Stats.stddev [ 5. ]);
  checkf "stddev" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_percent () =
  checkf "percent" 25. (Stats.percent ~num:1 ~den:4);
  checkf "percent zero den" 0. (Stats.percent ~num:3 ~den:0)

let test_ratio () =
  checkf "ratio" 0.5 (Stats.ratio ~num:1 ~den:2);
  checkf "ratio zero den" 0. (Stats.ratio ~num:1 ~den:0)

let test_minmax () =
  checkf "min" 1. (Stats.minf [ 3.; 1.; 2. ]);
  checkf "max" 3. (Stats.maxf [ 3.; 1.; 2. ])

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all values bucketed" 4 total;
  Alcotest.(check int) "empty input" 0 (Array.length (Stats.histogram ~bins:3 []));
  Alcotest.check_raises "bad bins"
    (Invalid_argument "Stats.histogram: bins must be positive") (fun () ->
      ignore (Stats.histogram ~bins:0 [ 1. ]))

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min..max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0. 1000.))
    (fun l ->
      let m = Stats.mean l in
      m >= Stats.minf l -. 1e-9 && m <= Stats.maxf l +. 1e-9)

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram buckets every value" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-50.) 50.))
    (fun l ->
      let h = Stats.histogram ~bins:7 l in
      Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h = List.length l)

let tests =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "percent" `Quick test_percent;
      Alcotest.test_case "ratio" `Quick test_ratio;
      Alcotest.test_case "min/max" `Quick test_minmax;
      Alcotest.test_case "histogram" `Quick test_histogram;
      QCheck_alcotest.to_alcotest prop_mean_bounded;
      QCheck_alcotest.to_alcotest prop_histogram_total;
    ] )
