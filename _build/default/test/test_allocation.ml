(* The Figure 4 allocation algorithm: successful regular placement on the
   paper's workloads, the no-split claim, and consistency with the DS(C)
   footprint arithmetic. *)

module AA = Cds.Allocation_algorithm
module IE = Kernel_ir.Info_extractor

let run_alloc config app clustering =
  match Cds.Complete_data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok r ->
    ( r,
      AA.run config app clustering ~rf:r.Cds.Complete_data_scheduler.rf
        ~retention:r.Cds.Complete_data_scheduler.retention ~round:0 )

let test_same_set_allocation () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let _, result = run_alloc Fixtures.default_config app clustering in
  Alcotest.(check (list string)) "no failures" [] result.AA.failures;
  Alcotest.(check int) "no splits" 0 result.AA.splits;
  Alcotest.(check int) "one peak per cluster" 3 (List.length result.AA.peak_words)

let test_figure5_snapshots () =
  let app = Workloads.Synthetic.figure5 () in
  let clustering = Workloads.Synthetic.figure5_clustering app in
  (* a 512-word set bounds the figure's RF at 2 *)
  let config = Morphosys.Config.m1 ~fb_set_size:512 in
  let r, result = run_alloc config app clustering in
  Alcotest.(check int) "figure's RF" 2 r.Cds.Complete_data_scheduler.rf;
  Alcotest.(check (list string)) "no failures" [] result.AA.failures;
  Alcotest.(check int) "no splits" 0 result.AA.splits;
  (* the focus cluster's snapshots must show the figure's objects *)
  let focus = Workloads.Synthetic.figure5_focus_cluster in
  let cells_of_focus =
    List.concat_map
      (fun (s : AA.snapshot) ->
        if
          Astring_contains.contains s.AA.caption
            (Printf.sprintf "Cl%d" focus)
        then
          Array.to_list s.AA.cells
          |> List.filter_map (fun c -> c)
        else [])
      result.AA.snapshots
  in
  let mentions name =
    List.exists (fun c -> Astring_contains.contains c name) cells_of_focus
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " appears in FB") true (mentions name))
    [ "D13"; "D37"; "d1"; "d2"; "r13"; "r23"; "R3_5"; "Rout" ]

let test_peaks_bounded_by_formula () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config = Fixtures.default_config in
  let r, result = run_alloc config app clustering in
  let rf = r.Cds.Complete_data_scheduler.rf in
  let retained =
    r.Cds.Complete_data_scheduler.retention.Cds.Retention.retained
  in
  let profiles = IE.profiles app clustering in
  List.iter
    (fun (cid, peak) ->
      let p = List.nth profiles cid in
      let pinned =
        Cds.Retention.pinned_for ~retained ~cluster:p.IE.cluster
      in
      let bound = rf * Sched.Ds_formula.closed_form ~pinned p in
      Alcotest.(check bool)
        (Printf.sprintf "cluster %d peak %d <= bound %d" cid peak bound)
        true (peak <= bound))
    result.AA.peak_words

let test_capture_filter () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config = Fixtures.default_config in
  match Cds.Complete_data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let result =
      AA.run
        ~capture:(fun ~cluster_id -> cluster_id = 1)
        config app clustering ~rf:r.Cds.Complete_data_scheduler.rf
        ~retention:r.Cds.Complete_data_scheduler.retention ~round:0
    in
    Alcotest.(check bool) "only cluster 1 captured" true
      (List.for_all
         (fun (s : AA.snapshot) ->
           Astring_contains.contains s.AA.caption "Cl1")
         result.AA.snapshots);
    Alcotest.(check bool) "still some snapshots" true
      (result.AA.snapshots <> [])

let test_validation_args () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config = Fixtures.default_config in
  (match
     AA.run config app clustering ~rf:0 ~retention:Cds.Retention.none ~round:0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rf validation");
  match
    AA.run config app clustering ~rf:1 ~retention:Cds.Retention.none ~round:(-1)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "round validation"

(* Property: the allocator succeeds without failures on every random app
   scheduled by the CDS on a big machine (space math and placement agree),
   and the end-of-round layouts are internally consistent. *)
let prop_allocator_succeeds =
  QCheck.Test.make ~name:"allocator places every object" ~count:75
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      match Cds.Complete_data_scheduler.schedule config app clustering with
      | Error _ -> false
      | Ok r ->
        let result =
          AA.run config app clustering ~rf:r.Cds.Complete_data_scheduler.rf
            ~retention:r.Cds.Complete_data_scheduler.retention ~round:0
        in
        result.AA.failures = [])

let tests =
  ( "allocation",
    [
      Alcotest.test_case "same-set allocation" `Quick test_same_set_allocation;
      Alcotest.test_case "figure 5 snapshots" `Quick test_figure5_snapshots;
      Alcotest.test_case "peaks bounded by DS(C)" `Quick
        test_peaks_bounded_by_formula;
      Alcotest.test_case "capture filter" `Quick test_capture_filter;
      Alcotest.test_case "argument validation" `Quick test_validation_args;
      QCheck_alcotest.to_alcotest prop_allocator_succeeds;
    ] )
