(* The step pipeline builder: overlap legality, wrap-around conflict stalls
   with an odd cluster count, and the cost estimator's agreement with the
   simulator. *)

module Schedule = Sched.Schedule
module Dma = Morphosys.Dma

let config = Fixtures.default_config

let test_even_cluster_count_has_no_stalls () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "no conflict stall steps" 0
      (List.length
         (List.filter
            (fun (step : Schedule.step) ->
              step.Schedule.note = "set conflict stall")
            s.Schedule.steps))

let test_odd_cluster_count_stalls_at_wraparound () =
  (* three clusters: A B A — preparing next round's cluster 0 (set A) cannot
     overlap cluster 2's computation (also set A). The FB is sized so RF=1,
     forcing several rounds and thus wrap-arounds. *)
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:160 in
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let stalls =
      List.filter
        (fun (step : Schedule.step) ->
          step.Schedule.note = "set conflict stall")
        s.Schedule.steps
    in
    Alcotest.(check bool) "wrap-around stalls exist" true (stalls <> []);
    (* stall steps are pure DMA *)
    List.iter
      (fun (step : Schedule.step) ->
        Alcotest.(check bool) "no compute in stall" true
          (step.Schedule.compute = None);
        Alcotest.(check bool) "stall moves data" true (step.Schedule.dma <> []))
      stalls;
    (* and still everything validates *)
    Msim.Validate.check_exn s

let test_overlap_legality_in_all_steps () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    List.iter
      (fun (step : Schedule.step) ->
        match step.Schedule.compute with
        | None -> ()
        | Some c ->
          let cset = c.Schedule.cluster.Kernel_ir.Cluster.fb_set in
          List.iter
            (fun (tr : Dma.t) ->
              match tr.Dma.kind with
              | Dma.Data { set; _ } ->
                Alcotest.(check bool) "no transfer touches computing set" true
                  (set <> cset)
              | Dma.Context -> ())
            step.Schedule.dma)
      s.Schedule.steps

let test_rf_validation () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  match
    Sched.Step_builder.build config app clustering ~rf:0
      ~ctx_plan:
        (Result.get_ok (Sched.Context_scheduler.plan config app clustering))
      ~generators:(Sched.Xfer_gen.plain app clustering)
      ~scheduler:"x"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rf 0 must be rejected"

let test_xfer_gen_plain_vs_store_everything () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let c0 = Kernel_ir.Cluster.find clustering 0 in
  let plain = Sched.Xfer_gen.plain app clustering in
  let all = Sched.Xfer_gen.store_everything app clustering in
  let words gens =
    Msutil.Listx.sum_by
      (fun (tr : Dma.t) -> tr.Dma.words)
      (gens.Sched.Step_builder.stores c0 ~round:0 ~iters:1 ~base_iter:0)
  in
  (* cluster 0 outliving = r03 + f1 = 55; plus intermediate r01 (40) when
     storing everything *)
  Alcotest.(check int) "plain stores outliving" 55 (words plain);
  Alcotest.(check int) "basic stores everything" 95 (words all);
  (* loads are identical *)
  let load_words gens =
    Msutil.Listx.sum_by
      (fun (tr : Dma.t) -> tr.Dma.words)
      (gens.Sched.Step_builder.loads c0 ~round:0 ~iters:2 ~base_iter:0)
  in
  Alcotest.(check int) "same loads" (load_words plain) (load_words all);
  Alcotest.(check int) "two iterations of a+b" 300 (load_words plain)

(* The scheduler-side cost estimate is exactly the simulator's total. *)
let prop_cost_estimate_equals_executor =
  QCheck.Test.make ~name:"Schedule_cost.estimate = Executor cycles" ~count:100
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      let agree = function
        | Ok (s : Schedule.t) ->
          Sched.Schedule_cost.estimate config s
          = (Msim.Executor.run config s).Msim.Metrics.total_cycles
        | Error _ -> false
      in
      agree (Sched.Basic_scheduler.schedule config app clustering)
      && agree (Sched.Data_scheduler.schedule config app clustering)
      && agree
           (Result.map
              (fun r -> r.Cds.Complete_data_scheduler.schedule)
              (Cds.Complete_data_scheduler.schedule config app clustering)))

let test_context_partial_pinning () =
  (* four singleton clusters with contexts 100/50/50/50 and a 240-word CM:
     pinning the 100-word set leaves a 100-word rotation pair (fits), but
     pinning any 50-word set on top would need 250 words *)
  let app =
    Kernel_ir.Builder.(
      create "ctxmix" ~iterations:2
      |> kernel "ka" ~contexts:100 ~cycles:50
      |> kernel "kb" ~contexts:50 ~cycles:50
      |> kernel "kc" ~contexts:50 ~cycles:50
      |> kernel "kd" ~contexts:50 ~cycles:50
      |> input "d" ~size:16 ~consumers:[ "ka"; "kb"; "kc"; "kd" ]
      |> final "o" ~size:8 ~producer:"kd"
      |> build)
  in
  let clustering = Kernel_ir.Cluster.singleton_per_kernel app in
  let config = Morphosys.Config.make ~fb_set_size:1024 ~cm_capacity:240 () in
  match Sched.Context_scheduler.plan config app clustering with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check (list int)) "the big cluster is pinned" [ 0 ]
      plan.Sched.Context_scheduler.pinned;
    Alcotest.(check (list int)) "the rest reload" [ 1; 2; 3 ]
      plan.Sched.Context_scheduler.reloaded;
    let pinned_cluster = List.hd plan.Sched.Context_scheduler.pinned in
    Alcotest.(check int) "pinned loads once" 0
      (Sched.Context_scheduler.load_words_for_round plan ~app ~clustering
         ~cluster:(Kernel_ir.Cluster.find clustering pinned_cluster)
         ~round:2)

let tests =
  ( "step_builder",
    [
      Alcotest.test_case "even clusters: no stalls" `Quick
        test_even_cluster_count_has_no_stalls;
      Alcotest.test_case "odd clusters: wraparound stalls" `Quick
        test_odd_cluster_count_stalls_at_wraparound;
      Alcotest.test_case "overlap legality" `Quick
        test_overlap_legality_in_all_steps;
      Alcotest.test_case "rf validation" `Quick test_rf_validation;
      Alcotest.test_case "xfer generators" `Quick
        test_xfer_gen_plain_vs_store_everything;
      QCheck_alcotest.to_alcotest prop_cost_estimate_equals_executor;
      Alcotest.test_case "partial context pinning" `Quick
        test_context_partial_pinning;
    ] )
