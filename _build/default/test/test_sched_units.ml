(* Unit tests for the scheduling substrates: reuse factor, context
   scheduler, kernel scheduler, schedule helpers. *)

module RF = Sched.Reuse_factor
module CS = Sched.Context_scheduler
module KS = Sched.Kernel_scheduler
module Schedule = Sched.Schedule

let test_rf_per_cluster () =
  Alcotest.(check int) "fits 3x" 3 (RF.per_cluster ~fb_set_size:1024 ~footprint:300);
  Alcotest.(check int) "exact fit" 1 (RF.per_cluster ~fb_set_size:1024 ~footprint:1024);
  Alcotest.(check int) "infeasible" 0 (RF.per_cluster ~fb_set_size:1024 ~footprint:1025)

let test_rf_common () =
  Alcotest.(check int) "min of clusters" 2
    (RF.common ~fb_set_size:1024 ~footprints:[ 300; 500 ] ~iterations:100);
  Alcotest.(check int) "clamped to iterations" 4
    (RF.common ~fb_set_size:1024 ~footprints:[ 100 ] ~iterations:4);
  Alcotest.(check int) "zero when infeasible" 0
    (RF.common ~fb_set_size:1024 ~footprints:[ 100; 2000 ] ~iterations:10);
  match RF.common ~fb_set_size:10 ~footprints:[] ~iterations:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty footprints must fail"

let test_rf_rounds () =
  Alcotest.(check int) "even" 5 (RF.rounds ~iterations:10 ~rf:2);
  Alcotest.(check int) "ragged" 4 (RF.rounds ~iterations:10 ~rf:3);
  match RF.rounds ~iterations:10 ~rf:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rf 0 must fail"

let test_context_plan_pins_everything_when_roomy () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let config = Morphosys.Config.make ~fb_set_size:1024 ~cm_capacity:4096 () in
  match CS.plan config app clustering with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check (list int)) "all pinned" [ 0; 1 ] plan.CS.pinned;
    Alcotest.(check int) "round 0 loads" 200
      (CS.load_words_for_round plan ~app ~clustering
         ~cluster:(Kernel_ir.Cluster.find clustering 0) ~round:0);
    Alcotest.(check int) "later rounds free" 0
      (CS.load_words_for_round plan ~app ~clustering
         ~cluster:(Kernel_ir.Cluster.find clustering 0) ~round:3)

let test_context_plan_reloads_under_pressure () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  (* each cluster needs 200 context words; a 399-word CM cannot hold both,
     so neither can be pinned and both reload every round *)
  let config = Morphosys.Config.make ~fb_set_size:1024 ~cm_capacity:399 () in
  match CS.plan config app clustering with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check (list int)) "nothing pinned" [ 0; 1 ] plan.CS.reloaded;
    Alcotest.(check int) "reload every round" 200
      (CS.load_words_for_round plan ~app ~clustering
         ~cluster:(Kernel_ir.Cluster.find clustering 1) ~round:5)

let test_context_plan_infeasible () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let config = Morphosys.Config.make ~fb_set_size:1024 ~cm_capacity:150 () in
  Alcotest.(check bool) "cluster bigger than CM" true
    (Result.is_error (CS.plan config app clustering))

let test_kernel_scheduler_enumerate () =
  let app = Fixtures.toy () in
  Alcotest.(check int) "2^(n-1) partitions" 8 (List.length (KS.enumerate app))

let test_kernel_scheduler_best () =
  let app = Fixtures.toy () in
  (* contrived objective: prefer as many clusters as possible *)
  let eval clustering = Some (100 - Kernel_ir.Cluster.n_clusters clustering) in
  (match KS.best app ~eval with
  | Some (clustering, cycles) ->
    Alcotest.(check int) "singletons win" 4
      (Kernel_ir.Cluster.n_clusters clustering);
    Alcotest.(check int) "score" 96 cycles
  | None -> Alcotest.fail "expected a feasible clustering");
  (* all infeasible *)
  Alcotest.(check bool) "none feasible" true (KS.best app ~eval:(fun _ -> None) = None)

let test_kernel_scheduler_greedy_feasible () =
  let app = Fixtures.toy () in
  (* objective that rewards merging: fewer clusters = fewer cycles *)
  let eval clustering = Some (Kernel_ir.Cluster.n_clusters clustering * 10) in
  match KS.greedy app ~eval with
  | Some (clustering, cycles) ->
    Alcotest.(check int) "greedy merges fully" 1
      (Kernel_ir.Cluster.n_clusters clustering);
    Alcotest.(check int) "cycles" 10 cycles
  | None -> Alcotest.fail "greedy found nothing"

let test_schedule_labels () =
  Alcotest.(check string) "label" "d1@3" (Schedule.instance_label "d1" ~iter:3);
  Alcotest.(check (option (pair string int))) "parse" (Some ("d1", 3))
    (Schedule.parse_label "d1@3");
  Alcotest.(check (option (pair string int))) "parse ctx label" None
    (Schedule.parse_label "Cl0");
  Alcotest.(check (option (pair string int))) "name containing @" (Some ("a@b", 2))
    (Schedule.parse_label "a@b@2")

let test_schedule_rounds () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let config = Fixtures.default_config in
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let total =
      List.init (Schedule.rounds s) (Schedule.iterations_in_round s)
      |> Msutil.Listx.sum
    in
    Alcotest.(check int) "rounds cover all iterations" 4 total

let test_beam_search () =
  let app = Fixtures.toy () in
  (* objective that rewards merging *)
  let eval clustering = Some (Kernel_ir.Cluster.n_clusters clustering * 10) in
  (match KS.beam ~width:2 app ~eval with
  | Some (clustering, cycles) ->
    Alcotest.(check int) "beam finds the single cluster" 1
      (Kernel_ir.Cluster.n_clusters clustering);
    Alcotest.(check int) "score" 10 cycles
  | None -> Alcotest.fail "beam found nothing");
  Alcotest.(check bool) "all infeasible" true
    (KS.beam app ~eval:(fun _ -> None) = None);
  match KS.beam ~width:0 app ~eval with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width validation"

let prop_beam_never_beats_exhaustive =
  QCheck.Test.make ~name:"exhaustive best <= beam result" ~count:50
    Workloads.Random_app.arb_app_with_clustering (fun (app, _) ->
      let eval clustering =
        let sizes = Kernel_ir.Cluster.partition_sizes clustering in
        Some
          (Msutil.Listx.sum_by (fun s -> (s - 2) * (s - 2)) sizes
          + List.length sizes)
      in
      match (KS.best app ~eval, KS.beam ~width:3 app ~eval) with
      | Some (_, b), Some (_, bm) -> b <= bm
      | Some _, None -> false (* eval always succeeds *)
      | None, _ -> false)

let prop_greedy_never_beats_exhaustive =
  QCheck.Test.make ~name:"exhaustive best <= greedy result" ~count:50
    Workloads.Random_app.arb_app_with_clustering (fun (app, _) ->
      (* a deterministic pseudo-objective derived from structure *)
      let eval clustering =
        let sizes = Kernel_ir.Cluster.partition_sizes clustering in
        Some (Msutil.Listx.sum_by (fun s -> (s - 2) * (s - 2)) sizes + List.length sizes)
      in
      match (KS.best app ~eval, KS.greedy app ~eval) with
      | Some (_, b), Some (_, g) -> b <= g
      | Some _, None -> true
      | None, _ -> false (* eval always succeeds, best must find something *))

let tests =
  ( "sched_units",
    [
      Alcotest.test_case "rf per cluster" `Quick test_rf_per_cluster;
      Alcotest.test_case "rf common" `Quick test_rf_common;
      Alcotest.test_case "rf rounds" `Quick test_rf_rounds;
      Alcotest.test_case "context plan: roomy CM" `Quick
        test_context_plan_pins_everything_when_roomy;
      Alcotest.test_case "context plan: pressure" `Quick
        test_context_plan_reloads_under_pressure;
      Alcotest.test_case "context plan: infeasible" `Quick
        test_context_plan_infeasible;
      Alcotest.test_case "kernel scheduler enumerate" `Quick
        test_kernel_scheduler_enumerate;
      Alcotest.test_case "kernel scheduler best" `Quick test_kernel_scheduler_best;
      Alcotest.test_case "kernel scheduler greedy" `Quick
        test_kernel_scheduler_greedy_feasible;
      Alcotest.test_case "schedule labels" `Quick test_schedule_labels;
      Alcotest.test_case "schedule rounds" `Quick test_schedule_rounds;
      Alcotest.test_case "beam search" `Quick test_beam_search;
      QCheck_alcotest.to_alcotest prop_beam_never_beats_exhaustive;
      QCheck_alcotest.to_alcotest prop_greedy_never_beats_exhaustive;
    ] )
