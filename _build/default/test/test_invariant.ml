(* Iteration-invariant constant tables: footprint accounting, scheduling
   traffic, retention across rounds, and allocation. *)

module Data = Kernel_ir.Data
module Schedule = Sched.Schedule

(* Two clusters; k0 and k2 (set A) both read a 200-word constant table;
   every cluster also has ordinary per-iteration data. *)
let app_with_table () =
  Kernel_ir.Builder.(
    create "tabled" ~iterations:12
    |> kernel "k0" ~contexts:64 ~cycles:100
    |> kernel "k1" ~contexts:64 ~cycles:100
    |> kernel "k2" ~contexts:64 ~cycles:100
    |> kernel "k3" ~contexts:64 ~cycles:100
    |> input ~invariant:true "tbl" ~size:200 ~consumers:[ "k0"; "k2" ]
    |> input "d0" ~size:60 ~consumers:[ "k0" ]
    |> input "d1" ~size:60 ~consumers:[ "k1" ]
    |> input "d2" ~size:60 ~consumers:[ "k2" ]
    |> input "d3" ~size:60 ~consumers:[ "k3" ]
    |> final "o0" ~size:30 ~producer:"k0"
    |> final "o1" ~size:30 ~producer:"k1"
    |> final "o2" ~size:30 ~producer:"k2"
    |> final "o3" ~size:30 ~producer:"k3"
    |> build)

let clustering app = Kernel_ir.Cluster.of_partition app [ 1; 1; 1; 1 ]

let test_validation () =
  (match
     Data.make ~invariant:true ~id:0 ~name:"bad" ~size:8
       ~producer:(Data.Produced_by 0) ~consumers:[ 1 ] ~final:false ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invariant results must be rejected");
  let app = app_with_table () in
  Alcotest.(check bool) "flag set" true
    (Kernel_ir.Application.data_by_name app "tbl").Data.invariant;
  let tbl = Kernel_ir.Application.data_by_name app "tbl" in
  Alcotest.(check int) "instance iter pinned to 0" 0 (Data.instance_iter tbl 7);
  let d0 = Kernel_ir.Application.data_by_name app "d0" in
  Alcotest.(check int) "ordinary instance iter" 7 (Data.instance_iter d0 7)

let test_split_footprint () =
  let app = app_with_table () in
  let clustering = clustering app in
  let splits = Sched.Data_scheduler.footprints_split app clustering in
  (* cluster 0: per-iteration d0+o0 = 90, constant table 200 *)
  Alcotest.(check (pair int int)) "cluster 0" (90, 200) (List.nth splits 0);
  Alcotest.(check (pair int int)) "cluster 1 has no constant" (90, 0)
    (List.nth splits 1);
  (* the constant is charged once: rf = (fbs - 200) / 90 *)
  Alcotest.(check int) "rf accounts table once" 9
    (Sched.Reuse_factor.common_split ~fb_set_size:1024
       ~footprints:splits ~iterations:100)

let test_ds_loads_once_per_round () =
  let app = app_with_table () in
  let clustering = clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Msim.Validate.check_exn s;
    let rounds = Schedule.rounds s in
    let tbl_loads =
      Msutil.Listx.sum_by
        (fun (step : Schedule.step) ->
          List.length
            (List.filter
               (fun (tr : Morphosys.Dma.t) ->
                 tr.Morphosys.Dma.label = "tbl@0"
                 && Morphosys.Dma.is_data tr.Morphosys.Dma.kind)
               step.Schedule.dma))
        s.Schedule.steps
    in
    (* two consumer clusters, one load each per round — not per iteration *)
    Alcotest.(check int) "table loads" (2 * rounds) tbl_loads;
    Alcotest.(check bool) "fewer than per-iteration" true
      (tbl_loads < 2 * app.Kernel_ir.Application.iterations)

let test_cds_retains_across_rounds () =
  let app = app_with_table () in
  let clustering = clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  match Cds.Complete_data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let s = r.Cds.Complete_data_scheduler.schedule in
    Msim.Validate.check_exn s;
    let retained_names =
      List.map
        (fun c -> (Cds.Sharing.data c).Data.name)
        r.Cds.Complete_data_scheduler.retention.Cds.Retention.retained
    in
    Alcotest.(check bool) "table retained" true
      (List.mem "tbl" retained_names);
    let tbl_loads =
      Msutil.Listx.sum_by
        (fun (step : Schedule.step) ->
          List.length
            (List.filter
               (fun (tr : Morphosys.Dma.t) ->
                 tr.Morphosys.Dma.label = "tbl@0"
                 && Morphosys.Dma.is_data tr.Morphosys.Dma.kind)
               step.Schedule.dma))
        s.Schedule.steps
    in
    Alcotest.(check int) "loaded exactly once for the whole run" 1 tbl_loads;
    (* and the CDS beats DS thanks to the table *)
    (match Sched.Data_scheduler.schedule config app clustering with
    | Ok ds ->
      let cycles x = (Msim.Executor.run config x).Msim.Metrics.total_cycles in
      Alcotest.(check bool) "cds faster than ds" true (cycles s < cycles ds)
    | Error e -> Alcotest.fail e)

let test_allocation_single_copy () =
  let app = app_with_table () in
  let clustering = clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  match Cds.Pipeline.allocation_report config app clustering with
  | Error e -> Alcotest.fail e
  | Ok result ->
    Alcotest.(check (list string)) "no failures" []
      result.Cds.Allocation_algorithm.failures;
    let cells =
      List.concat_map
        (fun (s : Cds.Allocation_algorithm.snapshot) ->
          Array.to_list s.Cds.Allocation_algorithm.cells
          |> List.filter_map (fun c -> c))
        result.Cds.Allocation_algorithm.snapshots
    in
    Alcotest.(check bool) "single table copy" true (List.mem "tbl@0" cells);
    Alcotest.(check bool) "no per-iteration copies" false
      (List.exists
         (fun c ->
           String.length c > 4 && String.sub c 0 4 = "tbl@" && c <> "tbl@0")
         cells)

let test_dsl_invariant_round_trip () =
  let text =
    "app t iterations 4\n\
     kernel k contexts 8 cycles 10\n\
     input tbl size 64 invariant -> k\n\
     input d size 16 -> k\n\
     final o size 8 from k\n"
  in
  match Appdsl.parse text with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    let tbl = Kernel_ir.Application.data_by_name spec.Appdsl.app "tbl" in
    Alcotest.(check bool) "parsed invariant" true tbl.Data.invariant;
    (match Appdsl.parse (Appdsl.render spec) with
    | Ok spec2 ->
      Alcotest.(check bool) "round-tripped invariant" true
        (Kernel_ir.Application.data_by_name spec2.Appdsl.app "tbl").Data.invariant
    | Error e -> Alcotest.fail e)

let test_looped_program_with_invariant () =
  let app = app_with_table () in
  let clustering = clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:640 in
  (* small FB: several rounds, so the reroller must keep the constant
     table's absolute reference inside the loop *)
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let unrolled = Codegen.Emit.program s in
    let looped = Codegen.Emit.program_looped s in
    let strip =
      List.filter (function Codegen.Instruction.Comment _ -> false | _ -> true)
    in
    Alcotest.(check bool) "compressed" true
      (Codegen.Instruction.size looped < Codegen.Instruction.size unrolled);
    Alcotest.(check bool) "unrolls identically" true
      (List.for_all2 Codegen.Instruction.equal (strip unrolled)
         (strip (Codegen.Instruction.unroll looped)));
    let cycles p =
      (Codegen.Interp.run config p).Codegen.Interp.cycles
    in
    Alcotest.(check int) "same cycles" (cycles unrolled) (cycles looped)

let tests =
  ( "invariant_data",
    [
      Alcotest.test_case "validation & instances" `Quick test_validation;
      Alcotest.test_case "split footprint" `Quick test_split_footprint;
      Alcotest.test_case "ds loads once per round" `Quick
        test_ds_loads_once_per_round;
      Alcotest.test_case "cds retains across rounds" `Quick
        test_cds_retains_across_rounds;
      Alcotest.test_case "allocation single copy" `Quick
        test_allocation_single_copy;
      Alcotest.test_case "dsl round trip" `Quick test_dsl_invariant_round_trip;
      Alcotest.test_case "looped program" `Quick
        test_looped_program_with_invariant;
    ] )
