(* Coverage for the remaining public surfaces: the workload registry, trace
   timelines, schedule pretty-printing, the Figure 5 golden ordering and
   context-memory eviction on a real schedule. *)

let test_registry () =
  Alcotest.(check bool) "has entries" true (Workloads.Registry.all <> []);
  Alcotest.(check bool) "names match entries" true
    (List.length (Workloads.Registry.names ())
    = List.length Workloads.Registry.all);
  (match Workloads.Registry.find "mpeg" with
  | Some e ->
    Alcotest.(check int) "mpeg default fb" 2048 e.Workloads.Registry.default_fb;
    (* every registry entry builds and has a valid default clustering *)
    List.iter
      (fun (entry : Workloads.Registry.entry) ->
        let app = entry.Workloads.Registry.app () in
        match
          Kernel_ir.Cluster.validate app (entry.Workloads.Registry.clustering app)
        with
        | Ok () -> ()
        | Error msg -> Alcotest.fail (entry.Workloads.Registry.name ^ ": " ^ msg))
      Workloads.Registry.all
  | None -> Alcotest.fail "mpeg missing");
  Alcotest.(check bool) "unknown name" true (Workloads.Registry.find "nope" = None)

let test_trace_timeline_consistency () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let config = Fixtures.default_config in
  match Sched.Data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let metrics, timeline = Msim.Executor.run_timed config s in
    (* steps tile the total time with no gaps or overlaps *)
    let rec check prev_end = function
      | [] -> prev_end
      | (t : Msim.Executor.timed_step) :: rest ->
        Alcotest.(check int) "contiguous" prev_end t.Msim.Executor.start_cycle;
        Alcotest.(check bool) "duration = max(compute,dma)" true
          (t.Msim.Executor.end_cycle - t.Msim.Executor.start_cycle
          = max t.Msim.Executor.compute_cost t.Msim.Executor.dma_cost);
        check t.Msim.Executor.end_cycle rest
    in
    Alcotest.(check int) "tiles the run" metrics.Msim.Metrics.total_cycles
      (check 0 timeline)

let test_schedule_pp () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  match Sched.Data_scheduler.schedule Fixtures.default_config app clustering with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let text = Format.asprintf "%a" Sched.Schedule.pp s in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("pp mentions " ^ needle) true
          (Astring_contains.contains text needle))
      [ "ds:"; "rf="; "step 0"; "compute Cl0"; "load " ]

let test_figure5_snapshot_order () =
  (* golden ordering of the Figure 5 snapshot captions: load phase, then
     kernel-major execution (k1 twice, k2 twice, k3 twice) *)
  let app = Workloads.Synthetic.figure5 () in
  let clustering = Workloads.Synthetic.figure5_clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:512 in
  match Cds.Complete_data_scheduler.schedule config app clustering with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let focus = Workloads.Synthetic.figure5_focus_cluster in
    let result =
      Cds.Allocation_algorithm.run
        ~capture:(fun ~cluster_id -> cluster_id = focus)
        config app clustering ~rf:r.Cds.Complete_data_scheduler.rf
        ~retention:r.Cds.Complete_data_scheduler.retention ~round:0
    in
    let captions =
      List.map
        (fun (s : Cds.Allocation_algorithm.snapshot) ->
          s.Cds.Allocation_algorithm.caption)
        result.Cds.Allocation_algorithm.snapshots
    in
    Alcotest.(check (list string)) "figure caption sequence"
      [
        "pre-Cl2"; "Cl2-load"; "Cl2-k1#0"; "Cl2-k1#1"; "Cl2-k2#0"; "Cl2-k2#1";
        "Cl2-k3#0"; "Cl2-k3#1"; "post-Cl2";
      ]
      captions

let test_interp_eviction_on_real_workload () =
  (* E3 has 3.5K context words against a 2K CM: the interpreter must evict
     context sets while replaying, and still match the executor *)
  let e = Workloads.Table1.by_id "E3" in
  match
    Cds.Complete_data_scheduler.schedule e.Workloads.Table1.config
      e.Workloads.Table1.app e.Workloads.Table1.clustering
  with
  | Error err -> Alcotest.fail err
  | Ok r ->
    let s = r.Cds.Complete_data_scheduler.schedule in
    let interp =
      Codegen.Interp.run e.Workloads.Table1.config (Codegen.Emit.program s)
    in
    Alcotest.(check bool) "evictions happened" true
      (interp.Codegen.Interp.context_evictions > 0);
    Alcotest.(check int) "still cycle-exact"
      (Msim.Executor.run e.Workloads.Table1.config s).Msim.Metrics.total_cycles
      interp.Codegen.Interp.cycles

let test_improvement_helpers_on_infeasible_cds () =
  (* a machine too small for anything: every helper degrades gracefully *)
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let config = Morphosys.Config.make ~fb_set_size:16 ~cm_capacity:64 () in
  let c = Cds.Pipeline.run config app clustering in
  Alcotest.(check bool) "cds infeasible" true (Result.is_error c.Cds.Pipeline.cds);
  Alcotest.(check (option (float 1.))) "no cds improvement" None
    (Cds.Pipeline.improvement c `Cds);
  Alcotest.(check (option int)) "no dt" None (Cds.Pipeline.dt_words c);
  Alcotest.(check (option int)) "no rf" None (Cds.Pipeline.ds_rf c)

let test_spec_file_loads () =
  (* the shipped sample spec parses and schedules *)
  let path = "../../../examples/specs/edge_detect.app" in
  match Appdsl.load_file path with
  | Error _ ->
    (* dune sandboxes tests in _build; fall back to an inline copy check *)
    Alcotest.(check bool) "missing file reported" true
      (Result.is_error (Appdsl.load_file "/nonexistent.app"))
  | Ok spec ->
    Alcotest.(check string) "name" "edge_detect"
      spec.Appdsl.app.Kernel_ir.Application.name

let tests =
  ( "misc_coverage",
    [
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "trace timeline" `Quick test_trace_timeline_consistency;
      Alcotest.test_case "schedule pp" `Quick test_schedule_pp;
      Alcotest.test_case "figure 5 caption order" `Quick
        test_figure5_snapshot_order;
      Alcotest.test_case "interp eviction (E3)" `Quick
        test_interp_eviction_on_real_workload;
      Alcotest.test_case "infeasible helpers" `Quick
        test_improvement_helpers_on_infeasible_cds;
      Alcotest.test_case "spec file" `Quick test_spec_file_loads;
    ] )
