(* The code generator: program structure, assembly round-trip, and the
   interpreter's cycle-exact agreement with the schedule executor. *)

module I = Codegen.Instruction
module Fb = Morphosys.Frame_buffer

let config = Morphosys.Config.m1 ~fb_set_size:1024

let ds_schedule () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  match Sched.Data_scheduler.schedule config app clustering with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let test_emit_structure () =
  let s = ds_schedule () in
  let program = Codegen.Emit.program s in
  (* ends with halt, has one dmaw per step *)
  (match Msutil.Listx.last program with
  | Some I.Halt -> ()
  | _ -> Alcotest.fail "program must end with halt");
  let count pred = List.length (List.filter pred program) in
  Alcotest.(check int) "one dmaw per step"
    (List.length s.Sched.Schedule.steps)
    (count (fun i -> i = I.Dma_wait));
  (* every kernel execution is preceded by its context broadcast *)
  let rec check_pairs = function
    | I.Cbcast { kernel = k1; _ } :: I.Execute { kernel = k2; _ } :: rest ->
      Alcotest.(check string) "broadcast matches execute" k1 k2;
      check_pairs rest
    | I.Execute _ :: _ -> Alcotest.fail "execute without preceding cbcast"
    | _ :: rest -> check_pairs rest
    | [] -> ()
  in
  check_pairs program;
  (* program DMA words = schedule DMA words *)
  Alcotest.(check int) "dma words preserved"
    (Sched.Schedule.total_dma_words s)
    (I.dma_words program)

let test_interp_matches_executor_toy () =
  let s = ds_schedule () in
  let program = Codegen.Emit.program s in
  let r = Codegen.Interp.run config program in
  let m = Msim.Executor.run config s in
  Alcotest.(check int) "cycles agree" m.Msim.Metrics.total_cycles
    r.Codegen.Interp.cycles;
  Alcotest.(check int) "dma busy agrees" m.Msim.Metrics.dma_cycles
    r.Codegen.Interp.dma_busy_cycles;
  Alcotest.(check int) "loads agree" m.Msim.Metrics.data_words_loaded
    r.Codegen.Interp.data_words_loaded;
  Alcotest.(check int) "stores agree" m.Msim.Metrics.data_words_stored
    r.Codegen.Interp.data_words_stored;
  Alcotest.(check int) "contexts agree" m.Msim.Metrics.context_words_loaded
    r.Codegen.Interp.context_words_loaded

let test_interp_matches_executor_table1 () =
  List.iter
    (fun (e : Workloads.Table1.experiment) ->
      let check (s : Sched.Schedule.t) =
        let r = Codegen.Interp.run e.Workloads.Table1.config (Codegen.Emit.program s) in
        let m = Msim.Executor.run e.Workloads.Table1.config s in
        Alcotest.(check int)
          (e.Workloads.Table1.id ^ "/" ^ s.Sched.Schedule.scheduler)
          m.Msim.Metrics.total_cycles r.Codegen.Interp.cycles
      in
      let app = e.Workloads.Table1.app
      and clustering = e.Workloads.Table1.clustering
      and config = e.Workloads.Table1.config in
      (match Sched.Basic_scheduler.schedule config app clustering with
      | Ok s -> check s
      | Error _ -> ());
      (match Sched.Data_scheduler.schedule config app clustering with
      | Ok s -> check s
      | Error _ -> ());
      match Cds.Complete_data_scheduler.schedule config app clustering with
      | Ok r -> check r.Cds.Complete_data_scheduler.schedule
      | Error _ -> ())
    (Workloads.Table1.all ())

let test_interp_fault_on_bad_store () =
  let program =
    [
      I.Stfb { set = Fb.Set_a; name = "ghost"; iter = I.Abs 0; words = 8 };
      I.Halt;
    ]
  in
  match Codegen.Interp.run config program with
  | exception Codegen.Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let test_interp_fault_on_missing_halt () =
  match Codegen.Interp.run config [ I.Dma_wait ] with
  | exception Codegen.Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let test_interp_fault_on_oversized_context () =
  let program = [ I.Ldctxt { label = "huge"; words = 10_000 }; I.Halt ] in
  match Codegen.Interp.run config program with
  | exception Codegen.Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let test_interp_context_eviction () =
  let small = Morphosys.Config.make ~fb_set_size:1024 ~cm_capacity:100 () in
  let program =
    [
      I.Ldctxt { label = "a"; words = 60 };
      I.Ldctxt { label = "b"; words = 60 };
      (* must evict a *)
      I.Halt;
    ]
  in
  let r = Codegen.Interp.run small program in
  Alcotest.(check int) "one eviction" 1 r.Codegen.Interp.context_evictions;
  Alcotest.(check int) "both transfers charged" 120
    r.Codegen.Interp.context_words_loaded

let test_asm_round_trip_hand () =
  let program =
    [
      I.Comment "hand-written";
      I.Ldctxt { label = "Cl0"; words = 768 };
      I.Ldfb { set = Fb.Set_a; name = "coeff"; iter = I.Abs 0; words = 256 };
      I.Stfb { set = Fb.Set_b; name = "out"; iter = I.Abs 3; words = 64 };
      I.Dma_wait;
      I.Cbcast { kernel = "iq"; contexts = 384 };
      I.Execute { kernel = "iq"; cycles = 520; iterations = 2 };
      I.Loop
        {
          start = 4;
          stride = 2;
          count = 3;
          body =
            [
              I.Ldfb
                { set = Fb.Set_a; name = "coeff"; iter = I.Rel 0; words = 256 };
              I.Wrfb { set = Fb.Set_a; name = "dequant"; iter = I.Rel 1 };
              I.Stfb
                { set = Fb.Set_b; name = "out"; iter = I.Rel (-1); words = 64 };
              I.Dma_wait;
            ];
        };
      I.Halt;
    ]
  in
  match Codegen.Asm.parse (Codegen.Asm.to_string program) with
  | Ok parsed ->
    Alcotest.(check int) "same length" (List.length program) (List.length parsed);
    List.iter2
      (fun a b -> Alcotest.(check bool) "instruction preserved" true (I.equal a b))
      program parsed
  | Error e -> Alcotest.fail e

let test_asm_parse_errors () =
  let expect_error text =
    match Codegen.Asm.parse text with
    | Error msg ->
      Alcotest.(check bool) "mentions line" true
        (Astring_contains.contains msg "line")
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ text)
  in
  expect_error "frobnicate x, y";
  expect_error "ldfb Q, label@0, 12";
  expect_error "ldfb A, noatsign, 12";
  expect_error "exec k, notanint, 2";
  expect_error "ldctxt onlyonearg";
  expect_error "loop 1, 2, 3\ndmaw";
  expect_error "endloop"

let prop_asm_round_trip =
  QCheck.Test.make ~name:"emitted programs round-trip through asm" ~count:50
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      match Sched.Data_scheduler.schedule Fixtures.big_config app clustering with
      | Error _ -> false
      | Ok s -> (
        let program = Codegen.Emit.program s in
        match Codegen.Asm.parse (Codegen.Asm.to_string program) with
        | Ok parsed -> List.for_all2 I.equal program parsed
        | Error _ -> false))

let prop_interp_matches_executor =
  QCheck.Test.make ~name:"interpreter = executor on random apps" ~count:75
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      match Cds.Complete_data_scheduler.schedule config app clustering with
      | Error _ -> false
      | Ok r ->
        let s = r.Cds.Complete_data_scheduler.schedule in
        let interp = Codegen.Interp.run config (Codegen.Emit.program s) in
        let metrics = Msim.Executor.run config s in
        interp.Codegen.Interp.cycles = metrics.Msim.Metrics.total_cycles)

let test_looped_unrolls_to_unrolled () =
  List.iter
    (fun (e : Workloads.Table1.experiment) ->
      let app = e.Workloads.Table1.app
      and clustering = e.Workloads.Table1.clustering
      and config = e.Workloads.Table1.config in
      match Cds.Complete_data_scheduler.schedule config app clustering with
      | Error _ -> ()
      | Ok r ->
        let s = r.Cds.Complete_data_scheduler.schedule in
        let strip = List.filter (function I.Comment _ -> false | _ -> true) in
        let unrolled = strip (Codegen.Emit.program s) in
        let looped = Codegen.Emit.program_looped s in
        let expanded = strip (I.unroll looped) in
        Alcotest.(check int)
          (e.Workloads.Table1.id ^ " same length")
          (List.length unrolled) (List.length expanded);
        List.iter2
          (fun a b ->
            if not (I.equal a b) then
              Alcotest.fail
                (Format.asprintf "%s: %a <> %a" e.Workloads.Table1.id I.pp a
                   I.pp b))
          unrolled expanded)
    (Workloads.Table1.all ())

let test_looped_compresses () =
  (* MPEG at 2K runs 30 rounds: the looped program must be much smaller *)
  let e = Workloads.Table1.by_id "MPEG" in
  match
    Cds.Complete_data_scheduler.schedule e.Workloads.Table1.config
      e.Workloads.Table1.app e.Workloads.Table1.clustering
  with
  | Error err -> Alcotest.fail err
  | Ok r ->
    let s = r.Cds.Complete_data_scheduler.schedule in
    let unrolled = I.size (Codegen.Emit.program s) in
    let looped = I.size (Codegen.Emit.program_looped s) in
    Alcotest.(check bool)
      (Printf.sprintf "looped %d << unrolled %d" looped unrolled)
      true
      (looped * 5 < unrolled);
    (* and it still interprets to the same cycle count *)
    let cycles p =
      (Codegen.Interp.run e.Workloads.Table1.config p).Codegen.Interp.cycles
    in
    Alcotest.(check int) "same interpreted cycles"
      (cycles (Codegen.Emit.program s))
      (cycles (Codegen.Emit.program_looped s))

let test_rel_outside_loop_faults () =
  let program =
    [ I.Ldfb { set = Fb.Set_a; name = "d"; iter = I.Rel 0; words = 4 }; I.Halt ]
  in
  match Codegen.Interp.run config program with
  | exception Codegen.Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let prop_looped_interp_matches =
  QCheck.Test.make ~name:"looped program = executor on random apps" ~count:50
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      let config = Fixtures.big_config in
      match Cds.Complete_data_scheduler.schedule config app clustering with
      | Error _ -> false
      | Ok r ->
        let s = r.Cds.Complete_data_scheduler.schedule in
        let interp =
          Codegen.Interp.run config (Codegen.Emit.program_looped s)
        in
        let metrics = Msim.Executor.run config s in
        interp.Codegen.Interp.cycles = metrics.Msim.Metrics.total_cycles
        && interp.Codegen.Interp.data_words_loaded
           = metrics.Msim.Metrics.data_words_loaded)

let prop_looped_asm_round_trip =
  QCheck.Test.make ~name:"looped programs round-trip through asm" ~count:50
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      match
        Sched.Data_scheduler.schedule Fixtures.big_config app clustering
      with
      | Error _ -> false
      | Ok s -> (
        let program = Codegen.Emit.program_looped s in
        match Codegen.Asm.parse (Codegen.Asm.to_string program) with
        | Ok parsed -> List.for_all2 I.equal program parsed
        | Error _ -> false))

let tests =
  ( "codegen",
    [
      Alcotest.test_case "emit structure" `Quick test_emit_structure;
      Alcotest.test_case "interp = executor (toy)" `Quick
        test_interp_matches_executor_toy;
      Alcotest.test_case "interp = executor (table1)" `Quick
        test_interp_matches_executor_table1;
      Alcotest.test_case "fault: bad store" `Quick test_interp_fault_on_bad_store;
      Alcotest.test_case "fault: missing halt" `Quick
        test_interp_fault_on_missing_halt;
      Alcotest.test_case "fault: oversized context" `Quick
        test_interp_fault_on_oversized_context;
      Alcotest.test_case "context eviction" `Quick test_interp_context_eviction;
      Alcotest.test_case "asm round trip" `Quick test_asm_round_trip_hand;
      Alcotest.test_case "asm parse errors" `Quick test_asm_parse_errors;
      QCheck_alcotest.to_alcotest prop_asm_round_trip;
      QCheck_alcotest.to_alcotest prop_interp_matches_executor;
      Alcotest.test_case "looped unrolls to unrolled" `Quick
        test_looped_unrolls_to_unrolled;
      Alcotest.test_case "looped compresses" `Quick test_looped_compresses;
      Alcotest.test_case "rel outside loop faults" `Quick
        test_rel_outside_loop_faults;
      QCheck_alcotest.to_alcotest prop_looped_interp_matches;
      QCheck_alcotest.to_alcotest prop_looped_asm_round_trip;
    ] )
