test/test_info_extractor.ml: Alcotest Application Cluster Data Fixtures Info_extractor Kernel_ir List QCheck QCheck_alcotest Workloads
