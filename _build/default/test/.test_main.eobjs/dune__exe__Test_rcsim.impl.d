test/test_rcsim.ml: Alcotest Array Format Kernel_ir List Morphosys Printf QCheck QCheck_alcotest Rcsim
