test/test_pretty.ml: Alcotest Astring_contains Format Msutil Pretty
