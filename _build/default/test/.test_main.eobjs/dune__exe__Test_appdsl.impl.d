test/test_appdsl.ml: Alcotest Appdsl Array Astring_contains Cds Kernel_ir List Morphosys Printf QCheck QCheck_alcotest Result Workloads
