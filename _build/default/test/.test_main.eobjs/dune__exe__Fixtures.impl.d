test/fixtures.ml: Kernel_ir Morphosys
