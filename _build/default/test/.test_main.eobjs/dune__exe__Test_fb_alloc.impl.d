test/test_fb_alloc.ml: Alcotest Array Astring_contains Fb_alloc Frag_stats Free_list Layout List Msutil QCheck QCheck_alcotest
