test/test_schedulers.ml: Alcotest Cds Fixtures Kernel_ir List Morphosys Msim QCheck QCheck_alcotest Result Sched Workloads
