test/test_misc_coverage.ml: Alcotest Appdsl Astring_contains Cds Codegen Fixtures Format Kernel_ir List Morphosys Msim Result Sched Workloads
