test/test_ds_formula.ml: Alcotest Application Fixtures Info_extractor Kernel_ir List QCheck QCheck_alcotest Sched Workloads
