test/test_pipeline.ml: Alcotest Cds Fixtures Kernel_ir Morphosys Msim Result
