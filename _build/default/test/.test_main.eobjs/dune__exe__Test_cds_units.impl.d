test/test_cds_units.ml: Alcotest Astring_contains Cds Fixtures Kernel_ir List Morphosys QCheck QCheck_alcotest Retention Sched Sharing Time_factor Workloads
