test/test_invariant.ml: Alcotest Appdsl Array Cds Codegen Kernel_ir List Morphosys Msim Msutil Sched String
