test/test_vcd.ml: Alcotest Astring_contains Fixtures List Msim Msutil Sched String
