test/test_sched_units.ml: Alcotest Fixtures Kernel_ir List Morphosys Msutil QCheck QCheck_alcotest Result Sched Workloads
