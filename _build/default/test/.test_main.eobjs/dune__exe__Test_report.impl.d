test/test_report.ml: Alcotest Astring_contains Cds Codegen Fixtures Lazy List Morphosys Msim Option Report Result String Workloads
