test/test_listx.ml: Alcotest List Listx Msutil QCheck QCheck_alcotest String
