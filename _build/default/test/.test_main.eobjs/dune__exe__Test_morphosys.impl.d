test/test_morphosys.ml: Alcotest Array Astring_contains Config Context_memory Dma Format Frame_buffer List Machine Morphosys Msutil Rc_array
