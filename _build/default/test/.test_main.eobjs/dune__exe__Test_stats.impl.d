test/test_stats.ml: Alcotest Array List Msutil QCheck QCheck_alcotest Stats
