test/test_dse.ml: Alcotest Astring_contains Fixtures List Option Report String Workloads
