test/test_step_builder.ml: Alcotest Cds Fixtures Kernel_ir List Morphosys Msim Msutil QCheck QCheck_alcotest Result Sched Workloads
