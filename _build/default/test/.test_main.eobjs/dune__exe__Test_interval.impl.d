test/test_interval.ml: Alcotest Format Interval Msutil QCheck QCheck_alcotest
