test/test_allocation.ml: Alcotest Array Astring_contains Cds Fixtures Kernel_ir List Morphosys Printf QCheck QCheck_alcotest Sched Workloads
