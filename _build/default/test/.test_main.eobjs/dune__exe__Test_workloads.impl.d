test/test_workloads.ml: Alcotest Cds Kernel_ir List Morphosys Printf QCheck Random Result Sched Workloads
