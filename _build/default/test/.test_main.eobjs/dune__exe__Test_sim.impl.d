test/test_sim.ml: Alcotest Astring_contains Fixtures Format Kernel_ir List Morphosys Msim Sched
