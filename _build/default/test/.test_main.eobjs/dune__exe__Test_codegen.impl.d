test/test_codegen.ml: Alcotest Astring_contains Cds Codegen Fixtures Format List Morphosys Msim Msutil Printf QCheck QCheck_alcotest Sched Workloads
