test/test_kernel_ir.ml: Alcotest Application Astring_contains Builder Cluster Data Dot Fixtures Kernel Kernel_ir List Morphosys Result
