(* Hand-built applications shared by several test modules. *)

module B = Kernel_ir.Builder
module Cluster = Kernel_ir.Cluster

(* Four kernels, two clusters (sets A and B). Exercises every data role:
   shared external data across sets, an intra-cluster intermediate, a
   cross-cluster result and a result that is both final and consumed. *)
let toy () =
  B.create "toy" ~iterations:4
  |> B.kernel "k0" ~contexts:100 ~cycles:200
  |> B.kernel "k1" ~contexts:100 ~cycles:200
  |> B.kernel "k2" ~contexts:100 ~cycles:200
  |> B.kernel "k3" ~contexts:100 ~cycles:200
  |> B.input "a" ~size:100 ~consumers:[ "k0"; "k2" ]
  |> B.input "b" ~size:50 ~consumers:[ "k1" ]
  |> B.result "r01" ~size:40 ~producer:"k0" ~consumers:[ "k1" ]
  |> B.result "r03" ~size:30 ~producer:"k0" ~consumers:[ "k3" ]
  |> B.result "f1" ~final:true ~size:25 ~producer:"k1" ~consumers:[ "k2" ]
  |> B.final "f3" ~size:20 ~producer:"k3"
  |> B.build

let toy_clustering app = Cluster.of_partition app [ 2; 2 ]

(* Six kernels, three clusters; clusters 0 and 2 share FB set A and have
   both a shared datum and a shared result between them — the minimal
   retention scenario. *)
let same_set () =
  B.create "same_set" ~iterations:6
  |> B.kernel "k0" ~contexts:64 ~cycles:100
  |> B.kernel "k1" ~contexts:64 ~cycles:100
  |> B.kernel "k2" ~contexts:64 ~cycles:100
  |> B.kernel "k3" ~contexts:64 ~cycles:100
  |> B.kernel "k4" ~contexts:64 ~cycles:100
  |> B.kernel "k5" ~contexts:64 ~cycles:100
  |> B.input "sh" ~size:60 ~consumers:[ "k0"; "k4" ]
  |> B.input "p0" ~size:40 ~consumers:[ "k0" ]
  |> B.input "p1" ~size:40 ~consumers:[ "k2" ]
  |> B.input "p2" ~size:40 ~consumers:[ "k4" ]
  |> B.result "i0" ~size:30 ~producer:"k0" ~consumers:[ "k1" ]
  |> B.result "rshare" ~size:20 ~producer:"k1" ~consumers:[ "k5" ]
  |> B.result "i1" ~size:30 ~producer:"k2" ~consumers:[ "k3" ]
  |> B.final "out0" ~size:10 ~producer:"k1"
  |> B.final "out1" ~size:10 ~producer:"k3"
  |> B.final "out2" ~size:10 ~producer:"k5"
  |> B.build

let same_set_clustering app = Cluster.of_partition app [ 2; 2; 2 ]

let default_config = Morphosys.Config.m1 ~fb_set_size:1024

let big_config = Morphosys.Config.m1 ~fb_set_size:65536
(* roomy machine for property tests: every random app is feasible *)
