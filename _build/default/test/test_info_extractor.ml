open Kernel_ir
module IE = Info_extractor

let names = List.map (fun (d : Data.t) -> d.Data.name)

let profile_toy cluster_id =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  (app, IE.profile app clustering (Cluster.find clustering cluster_id))

let test_cluster0_classification () =
  let _, p = profile_toy 0 in
  Alcotest.(check (list string)) "external inputs" [ "a"; "b" ]
    (names p.IE.external_inputs);
  Alcotest.(check (list string)) "outliving" [ "r03"; "f1" ]
    (names p.IE.outliving);
  Alcotest.(check int) "contexts" 200 p.IE.contexts;
  Alcotest.(check int) "compute cycles" 400 p.IE.compute_cycles;
  let kp0 = List.nth p.IE.kernel_profiles 0 in
  let kp1 = List.nth p.IE.kernel_profiles 1 in
  (* 'a' is consumed by k0 here and also by k2 in the next cluster, but its
     last IN-CLUSTER consumer is k0, so it is charged to k0 *)
  Alcotest.(check (list string)) "d_0" [ "a" ] (names kp0.IE.d_objects);
  Alcotest.(check (list string)) "d_1" [ "b" ] (names kp1.IE.d_objects);
  (* r03 outlives (consumed by k3 in cluster 1); r01 is a pure intermediate *)
  Alcotest.(check (list string)) "rout_0" [ "r03" ] (names kp0.IE.rout_objects);
  Alcotest.(check (list string)) "intermediates of k0" [ "r01" ]
    (List.map (fun (d, _) -> d.Data.name) kp0.IE.intermediate_objects);
  Alcotest.(check (list int)) "r01 dies at k1" [ 1 ]
    (List.map snd kp0.IE.intermediate_objects);
  (* f1 is final AND consumed later: outlives, charged as rout of k1 *)
  Alcotest.(check (list string)) "rout_1" [ "f1" ] (names kp1.IE.rout_objects)

let test_cluster1_classification () =
  let _, p = profile_toy 1 in
  (* cluster 1 consumes a (k2), f1 (k2) and r03 (k3) — all produced outside *)
  Alcotest.(check (list string)) "external inputs" [ "a"; "r03"; "f1" ]
    (names p.IE.external_inputs);
  (* f3 is final: outlives *)
  Alcotest.(check (list string)) "outliving" [ "f3" ] (names p.IE.outliving)

let test_outlives_and_last_consumer () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let c0 = Cluster.find clustering 0 in
  let r01 = Application.data_by_name app "r01" in
  let r03 = Application.data_by_name app "r03" in
  Alcotest.(check bool) "r01 dies in cluster" false
    (IE.outlives clustering c0 r01);
  Alcotest.(check bool) "r03 outlives" true (IE.outlives clustering c0 r03);
  Alcotest.(check (option int)) "last consumer of a in c0" (Some 0)
    (IE.last_consumer_in c0 (Application.data_by_name app "a"));
  Alcotest.(check (option int)) "r03 has no consumer in c0" None
    (IE.last_consumer_in c0 r03)

let test_sharing_toy () =
  let app = Fixtures.toy () in
  let clustering = Fixtures.toy_clustering app in
  let sharing = IE.sharing app clustering in
  (* 'a' is shared data (clusters 0 and 1); r03 and f1 are shared results *)
  let kinds =
    List.map
      (function
        | IE.Shared_data { data; consumer_clusters } ->
          ("D", data.Data.name, consumer_clusters)
        | IE.Shared_result { data; producer_cluster; consumer_clusters } ->
          ("R", data.Data.name, producer_cluster :: consumer_clusters))
      sharing
  in
  Alcotest.(check (list (triple string string (list int))))
    "sharing sets"
    [ ("D", "a", [ 0; 1 ]); ("R", "r03", [ 0; 1 ]); ("R", "f1", [ 0; 1 ]) ]
    kinds

let test_sharing_same_set () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  let sharing = IE.sharing app clustering in
  Alcotest.(check int) "two candidates" 2 (List.length sharing);
  List.iter
    (fun s ->
      match s with
      | IE.Shared_data { data; consumer_clusters } ->
        Alcotest.(check string) "shared datum" "sh" data.Data.name;
        Alcotest.(check (list int)) "consumers 0 and 2" [ 0; 2 ] consumer_clusters
      | IE.Shared_result { data; producer_cluster; consumer_clusters } ->
        Alcotest.(check string) "shared result" "rshare" data.Data.name;
        Alcotest.(check int) "produced in 0" 0 producer_cluster;
        Alcotest.(check (list int)) "consumed in 2" [ 2 ] consumer_clusters)
    sharing

(* Property: every data object of a random application is classified in
   exactly one role per cluster walk — the per-kernel d/rout/intermediate
   lists of a cluster's profile never overlap and cover exactly the
   cluster-related objects. *)
let prop_classification_partition =
  QCheck.Test.make ~name:"profile classifies each object once" ~count:100
    Workloads.Random_app.arb_app_with_clustering (fun (app, clustering) ->
      List.for_all
        (fun (p : IE.cluster_profile) ->
          let mentioned =
            List.concat_map
              (fun kp ->
                List.map (fun (d : Data.t) -> d.Data.id) kp.IE.d_objects
                @ List.map (fun (d : Data.t) -> d.Data.id) kp.IE.rout_objects
                @ List.map
                    (fun ((d : Data.t), _) -> d.Data.id)
                    kp.IE.intermediate_objects)
              p.IE.kernel_profiles
          in
          List.length mentioned = List.length (List.sort_uniq compare mentioned))
        (IE.profiles app clustering))

let tests =
  ( "info_extractor",
    [
      Alcotest.test_case "cluster 0 classification" `Quick
        test_cluster0_classification;
      Alcotest.test_case "cluster 1 classification" `Quick
        test_cluster1_classification;
      Alcotest.test_case "outlives / last consumer" `Quick
        test_outlives_and_last_consumer;
      Alcotest.test_case "sharing (toy)" `Quick test_sharing_toy;
      Alcotest.test_case "sharing (same set)" `Quick test_sharing_same_set;
      QCheck_alcotest.to_alcotest prop_classification_partition;
    ] )
