(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Figure 6, Figure 5, Figure 3, the MPEG feasibility
   and allocator-quality claims), runs the ablation study, and finishes
   with bechamel microbenchmarks of the scheduler components.

   Usage: dune exec bench/main.exe [-- --no-micro] *)

let () =
  let no_micro = Array.exists (fun a -> a = "--no-micro") Sys.argv in
  let (_ : Report.Table_report.row list) = Report.Table_report.run () in
  Report.Figure_report.run ();
  if not no_micro then Micro_bench.run ()
