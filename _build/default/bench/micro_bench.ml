(* Bechamel microbenchmarks of the scheduler components themselves — one
   Test.make per reproduced table/figure pipeline plus the hot inner
   pieces (DS(C) formula, retention pass, allocator, simulator). *)

open Bechamel
open Toolkit

let config = Morphosys.Config.m1 ~fb_set_size:2048

let e1 = Workloads.Synthetic.e1 ()
let e1_clustering = Workloads.Synthetic.e1_clustering e1
let mpeg = Workloads.Mpeg.app ()
let mpeg_clustering = Workloads.Mpeg.clustering mpeg
let sld = Workloads.Atr.sld ()
let sld_clustering = Workloads.Atr.sld_clustering sld
let sld_config = Morphosys.Config.m1 ~fb_set_size:8192

let cds_schedule () =
  match Cds.Complete_data_scheduler.schedule config mpeg mpeg_clustering with
  | Ok r -> r.Cds.Complete_data_scheduler.schedule
  | Error e -> failwith e

let prebuilt = cds_schedule ()

let test_table1_row name app clustering cfg =
  Test.make ~name (Staged.stage (fun () ->
      ignore (Cds.Pipeline.run ~validate:false cfg app clustering)))

let tests =
  [
    (* one end-to-end pipeline run per reproduced artifact *)
    test_table1_row "table1/E1" e1 e1_clustering
      (Morphosys.Config.m1 ~fb_set_size:1024);
    test_table1_row "table1+fig6/MPEG" mpeg mpeg_clustering config;
    test_table1_row "table1+fig6/ATR-SLD" sld sld_clustering sld_config;
    Test.make ~name:"fig5/allocator"
      (Staged.stage (fun () ->
           let app = Workloads.Synthetic.figure5 () in
           let clustering = Workloads.Synthetic.figure5_clustering app in
           let cfg = Morphosys.Config.m1 ~fb_set_size:512 in
           match Cds.Complete_data_scheduler.schedule cfg app clustering with
           | Ok r ->
             ignore
               (Cds.Allocation_algorithm.run cfg app clustering
                  ~rf:r.Cds.Complete_data_scheduler.rf
                  ~retention:r.Cds.Complete_data_scheduler.retention ~round:0)
           | Error e -> failwith e));
    (* hot components *)
    Test.make ~name:"component/ds_formula"
      (Staged.stage (fun () ->
           ignore (Sched.Data_scheduler.footprints mpeg mpeg_clustering)));
    Test.make ~name:"component/retention"
      (Staged.stage (fun () ->
           ignore (Cds.Retention.choose sld_config sld sld_clustering ~rf:1)));
    Test.make ~name:"component/simulator"
      (Staged.stage (fun () -> ignore (Msim.Executor.run config prebuilt)));
    Test.make ~name:"component/validator"
      (Staged.stage (fun () -> ignore (Msim.Validate.check prebuilt)));
    Test.make ~name:"component/kernel_scheduler"
      (Staged.stage (fun () ->
           ignore
             (Cds.Pipeline.auto_clustering
                (Morphosys.Config.m1 ~fb_set_size:1024)
                (Fixture_app.small ()))));
  ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  let results =
    List.map
      (fun r -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                               ~predictors:[| Measure.run |]) Instance.monotonic_clock r)
      raw
  in
  (tests, results)

let run () =
  Format.printf "@\n== Microbenchmarks (bechamel, monotonic clock) ==@\n@\n";
  let tests, results = benchmark () in
  List.iter2
    (fun test result ->
      let name = Test.Elt.name (List.hd (Test.elements test)) in
      Hashtbl.iter
        (fun key ols ->
          if key = name then
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              Format.printf "%-28s %12.0f ns/run@\n" name est
            | _ -> Format.printf "%-28s (no estimate)@\n" name)
        result)
    tests results
