bench/main.ml: Array Micro_bench Report Sys
