bench/fixture_app.ml: Kernel_ir
