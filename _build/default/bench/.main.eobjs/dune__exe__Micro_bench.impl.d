bench/micro_bench.ml: Analyze Bechamel Benchmark Cds Fixture_app Format Hashtbl Instance List Measure Morphosys Msim Sched Staged Test Time Toolkit Workloads
