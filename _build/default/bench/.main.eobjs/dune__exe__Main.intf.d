bench/main.mli:
