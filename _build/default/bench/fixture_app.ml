(* A small fixed application for benchmarking the kernel-scheduler search
   (6 kernels -> 32 candidate partitions). *)

module B = Kernel_ir.Builder

let small () =
  B.create "bench_small" ~iterations:8
  |> B.kernel "a" ~contexts:128 ~cycles:200
  |> B.kernel "b" ~contexts:128 ~cycles:200
  |> B.kernel "c" ~contexts:128 ~cycles:200
  |> B.kernel "d" ~contexts:128 ~cycles:200
  |> B.kernel "e" ~contexts:128 ~cycles:200
  |> B.kernel "f" ~contexts:128 ~cycles:200
  |> B.input "i0" ~size:64 ~consumers:[ "a"; "d" ]
  |> B.input "i1" ~size:64 ~consumers:[ "b" ]
  |> B.input "i2" ~size:64 ~consumers:[ "e" ]
  |> B.result "t0" ~size:48 ~producer:"a" ~consumers:[ "b" ]
  |> B.result "t1" ~size:48 ~producer:"b" ~consumers:[ "c" ]
  |> B.result "t2" ~size:48 ~producer:"c" ~consumers:[ "d" ]
  |> B.result "t3" ~size:48 ~producer:"d" ~consumers:[ "e" ]
  |> B.result "t4" ~size:48 ~producer:"e" ~consumers:[ "f" ]
  |> B.final "y" ~size:64 ~producer:"f"
  |> B.build
