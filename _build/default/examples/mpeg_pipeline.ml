(* The MPEG-2 decoder pipeline from the paper's evaluation: sweep the
   frame-buffer size and watch feasibility, the reuse factor and the
   improvement change — including the paper's claim that the Basic
   Scheduler cannot run MPEG with a 1K frame buffer while DS/CDS can.

     dune exec examples/mpeg_pipeline.exe *)

let () =
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  Format.printf "MPEG-2 decoder kernels:@.";
  Array.iter
    (fun k -> Format.printf "  %a@." Kernel_ir.Kernel.pp k)
    app.Kernel_ir.Application.kernels;
  Format.printf "kernel schedule: %a@.@."
    Kernel_ir.Cluster.pp_clustering clustering;

  let header =
    [ "FB set"; "basic"; "ds"; "cds"; "RF"; "DS%"; "CDS%"; "DT w/iter" ]
  in
  let rows =
    List.map
      (fun fb_set_size ->
        let config = Morphosys.Config.m1 ~fb_set_size in
        let c = Cds.Pipeline.run config app clustering in
        let feas = function Ok _ -> "runs" | Error _ -> "-" in
        let pct = function
          | Some p -> Msutil.Pretty.pct p
          | None -> "-"
        in
        [
          Msutil.Pretty.kbytes fb_set_size;
          feas c.Cds.Pipeline.basic;
          feas c.Cds.Pipeline.ds;
          feas c.Cds.Pipeline.cds;
          (match Cds.Pipeline.ds_rf c with
          | Some rf -> string_of_int rf
          | None -> "-");
          pct (Cds.Pipeline.improvement c `Ds);
          pct (Cds.Pipeline.improvement c `Cds);
          (match Cds.Pipeline.dt_words c with
          | Some w -> string_of_int w
          | None -> "-");
        ])
      [ 800; 1024; 1536; 2048; 3072; 4096 ]
  in
  Msutil.Pretty.table ~header ~rows Format.std_formatter;
  Format.printf
    "@.At 1K the Basic Scheduler's no-replacement footprint does not fit,@.";
  Format.printf
    "but in-place replacement (DS/CDS) shrinks the working set below 1K.@."
