(* The RC-array functional simulator: run real kernels from the kernel
   library on the 8x8 array and check them against their reference models,
   then package the library kernels as an application and schedule it —
   the full paper pipeline from contexts to data schedule.

     dune exec examples/rc_array_demo.exe *)

let config = Morphosys.Config.m1 ~fb_set_size:1024

let show_vector name v =
  Format.printf "%-10s [%s]@." name
    (String.concat "; " (Array.to_list (Array.map string_of_int v)))

let () =
  (* 1. Compute an 8-point DCT on the array. *)
  let x = [| 64; 58; 52; 43; 36; 30; 28; 27 |] in
  let array = Rcsim.Array_sim.create config in
  (match Rcsim.Array_sim.run array (Rcsim.Kernels.dct8 ~x) with
  | [ y ] ->
    show_vector "input" x;
    show_vector "dct (array)" y;
    show_vector "dct (ref)" (Rcsim.Kernels.dct8_ref ~x);
    assert (y = Rcsim.Kernels.dct8_ref ~x)
  | _ -> failwith "unexpected output shape");

  (* 2. Motion-estimation SAD of two tiles. *)
  let a = Array.init 8 (fun r -> Array.init 8 (fun c -> (r * 11) + c)) in
  let b = Array.init 8 (fun r -> Array.init 8 (fun c -> (r * 11) + c + (c mod 3))) in
  Rcsim.Array_sim.reset array;
  (match Rcsim.Array_sim.run array (Rcsim.Kernels.sad_rows ~a ~b) with
  | [ sads ] ->
    show_vector "row SADs" sads;
    assert (sads = Rcsim.Kernels.sad_rows_ref ~a ~b)
  | _ -> failwith "unexpected output shape");

  (* 3. Block motion estimation: find the displacement of a shifted block
        by exhaustive SAD search on the array. *)
  let reference =
    Array.init 24 (fun r -> Array.init 24 (fun c -> ((r * 13) + (c * 5)) mod 200))
  in
  let block = Rcsim.Motion.window reference ~row:11 ~col:6 in
  Rcsim.Array_sim.reset array;
  let v = Rcsim.Motion.search array ~reference ~block ~origin:(9, 9) ~range:4 in
  Format.printf "motion vector: (dx=%d, dy=%d) sad=%d@." v.Rcsim.Motion.dx
    v.Rcsim.Motion.dy v.Rcsim.Motion.sad;
  assert (v.Rcsim.Motion.sad = 0);

  (* 4. Build an application from kernel-library entries and schedule it:
        context counts and cycle estimates come from the real mappings. *)
  let entries =
    List.filter_map Rcsim.Kernel_library.find [ "dct8"; "saxpy"; "sad8x8" ]
  in
  let kernels =
    List.mapi (fun id e -> Rcsim.Kernel_library.to_kernel config ~id e) entries
  in
  List.iter (fun k -> Format.printf "library kernel: %a@." Kernel_ir.Kernel.pp k) kernels;
  let app =
    Kernel_ir.Application.make ~name:"library_pipeline" ~kernels
      ~data:
        [
          Kernel_ir.Data.make ~id:0 ~name:"blocks" ~size:128
            ~producer:Kernel_ir.Data.External ~consumers:[ 0 ] ~final:false ();
          Kernel_ir.Data.make ~id:1 ~name:"freq" ~size:128
            ~producer:(Kernel_ir.Data.Produced_by 0) ~consumers:[ 1 ]
            ~final:false ();
          Kernel_ir.Data.make ~id:2 ~name:"scaled" ~size:128
            ~producer:(Kernel_ir.Data.Produced_by 1) ~consumers:[ 2 ]
            ~final:false ();
          Kernel_ir.Data.make ~id:3 ~name:"ref_tile" ~size:64
            ~producer:Kernel_ir.Data.External ~consumers:[ 2 ] ~final:false ();
          Kernel_ir.Data.make ~id:4 ~name:"scores" ~size:32
            ~producer:(Kernel_ir.Data.Produced_by 2) ~consumers:[] ~final:true ();
        ]
      ~iterations:12
  in
  match Cds.Pipeline.auto_clustering config app with
  | None -> failwith "no feasible clustering"
  | Some (clustering, cycles) ->
    Format.printf "scheduled %s: %a in %d cycles@."
      app.Kernel_ir.Application.name Kernel_ir.Cluster.pp_clustering clustering
      cycles
