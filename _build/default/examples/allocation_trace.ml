(* Reproduction of the paper's Figure 5: the frame-buffer allocation states
   while the 3-kernel cluster executes with RF = 2 — shared data D13/D37
   placed first from the upper addresses, intermediates r13/r23 from the
   lower addresses, the retained shared result R3,5 surviving the cluster,
   and the final result Rout drained at the end.

     dune exec examples/allocation_trace.exe *)

module AA = Cds.Allocation_algorithm

let () =
  let app = Workloads.Synthetic.figure5 () in
  let clustering = Workloads.Synthetic.figure5_clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:512 in
  match Cds.Complete_data_scheduler.schedule config app clustering with
  | Error e -> failwith e
  | Ok r ->
    Format.printf "RF = %d (as in the figure)@." r.Cds.Complete_data_scheduler.rf;
    Format.printf "%a@." Cds.Retention.pp_decision
      r.Cds.Complete_data_scheduler.retention;
    let focus = Workloads.Synthetic.figure5_focus_cluster in
    let result =
      AA.run
        ~capture:(fun ~cluster_id -> cluster_id = focus)
        config app clustering ~rf:r.Cds.Complete_data_scheduler.rf
        ~retention:r.Cds.Complete_data_scheduler.retention ~round:0
    in
    let labels = List.map (fun s -> s.AA.caption) result.AA.snapshots in
    let cells = List.map (fun s -> s.AA.cells) result.AA.snapshots in
    print_string (Fb_alloc.Layout.render_snapshots ~cell_width:8 ~labels cells);
    Format.printf "@.splits: %d  failures: %d@." result.AA.splits
      (List.length result.AA.failures);
    List.iter
      (fun (set, stats) ->
        Format.printf "set %a end-of-round: %a@." Morphosys.Frame_buffer.pp_set
          set Fb_alloc.Frag_stats.pp stats)
      result.AA.stats
