examples/atr_recognition.ml: Cds Format Kernel_ir List Morphosys Msutil Workloads
