examples/allocation_trace.mli:
