examples/mpeg_pipeline.mli:
