examples/mpeg_pipeline.ml: Array Cds Format Kernel_ir List Morphosys Msutil Workloads
