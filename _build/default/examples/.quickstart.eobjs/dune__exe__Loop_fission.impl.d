examples/loop_fission.ml: Cds Format Kernel_ir List Morphosys Msim Msutil Sched Workloads
