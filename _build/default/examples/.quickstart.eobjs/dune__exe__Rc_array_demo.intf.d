examples/rc_array_demo.mli:
