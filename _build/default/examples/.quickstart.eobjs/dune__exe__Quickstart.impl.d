examples/quickstart.ml: Cds Format Kernel_ir Morphosys Msim Result
