examples/atr_recognition.mli:
