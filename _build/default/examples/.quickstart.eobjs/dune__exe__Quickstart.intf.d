examples/quickstart.mli:
