examples/rc_array_demo.ml: Array Cds Format Kernel_ir List Morphosys Rcsim String
