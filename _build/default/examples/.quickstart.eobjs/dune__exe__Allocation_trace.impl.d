examples/allocation_trace.ml: Cds Fb_alloc Format List Morphosys Workloads
