examples/loop_fission.mli:
