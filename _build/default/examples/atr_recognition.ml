(* Automatic Target Recognition: how the *kernel schedule* (clustering)
   changes what the Complete Data Scheduler can retain. The same SLD
   application is run under the paper's three schedules; the shared image
   chip can only be kept in the frame buffer for consumer clusters that
   live on the same FB set.

     dune exec examples/atr_recognition.exe *)

let () =
  let app = Workloads.Atr.sld () in
  let config = Morphosys.Config.m1 ~fb_set_size:8192 in
  let schedules =
    [
      ("pairs [2;2;2;2]", Workloads.Atr.sld_clustering app);
      ("singletons [1 x 8]", Workloads.Atr.sld_star_clustering app);
      ("asymmetric [2;4;2]", Workloads.Atr.sld_star2_clustering app);
    ]
  in
  List.iter
    (fun (name, clustering) ->
      Format.printf "== %s ==@." name;
      Format.printf "  clusters: %a@."
        Kernel_ir.Cluster.pp_clustering clustering;
      let c = Cds.Pipeline.run config app clustering in
      (match c.Cds.Pipeline.cds with
      | Ok (_, r) ->
        Format.printf "  %a@." Cds.Retention.pp_decision
          r.Cds.Complete_data_scheduler.retention
      | Error e -> Format.printf "  cds infeasible: %s@." e);
      let pct which =
        match Cds.Pipeline.improvement c which with
        | Some p -> Msutil.Pretty.pct p
        | None -> "-"
      in
      Format.printf "  improvement over Basic: DS %s, CDS %s@.@." (pct `Ds)
        (pct `Cds))
    schedules;
  Format.printf
    "The singleton schedule puts all four correlators on set A, so the@.";
  Format.printf
    "image chip is loaded once instead of four times per iteration.@."
