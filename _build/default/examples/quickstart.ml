(* Quickstart: describe a small application, schedule it three ways and
   compare.

     dune exec examples/quickstart.exe

   The application is a toy 4-kernel image pipeline; the machine is a
   MorphoSys M1 with a 1K-word frame-buffer set. *)

let () =
  (* 1. Describe the application: kernels in execution order, then the
        data objects flowing between them. Sizes are frame-buffer words per
        iteration; the whole sequence runs [iterations] times. *)
  let app =
    Kernel_ir.Builder.(
      create "quickstart" ~iterations:16
      |> kernel "blur" ~contexts:128 ~cycles:250
      |> kernel "grad" ~contexts:128 ~cycles:250
      |> kernel "thin" ~contexts:160 ~cycles:300
      |> kernel "emit" ~contexts:96 ~cycles:150
      |> input "tile" ~size:256 ~consumers:[ "blur" ]
      |> input "coeffs" ~size:64 ~consumers:[ "blur"; "thin" ]
      |> result "blurred" ~size:256 ~producer:"blur" ~consumers:[ "grad" ]
      |> result "gradient" ~size:128 ~producer:"grad" ~consumers:[ "thin" ]
      |> result "edges" ~size:96 ~producer:"thin" ~consumers:[ "emit" ]
      |> final "features" ~size:64 ~producer:"emit"
      |> build)
  in

  (* 2. Pick the machine and let the kernel scheduler search for the best
        clustering (it evaluates every partition of the kernel sequence
        through a tentative CDS schedule). *)
  let config = Morphosys.Config.m1 ~fb_set_size:1024 in
  let clustering =
    match Cds.Pipeline.auto_clustering config app with
    | Some (clustering, _) -> clustering
    | None -> failwith "no feasible clustering"
  in
  Format.printf "kernel schedule: %a@."
    Kernel_ir.Cluster.pp_clustering clustering;

  (* 3. Run the three schedulers and compare. *)
  let c = Cds.Pipeline.run config app clustering in
  let report name = function
    | Ok (s : Cds.Pipeline.scheduled) ->
      Format.printf "%-6s %a@." name Msim.Metrics.pp s.Cds.Pipeline.metrics
    | Error e -> Format.printf "%-6s infeasible: %s@." name e
  in
  report "basic" c.Cds.Pipeline.basic;
  report "ds" c.Cds.Pipeline.ds;
  report "cds" (Result.map fst c.Cds.Pipeline.cds);
  (match Cds.Pipeline.improvement c `Cds with
  | Some pct ->
    Format.printf "CDS improves execution time by %.1f%% over Basic@." pct
  | None -> ());

  (* 4. Inspect the winning schedule as a timeline. *)
  match c.Cds.Pipeline.cds with
  | Ok (s, r) ->
    Format.printf "reuse factor RF = %d@." r.Cds.Complete_data_scheduler.rf;
    print_string (Msim.Trace.render_gantt config s.Cds.Pipeline.schedule)
  | Error _ -> ()
