(* Loop fission and the context reuse factor (paper Figure 3 and section 3):
   sweep the frame-buffer size for a three-kernel chain and watch RF grow,
   amortising context reloads. Emits the Figure 3 graphs as DOT.

     dune exec examples/loop_fission.exe *)

let () =
  let app = Workloads.Synthetic.figure3 () in
  (* one cluster per kernel: the three context sets then compete for a CM
     that cannot hold them all, so reloads happen every round until loop
     fission amortises them *)
  let clustering = Kernel_ir.Cluster.singleton_per_kernel app in
  Format.printf "Figure 3(a) — kernel scheduling graph:@.%s@."
    (Kernel_ir.Dot.kernel_graph app);

  let header = [ "FB set"; "RF"; "rounds"; "ctx words moved"; "cycles" ] in
  let rows =
    List.filter_map
      (fun fb_set_size ->
        let config =
          Morphosys.Config.make ~fb_set_size ~cm_capacity:320 ()
          (* a small CM so context reloads actually matter *)
        in
        match Cds.Complete_data_scheduler.schedule config app clustering with
        | Error _ -> Some [ Msutil.Pretty.kbytes fb_set_size; "-"; "-"; "-"; "-" ]
        | Ok r ->
          let s = r.Cds.Complete_data_scheduler.schedule in
          let m = Msim.Executor.run config s in
          Some
            [
              Msutil.Pretty.kbytes fb_set_size;
              string_of_int r.Cds.Complete_data_scheduler.rf;
              string_of_int (Sched.Schedule.rounds s);
              string_of_int m.Msim.Metrics.context_words_loaded;
              string_of_int m.Msim.Metrics.total_cycles;
            ])
      [ 192; 256; 512; 1024; 2048 ]
  in
  Msutil.Pretty.table ~header ~rows Format.std_formatter;

  let rf_big =
    match
      Cds.Complete_data_scheduler.schedule
        (Morphosys.Config.make ~fb_set_size:1024 ~cm_capacity:320 ())
        app clustering
    with
    | Ok r -> r.Cds.Complete_data_scheduler.rf
    | Error _ -> 1
  in
  Format.printf "@.Figure 3(b) — after loop fission (RF=%d):@.%s@." rf_big
    (Kernel_ir.Dot.loop_fission_graph app ~rf:rf_big)
