#!/bin/sh
# Guard against new parallel scheduler entry points.
#
# The historical schedule / schedule_ctx / plan_* / *_diag scheduler entry
# points survive only as thin compat shims over the canonical
# [run]/[run_with]/[run_full] implementations, in the blessed files listed
# below. Defining a name of that shape anywhere else reintroduces the
# split-implementation problem the scheduler-registry refactor removed —
# fail CI instead. (Internal indexed helpers like Xfer_gen.plain_ctx are
# out of scope: the guard covers the scheduler entry-point namespace,
# names starting with schedule/plan/retention.)
set -eu
cd "$(dirname "$0")/.."

# Files allowed to define the compat shims.
allowed='lib/sched/basic_scheduler\.ml|lib/sched/data_scheduler\.ml|lib/sched/context_scheduler\.ml|lib/cds/complete_data_scheduler\.ml'

offenders=$(grep -rn --include='*.ml' -E '^[[:space:]]*let[[:space:]]+(schedule|plan|retention)[a-z_]*(_ctx|_diag)' lib bin \
  | grep -Ev "^($allowed):" || true)

if [ -n "$offenders" ]; then
  echo "lint_shims: new schedule_ctx-style entry points outside the blessed shim files:" >&2
  echo "$offenders" >&2
  echo "Implement the behaviour in the scheduler's canonical run/run_with/run_full" >&2
  echo "entry point (lib/sched/scheduler_intf.mli) instead of adding a parallel one." >&2
  exit 1
fi

echo "lint_shims: OK (compat shims confined to their blessed files)"
