(* The scheduler registry: deterministic listing, duplicate rejection, and
   the central equivalence property — dispatching any registered scheduler
   through [Scheduler_registry.run] produces results byte-identical to the
   scheduler's own legacy [schedule] entry point on the same inputs. *)

module Registry = Sched.Scheduler_registry
module Intf = Sched.Scheduler_intf

let contains = Astring_contains.contains

(* ---------- unit tests ---------- *)

let test_names_deterministic () =
  let names = Registry.names () in
  Alcotest.(check (list string))
    "sorted, duplicate-free listing" (List.sort_uniq compare names) names;
  Alcotest.(check (list string))
    "stable across calls" names (Registry.names ());
  Alcotest.(check (list string))
    "all () agrees with names ()" names
    (List.map Intf.name (Registry.all ()));
  (* the three paper tiers plus the cross-set variant are registered *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (Registry.mem n))
    [ "basic"; "ds"; "cds"; "cds-xset" ]

let test_find () =
  (match Registry.find "ds" with
  | Some s -> Alcotest.(check string) "find returns ds" "ds" (Intf.name s)
  | None -> Alcotest.fail "ds must be registered");
  Alcotest.(check bool) "unknown name" true (Registry.find "no-such" = None);
  (match Registry.find_exn "basic" with
  | s -> Alcotest.(check string) "find_exn" "basic" (Intf.name s)
  | exception _ -> Alcotest.fail "find_exn basic must succeed");
  match Registry.find_exn "no-such" with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the scheduler" true
      (contains msg "no-such")
  | _ -> Alcotest.fail "find_exn of an unknown name must raise"

let test_duplicate_rejected () =
  let impostor : Intf.t =
    (module struct
      let name = "cds"
      let describe = "an impostor under an already-taken name"
      let run _ _ = assert false
    end)
  in
  (match Registry.register impostor with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the duplicate" true
      (contains msg "cds")
  | () -> Alcotest.fail "duplicate registration must be rejected");
  (* the original registration is untouched *)
  match Registry.find "cds" with
  | Some s ->
    Alcotest.(check bool) "original describe survives" false
      (Intf.describe s = "an impostor under an already-taken name")
  | None -> Alcotest.fail "cds must still be registered"

let test_unknown_run_diagnoses () =
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:2048 in
  match
    Registry.run "no-such" (Sched.Sched_ctx.make app clustering) config
  with
  | Ok _ -> Alcotest.fail "unknown scheduler cannot deliver a schedule"
  | Error d ->
    Alcotest.(check bool) "Invalid_config diagnostic" true
      (d.Diag.code = Diag.Invalid_config);
    Alcotest.(check bool) "message lists the known names" true
      (contains d.Diag.message "basic")

(* ---------- equivalence: registry dispatch = legacy entry points ------- *)

(* The legacy string-API call each registry name shims over. *)
let legacy_of name config app clustering =
  match name with
  | "basic" -> Sched.Basic_scheduler.schedule config app clustering
  | "ds" -> Sched.Data_scheduler.schedule config app clustering
  | "cds" ->
    Result.map
      (fun r -> r.Cds.Complete_data_scheduler.schedule)
      (Cds.Complete_data_scheduler.schedule config app clustering)
  | "cds-xset" ->
    Result.map
      (fun r -> r.Cds.Complete_data_scheduler.schedule)
      (Cds.Complete_data_scheduler.schedule ~cross_set:true config app
         clustering)
  | n -> invalid_arg ("legacy_of: no legacy entry point for " ^ n)

let prop_registry_equals_legacy (app, clustering) =
  let config = Morphosys.Config.m1 ~fb_set_size:4096 in
  let ctx = Sched.Sched_ctx.make app clustering in
  List.for_all
    (fun name ->
      let via_registry =
        Result.map_error Diag.to_string (Registry.run name ctx config)
      in
      let via_legacy = legacy_of name config app clustering in
      match (via_registry, via_legacy) with
      | Ok a, Ok b ->
        a = b
        || QCheck.Test.fail_reportf "%s: registry schedule differs" name
      | Error a, Error b ->
        a = b
        || QCheck.Test.fail_reportf "%s: errors differ: %S vs %S" name a b
      | Ok _, Error e ->
        QCheck.Test.fail_reportf "%s: registry Ok but legacy Error %S" name e
      | Error e, Ok _ ->
        QCheck.Test.fail_reportf "%s: registry Error %S but legacy Ok" name e)
    [ "basic"; "ds"; "cds"; "cds-xset" ]

let equivalence_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"registry run = legacy schedule (all registered schedulers)"
       Workloads.Random_app.arb_app_with_clustering
       prop_registry_equals_legacy)

let tests =
  ( "scheduler_registry",
    [
      Alcotest.test_case "names deterministic and sorted" `Quick
        test_names_deterministic;
      Alcotest.test_case "find / find_exn" `Quick test_find;
      Alcotest.test_case "duplicate registration rejected" `Quick
        test_duplicate_rejected;
      Alcotest.test_case "unknown name diagnosed" `Quick
        test_unknown_run_diagnoses;
      equivalence_property;
    ] )
