(* Equivalence suite for the indexed analysis context: every structure and
   every scheduler decision computed through [Kernel_ir.Analysis] /
   [Sched.Sched_ctx] must be byte-identical to the reference list-based
   derivation — same profiles, same candidate sets, same split integers,
   same retention decisions (including rejection strings) and same
   schedules. The scaling benchmark's speedup claim rests on this. *)

module IE = Kernel_ir.Info_extractor
module Analysis = Kernel_ir.Analysis
module Application = Kernel_ir.Application
module Cluster = Kernel_ir.Cluster
module Data = Kernel_ir.Data

let arb = Workloads.Random_app.arb_app_with_clustering

(* ---------- unit tests: lookups on the figure 5 fixture ---------- *)

let fig5 () =
  let app = Workloads.Synthetic.figure5 () in
  (app, Workloads.Synthetic.figure5_clustering app)

let test_lookups () =
  let app, clustering = fig5 () in
  let a = Analysis.make app clustering in
  Alcotest.(check int)
    "n_clusters"
    (Cluster.n_clusters clustering)
    (Analysis.n_clusters a);
  List.iter
    (fun (c : Cluster.t) ->
      Alcotest.(check bool) "cluster by id" true (Analysis.cluster a c.id = c);
      List.iter
        (fun k ->
          Alcotest.(check int) "cluster_of_kernel"
            (Cluster.cluster_of_kernel clustering k).Cluster.id
            (Analysis.cluster_of_kernel a k).Cluster.id)
        c.kernels)
    clustering;
  List.iter
    (fun (d : Data.t) ->
      Alcotest.(check bool) "data by id" true (Analysis.data a d.id = d))
    app.Application.data

let test_profiles_match_reference () =
  let app, clustering = fig5 () in
  let a = Analysis.make app clustering in
  Alcotest.(check bool)
    "profiles" true
    (Analysis.profiles_list a = IE.profiles app clustering);
  Alcotest.(check bool)
    "sharing" true
    (Analysis.sharing a = IE.sharing app clustering)

(* A hand-built clustering with shifted ids must be rejected loudly, not
   silently resolve to the wrong profile. *)
let test_bad_clustering_backstop () =
  let app, clustering = fig5 () in
  let shifted =
    List.map (fun (c : Cluster.t) -> { c with Cluster.id = c.id + 1 }) clustering
  in
  Alcotest.check_raises "non-consecutive ids"
    (Invalid_argument
       "Analysis.make: cluster ids are not consecutive (cluster at position \
        0 has id 1; run Cluster.validate)")
    (fun () -> ignore (Analysis.make app shifted));
  Alcotest.check_raises "empty clustering"
    (Invalid_argument "Analysis.make: empty clustering") (fun () ->
      ignore (Analysis.make app []));
  let a = Analysis.make app clustering in
  Alcotest.check_raises "bad cluster id"
    (Invalid_argument
       (Printf.sprintf "Analysis.profile: bad cluster id 99 (have %d clusters)"
          (Cluster.n_clusters clustering)))
    (fun () -> ignore (Analysis.profile a 99))

(* ---------- properties: context structures equal the reference ---------- *)

let prop_structures (app, clustering) =
  let a = Analysis.make app clustering in
  let ok name b = if b then true else QCheck.Test.fail_reportf "%s differ" name in
  ok "profiles" (Analysis.profiles_list a = IE.profiles app clustering)
  && ok "sharing" (Analysis.sharing a = IE.sharing app clustering)
  && ok "tds" (Analysis.tds a = Application.total_data_words app)
  && List.for_all
       (fun (c : Cluster.t) ->
         ok "cluster" (Analysis.cluster a c.id = c)
         && List.for_all
              (fun k ->
                ok "cluster_of_kernel"
                  (Analysis.cluster_of_kernel a k
                  = Cluster.cluster_of_kernel clustering k))
              c.kernels)
       clustering
  && List.for_all
       (fun (d : Data.t) -> ok "data" (Analysis.data a d.id = d))
       app.Application.data

let prop_candidates (app, clustering) =
  let a = Analysis.make app clustering in
  List.for_all
    (fun cross_set ->
      if
        Cds.Sharing.candidates_ctx ~cross_set a
        = Cds.Sharing.candidates ~cross_set app clustering
      then true
      else
        QCheck.Test.fail_reportf "candidates differ (cross_set=%b)" cross_set)
    [ false; true ]

(* The fast split/closed-form must produce the reference integers, for the
   bare profile and under pinned subsets of the cluster inputs. *)
let prop_splits (app, clustering) =
  let a = Analysis.make app clustering in
  List.for_all
    (fun (p : IE.cluster_profile) ->
      let pinned_sets =
        let inputs = p.IE.external_inputs in
        [ []; inputs; List.filteri (fun i _ -> i mod 2 = 0) inputs ]
      in
      List.for_all
        (fun pinned ->
          Sched.Ds_formula.closed_form_fast ~pinned p
          = Sched.Ds_formula.closed_form ~pinned p
          && Sched.Ds_formula.split_fast ~pinned p
             = Sched.Ds_formula.split ~pinned p
          || QCheck.Test.fail_reportf "split mismatch, cluster %d"
               p.IE.cluster.Cluster.id)
        pinned_sets)
    (Analysis.profiles_list a)

(* The incremental retention pass must reproduce the reference decision —
   retained and rejected lists, rejection strings, avoided totals — for
   both set disciplines across memory pressures and reuse factors. *)
let prop_retention (app, clustering) =
  let ctx = Sched.Sched_ctx.make app clustering in
  List.for_all
    (fun fb ->
      let config = Morphosys.Config.m1 ~fb_set_size:fb in
      List.for_all
        (fun cross_set ->
          List.for_all
            (fun rf ->
              let reference =
                Cds.Retention.choose ~cross_set config app clustering ~rf
              in
              let indexed = Cds.Retention.choose_ctx ~cross_set config ctx ~rf in
              if reference = indexed then true
              else
                QCheck.Test.fail_reportf
                  "retention differs (fb=%d cross_set=%b rf=%d):@.ref %a@.got \
                   %a"
                  fb cross_set rf Cds.Retention.pp_decision reference
                  Cds.Retention.pp_decision indexed)
            [ 1; 2; 3 ])
        [ false; true ])
    [ 1024; 4096 ]

(* End-to-end: the three schedulers' indexed paths must return the very
   schedule (or the very error string) of the reference paths. *)
let prop_schedulers (app, clustering) =
  let config = Morphosys.Config.m1 ~fb_set_size:4096 in
  let ok name b =
    if b then true else QCheck.Test.fail_reportf "%s schedule differs" name
  in
  ok "basic"
    (Sched.Basic_scheduler.schedule config app clustering
    = Sched.Basic_scheduler.schedule_reference config app clustering)
  && ok "ds"
       (Sched.Data_scheduler.schedule config app clustering
       = Sched.Data_scheduler.schedule_reference config app clustering)
  && List.for_all
       (fun cross_set ->
         ok
           (if cross_set then "cds-xset" else "cds")
           (Cds.Complete_data_scheduler.schedule ~cross_set config app
              clustering
           = Cds.Complete_data_scheduler.schedule_reference ~cross_set config
               app clustering))
       [ false; true ]

(* The estimate used by the RF searches must equal the cost of the
   materialised schedule, for both traffic shapes and several factors. *)
let prop_estimate (app, clustering) =
  let config = Morphosys.Config.m1 ~fb_set_size:4096 in
  let a = Analysis.make app clustering in
  match Sched.Context_scheduler.plan config app clustering with
  | Error _ -> true
  | Ok ctx_plan ->
    let shapes =
      [
        ( "plain",
          Sched.Xfer_gen.plain_selectors_ctx a,
          Sched.Xfer_gen.plain_ctx a );
        ( "store_everything",
          Sched.Xfer_gen.store_everything_selectors_ctx a,
          Sched.Xfer_gen.store_everything_ctx a );
      ]
    in
    List.for_all
      (fun rf ->
        List.for_all
          (fun (name, selectors, generators) ->
            let estimated =
              Sched.Step_builder.estimate config app clustering ~rf ~ctx_plan
                ~selectors
            in
            let built =
              Sched.Schedule_cost.estimate config
                (Sched.Step_builder.build config app clustering ~rf ~ctx_plan
                   ~generators ~scheduler:"test")
            in
            if estimated = built then true
            else
              QCheck.Test.fail_reportf "estimate %s rf=%d: %d <> built %d" name
                rf estimated built)
          shapes)
      [ 1; 2; 3 ]

let tests =
  ( "analysis_ctx",
    [
      Alcotest.test_case "figure 5 lookups" `Quick test_lookups;
      Alcotest.test_case "figure 5 profiles = reference" `Quick
        test_profiles_match_reference;
      Alcotest.test_case "bad clustering backstop" `Quick
        test_bad_clustering_backstop;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [
          QCheck.Test.make ~count:200 ~name:"context structures = reference"
            arb prop_structures;
          QCheck.Test.make ~count:200 ~name:"sharing candidates = reference"
            arb prop_candidates;
          QCheck.Test.make ~count:200 ~name:"fast splits = reference formula"
            arb prop_splits;
          QCheck.Test.make ~count:200
            ~name:"incremental retention = reference decision" arb
            prop_retention;
          QCheck.Test.make ~count:200
            ~name:"indexed schedules = reference schedules" arb prop_schedulers;
          QCheck.Test.make ~count:200 ~name:"rf estimate = built schedule cost"
            arb prop_estimate;
        ] )
