(* Property-test oracle sweep: for random applications, every schedule
   the three schedulers produce must satisfy the semantic validator, the
   cycle counts must be monotone (CDS <= DS <= Basic), and the Pareto
   frontier of a sweep must be mutually non-dominated. *)

module Dse = Report.Dse

let config = Morphosys.Config.m1 ~fb_set_size:4096

let schedules (app, clustering) =
  [
    ("basic", Sched.Basic_scheduler.schedule config app clustering);
    ("ds", Sched.Data_scheduler.schedule config app clustering);
    ( "cds",
      Result.map
        (fun r -> r.Cds.Complete_data_scheduler.schedule)
        (Cds.Complete_data_scheduler.schedule config app clustering) );
  ]

(* Each scheduler either declares the instance infeasible or produces a
   schedule the referee accepts. *)
let prop_validator (app, clustering) =
  List.for_all
    (fun (name, result) ->
      match result with
      | Error (_ : string) -> true
      | Ok s -> (
        match Msim.Validate.check s with
        | [] -> true
        | v :: _ ->
          QCheck.Test.fail_reportf "%s violates the validator: %a" name
            Msim.Validate.pp_violation v))
    (schedules (app, clustering))

(* When all three are feasible, more scheduling intelligence never costs
   cycles: CDS <= DS <= Basic. *)
let prop_monotone (app, clustering) =
  match
    List.filter_map
      (fun (_, result) ->
        match result with
        | Error _ -> None
        | Ok s -> Some (Msim.Executor.run config s).Msim.Metrics.total_cycles)
      (schedules (app, clustering))
  with
  | [ basic; ds; cds ] ->
    if cds <= ds && ds <= basic then true
    else
      QCheck.Test.fail_reportf "cycles not monotone: basic=%d ds=%d cds=%d"
        basic ds cds
  | _ -> true (* some scheduler infeasible: nothing to compare *)

(* No Pareto point may dominate another in (fb_set_size, total_cycles). *)
let prop_pareto (app, clustering) =
  let frontier =
    Dse.pareto
      (Dse.sweep ~fb_list:[ 1024; 2048; 4096; 8192 ] app clustering)
  in
  let dominates (p : Dse.point) (q : Dse.point) =
    let pc = Option.get p.Dse.total_cycles
    and qc = Option.get q.Dse.total_cycles in
    p.Dse.fb_set_size <= q.Dse.fb_set_size
    && pc <= qc
    && (p.Dse.fb_set_size < q.Dse.fb_set_size || pc < qc)
  in
  List.for_all
    (fun p ->
      List.for_all
        (fun q ->
          if p != q && dominates p q then
            QCheck.Test.fail_reportf
              "frontier point (fb=%d, cycles=%d) dominates (fb=%d, cycles=%d)"
              p.Dse.fb_set_size
              (Option.get p.Dse.total_cycles)
              q.Dse.fb_set_size
              (Option.get q.Dse.total_cycles)
          else true)
        frontier)
    frontier

let arb = Workloads.Random_app.arb_app_with_clustering

let tests =
  ( "fuzz_oracle",
    List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        QCheck.Test.make ~count:200 ~name:"validator accepts every schedule"
          arb prop_validator;
        QCheck.Test.make ~count:200 ~name:"cds <= ds <= basic cycles" arb
          prop_monotone;
        QCheck.Test.make ~count:40 ~name:"pareto mutual non-domination" arb
          prop_pareto;
      ] )
