(* Graceful degradation (CDS -> DS -> Basic), hostile fuzzing, and
   fault-isolated DSE sweeps. *)

module Pipeline = Cds.Pipeline

let contains = Astring_contains.contains

(* A frame buffer sized to the largest Basic footprint: Basic is feasible
   by construction, while the DS/CDS tiers — whose packable budgets differ
   — frequently are not, which is exactly the ladder we want to exercise. *)
let squeezed_config app clustering =
  let fb_set_size =
    Msutil.Listx.max_by
      (fun x -> x)
      (Sched.Basic_scheduler.footprints app clustering)
  in
  let cm_capacity = max 2048 (Kernel_ir.Application.total_context_words app) in
  Morphosys.Config.make ~fb_set_size ~cm_capacity ()

let prop_degrade_always_delivers (app, clustering) =
  let config = squeezed_config app clustering in
  let c = Pipeline.run ~degrade:true config app clustering in
  let d =
    match c.Pipeline.degradation with
    | Some d -> d
    | None -> QCheck.Test.fail_report "degrade:true must record a chain"
  in
  (* Basic is feasible by construction, so some tier always delivers. *)
  (match Pipeline.degraded_schedule c with
  | Some (_tier, _s) -> ()
  | None ->
    QCheck.Test.fail_reportf "no tier delivered; chain: %s"
      (String.concat "; "
         (List.map
            (fun (t, diag) -> t ^ ": " ^ Diag.render diag)
            d.Pipeline.chain)));
  (* the chain walks CDS -> DS -> Basic in order *)
  let tiers = List.map fst d.Pipeline.chain in
  (match tiers with
  | [] | [ "cds" ] | [ "cds"; "ds" ] -> ()
  | _ -> QCheck.Test.fail_report "chain is not a cds,ds prefix");
  (* the recorded reason is the CDS diagnostic the string API reports *)
  (match (List.assoc_opt "cds" d.Pipeline.chain, c.Pipeline.cds) with
  | Some diag, Error msg ->
    if Diag.to_string diag <> msg then
      QCheck.Test.fail_reportf "chain diag %S <> cds error %S"
        (Diag.to_string diag) msg
  | None, Ok _ -> ()
  | Some _, Ok _ ->
    QCheck.Test.fail_report "CDS in the chain but the cds field is Ok"
  | None, Error _ ->
    QCheck.Test.fail_report "cds failed but is missing from the chain");
  (* every recorded failure is an error-severity structured diagnostic *)
  List.for_all (fun (_, diag) -> Diag.is_error diag) d.Pipeline.chain

let degrade_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"degrade always delivers a schedule"
       Workloads.Random_app.arb_app_with_clustering
       prop_degrade_always_delivers)

let test_degrade_off_is_none () =
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:8192 in
  let c = Pipeline.run config app clustering in
  Alcotest.(check bool) "no degradation record without ~degrade" true
    (c.Pipeline.degradation = None);
  Alcotest.(check bool) "degraded_schedule is None" true
    (Pipeline.degraded_schedule c = None)

let test_degrade_infeasible_everywhere () =
  (* FB of 1 word: every tier fails, the chain names all three, and the
     pipeline still does not raise *)
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let config = Morphosys.Config.m1 ~fb_set_size:1 in
  let c = Pipeline.run ~degrade:true config app clustering in
  match c.Pipeline.degradation with
  | None -> Alcotest.fail "expected a degradation record"
  | Some d ->
    Alcotest.(check bool) "nothing delivered" true (d.Pipeline.delivered = None);
    Alcotest.(check (list string)) "all three tiers failed"
      [ "cds"; "ds"; "basic" ]
      (List.map fst d.Pipeline.chain);
    let rendered = Format.asprintf "%a" Pipeline.pp_degradation d in
    Alcotest.(check bool) "pp mentions infeasibility" true
      (contains rendered "no scheduler tier is feasible")

let test_hostile_smoke () =
  let r = Report.Fuzz.run_hostile ~jobs:2 ~seed:42 ~count:40 () in
  Alcotest.(check bool)
    (Format.asprintf "no uncaught exceptions: %a" Report.Fuzz.pp_hostile r)
    true (Report.Fuzz.hostile_ok r);
  Alcotest.(check int) "every mutant accounted for" 40
    (r.Report.Fuzz.rejected + r.Report.Fuzz.survived
   + r.Report.Fuzz.h_faulted);
  Alcotest.(check bool) "mutations actually rejected" true
    (r.Report.Fuzz.rejected > 0)

let test_sweep_survives_crashing_point () =
  (* a pool fault at rate 1.0 kills every design-point task on first
     attempt; without retries the sweep must still return every point,
     each infeasible with a structured diagnostic *)
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let fb_list = [ 1024; 8192 ] in
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "pool" ] ~rate:1.0 ~seed:9 ())
    (fun () ->
      let points = Report.Dse.sweep ~jobs:2 ~fb_list app clustering in
      Alcotest.(check int) "all points returned" 6 (List.length points);
      List.iter
        (fun (p : Report.Dse.point) ->
          Alcotest.(check bool) "isolated as infeasible" false
            p.Report.Dse.feasible;
          match p.Report.Dse.diag with
          | Some d ->
            Alcotest.(check bool) "diagnosed as injected" true
              (d.Diag.code = Diag.Fault_injected)
          | None -> Alcotest.fail "crashed point must carry a diagnostic")
        points);
  (* with retries the same plan is absorbed and the sweep is clean *)
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "pool" ] ~rate:0.5 ~seed:9 ())
    (fun () ->
      let points =
        Report.Dse.sweep ~jobs:2 ~retries:40 ~fb_list app clustering
      in
      List.iter
        (fun (p : Report.Dse.point) ->
          match p.Report.Dse.diag with
          | Some { Diag.code = Diag.Fault_injected; _ } ->
            Alcotest.fail "retries should have absorbed the injected faults"
          | _ -> ())
        points);
  (* and an undisturbed sweep matches a faulted-but-retried sweep *)
  let clean = Report.Dse.sweep ~fb_list app clustering in
  Alcotest.(check string) "csv identical to clean sweep"
    (Report.Dse.to_csv clean)
    (Engine.Faults.with_plan
       (Engine.Faults.plan ~sites:[ "pool" ] ~rate:0.5 ~seed:9 ())
       (fun () ->
         Report.Dse.to_csv
           (Report.Dse.sweep ~jobs:2 ~retries:40 ~fb_list app clustering)))

let test_sweep_cache_fault_degrades_to_miss () =
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  let fb_list = [ 2048 ] in
  let cache = Engine.Cache.create () in
  let clean = Report.Dse.sweep ~cache ~fb_list app clustering in
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "cache" ] ~rate:1.0 ~seed:4 ())
    (fun () ->
      let again = Report.Dse.sweep ~cache ~fb_list app clustering in
      Alcotest.(check string) "faulted cache sweep still correct"
        (Report.Dse.to_csv clean) (Report.Dse.to_csv again))

let tests =
  ( "degrade",
    [
      degrade_property;
      Alcotest.test_case "no record without ~degrade" `Quick
        test_degrade_off_is_none;
      Alcotest.test_case "all tiers infeasible" `Quick
        test_degrade_infeasible_everywhere;
      Alcotest.test_case "hostile fuzz smoke" `Quick test_hostile_smoke;
      Alcotest.test_case "sweep survives crashing points" `Quick
        test_sweep_survives_crashing_point;
      Alcotest.test_case "cache fault degrades to miss" `Quick
        test_sweep_cache_fault_degrades_to_miss;
    ] )
