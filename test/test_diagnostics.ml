(* Structured diagnostics and the total pre-flight validator. *)

module Kernel = Kernel_ir.Kernel
module Data = Kernel_ir.Data
module Application = Kernel_ir.Application
module Cluster = Kernel_ir.Cluster
module Validate = Kernel_ir.Validate

let contains = Astring_contains.contains

let test_diag_basics () =
  let d =
    Diag.v ~scheduler:"basic" ~cluster:2 Diag.Fb_overflow
      "cluster footprint %dw exceeds FB set of %dw (no replacement)" 1048 64
  in
  Alcotest.(check string) "to_string keeps the legacy text"
    "basic: cluster footprint 1048w exceeds FB set of 64w (no replacement)"
    (Diag.to_string d);
  let r = Diag.render d in
  Alcotest.(check bool) "render carries the code" true
    (contains r "[E:FB_OVERFLOW basic]");
  Alcotest.(check bool) "render carries the cluster" true
    (contains r "cluster 2");
  Alcotest.(check bool) "error severity" true (Diag.is_error d);
  let w =
    Diag.v ~severity:Diag.Warning ~data:"qm" Diag.Retention_rejected
      "candidate declined"
  in
  Alcotest.(check bool) "warning is not an error" false (Diag.is_error w);
  Alcotest.(check bool) "warning renders as W" true
    (contains (Diag.render w) "[W:RETENTION_REJECTED]");
  let retagged = Diag.with_scheduler "cds" d in
  Alcotest.(check string) "with_scheduler retags the prefix"
    "cds: cluster footprint 1048w exceeds FB set of 64w (no replacement)"
    (Diag.to_string retagged);
  (* a diagnostic with no scheduler has no prefix *)
  let bare = Diag.v Diag.Invalid_app "no kernels" in
  Alcotest.(check string) "bare message" "no kernels" (Diag.to_string bare);
  List.iter
    (fun (code, name) ->
      Alcotest.(check string) "code_name" name (Diag.code_name code))
    [
      (Diag.Fb_overflow, "FB_OVERFLOW");
      (Diag.Cm_overflow, "CM_OVERFLOW");
      (Diag.No_feasible_rf, "NO_FEASIBLE_RF");
      (Diag.Retention_rejected, "RETENTION_REJECTED");
      (Diag.Invalid_app, "INVALID_APP");
      (Diag.Invalid_clustering, "INVALID_CLUSTERING");
      (Diag.Invalid_config, "INVALID_CONFIG");
      (Diag.Sim_divergence, "SIM_DIVERGENCE");
      (Diag.Task_crashed, "TASK_CRASHED");
      (Diag.Task_timeout, "TASK_TIMEOUT");
      (Diag.Fault_injected, "FAULT_INJECTED");
      (Diag.Store_corrupt, "STORE_CORRUPT");
      (Diag.Sweep_mismatch, "SWEEP_MISMATCH");
    ]

let test_of_exn () =
  let code e = (Diag.of_exn e).Diag.code in
  Alcotest.(check bool) "Invalid_argument -> Invalid_app" true
    (code (Invalid_argument "x") = Diag.Invalid_app);
  Alcotest.(check bool) "Not_found -> Invalid_app" true
    (code Not_found = Diag.Invalid_app);
  Alcotest.(check bool) "anything else -> Task_crashed" true
    (code (Failure "y") = Diag.Task_crashed);
  (match Diag.guard (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "guard passes the value" 42 v
  | Error d -> Alcotest.failf "guard failed: %s" (Diag.render d));
  (match Diag.guard ~scheduler:"ds" (fun () -> failwith "boom") with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error d ->
    Alcotest.(check bool) "guard tags the scheduler" true
      (d.Diag.scheduler = Some "ds");
    Alcotest.(check bool) "guard keeps the message" true
      (contains (Diag.to_string d) "boom"));
  match Diag.protect ~code:Diag.Sim_divergence (fun () -> failwith "bad") with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error d ->
    Alcotest.(check bool) "protect forces the code" true
      (d.Diag.code = Diag.Sim_divergence)

(* A hand-broken application: every field violates something. The total
   checker must report all of them in one pass. *)
let test_validate_collects_all () =
  let kernels =
    [
      { Kernel.id = 0; name = ""; contexts = 0; exec_cycles = 5 };
      { Kernel.id = 7; name = "k"; contexts = 10; exec_cycles = 0 };
    ]
  in
  let data =
    [
      {
        Data.id = 0;
        name = "d";
        size = -4;
        producer = Data.External;
        consumers = [];
        final = false;
        invariant = false;
      };
      {
        Data.id = 0;
        name = "d";
        size = 8;
        producer = Data.Produced_by 1;
        consumers = [ 1 ];
        final = false;
        invariant = true;
      };
    ]
  in
  let diags =
    Validate.application ~name:"broken" ~kernels ~data ~iterations:0
  in
  Alcotest.(check bool)
    (Printf.sprintf "many violations collected (got %d)" (List.length diags))
    true
    (List.length diags >= 8);
  let messages = String.concat "\n" (List.map Diag.to_string diags) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "reports %S" needle)
        true (contains messages needle))
    [
      "iterations must be positive";
      "empty name";
      "has id 7 at position 1";
      "non-positive context words";
      "non-positive exec cycles";
      "non-positive size";
      "no consumers";
      "consumes its own result";
      "cannot be iteration-invariant";
      "duplicate data name";
      "duplicate data id";
    ];
  Alcotest.(check bool) "all are errors" true (List.for_all Diag.is_error diags)

let valid_ingredients () =
  let kernels =
    [
      Kernel.make ~id:0 ~name:"k0" ~contexts:10 ~exec_cycles:5;
      Kernel.make ~id:1 ~name:"k1" ~contexts:10 ~exec_cycles:5;
    ]
  in
  let data =
    [
      Data.make ~id:0 ~name:"in" ~size:16 ~producer:Data.External
        ~consumers:[ 0 ] ~final:false ();
      Data.make ~id:1 ~name:"mid" ~size:8 ~producer:(Data.Produced_by 0)
        ~consumers:[ 1 ] ~final:false ();
      Data.make ~id:2 ~name:"out" ~size:8 ~producer:(Data.Produced_by 1)
        ~consumers:[] ~final:true ();
    ]
  in
  (kernels, data)

let test_validate_clean () =
  let kernels, data = valid_ingredients () in
  Alcotest.(check int) "clean ingredients produce no diagnostics" 0
    (List.length
       (Validate.application ~name:"ok" ~kernels ~data ~iterations:4));
  match Validate.application_checked ~name:"ok" ~kernels ~data ~iterations:4 with
  | Ok app ->
    Alcotest.(check int) "constructed" 2 (Application.n_kernels app);
    Alcotest.(check int) "audit of a built app is clean" 0
      (List.length (Validate.app app));
    let cl = Cluster.of_partition app [ 1; 1 ] in
    Alcotest.(check int) "well-built clustering is clean" 0
      (List.length (Validate.clustering app cl));
    Alcotest.(check int) "whole problem is clean" 0
      (List.length
         (Validate.all ~config:(Morphosys.Config.m1 ~fb_set_size:1024) app cl))
  | Error diags ->
    Alcotest.failf "expected Ok, got %d diagnostics" (List.length diags)

let test_validate_checked_rejects () =
  let kernels, data = valid_ingredients () in
  match
    Validate.application_checked ~name:"bad" ~kernels ~data ~iterations:0
  with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error diags ->
    Alcotest.(check bool) "at least the iterations diagnostic" true
      (List.exists
         (fun d -> contains (Diag.to_string d) "iterations")
         diags)

let test_validate_partition () =
  Alcotest.(check int) "good partition" 0
    (List.length (Validate.partition ~n_kernels:4 [ 2; 2 ]));
  let diags = Validate.partition ~n_kernels:4 [ 0; 3 ] in
  let messages = String.concat "\n" (List.map Diag.to_string diags) in
  Alcotest.(check bool) "zero size flagged" true
    (contains messages "non-positive cluster size");
  Alcotest.(check bool) "bad sum flagged" true (contains messages "sum to 3");
  Alcotest.(check bool) "clustering code" true
    (List.for_all (fun d -> d.Diag.code = Diag.Invalid_clustering) diags)

let test_validate_config () =
  Alcotest.(check int) "m1 is clean" 0
    (List.length (Validate.config (Morphosys.Config.m1 ~fb_set_size:1024)))

let tests =
  ( "diagnostics",
    [
      Alcotest.test_case "diag basics" `Quick test_diag_basics;
      Alcotest.test_case "of_exn / guard / protect" `Quick test_of_exn;
      Alcotest.test_case "validate collects all" `Quick
        test_validate_collects_all;
      Alcotest.test_case "validate clean" `Quick test_validate_clean;
      Alcotest.test_case "application_checked rejects" `Quick
        test_validate_checked_rejects;
      Alcotest.test_case "validate partition" `Quick test_validate_partition;
      Alcotest.test_case "validate config" `Quick test_validate_config;
    ] )
