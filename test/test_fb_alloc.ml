open Fb_alloc
module Interval = Msutil.Interval

let iv lo hi = Interval.make ~lo ~hi
let ivs = Alcotest.testable Interval.pp Interval.equal

(* -- Free list ----------------------------------------------------------- *)

let test_fl_basic () =
  let fl = Free_list.create 100 in
  Alcotest.(check int) "free" 100 (Free_list.free_words fl);
  Alcotest.(check int) "largest" 100 (Free_list.largest_free fl);
  Alcotest.(check bool) "invariant" true (Free_list.invariant_ok fl)

let test_fl_lower_upper () =
  let fl = Free_list.create 100 in
  (match Free_list.allocate fl ~from:Free_list.Lower ~words:10 with
  | Some got -> Alcotest.check ivs "lower grabs bottom" (iv 0 10) got
  | None -> Alcotest.fail "alloc failed");
  (match Free_list.allocate fl ~from:Free_list.Upper ~words:10 with
  | Some got -> Alcotest.check ivs "upper grabs top" (iv 90 100) got
  | None -> Alcotest.fail "alloc failed");
  Alcotest.(check int) "free shrinks" 80 (Free_list.free_words fl);
  Alcotest.(check bool) "invariant" true (Free_list.invariant_ok fl)

let test_fl_first_fit_skips_small_holes () =
  let fl = Free_list.create 100 in
  (* occupy [10,20) and [30,40) leaving holes of 10, 10 and 60 words *)
  Alcotest.(check bool) "carve1" true (Free_list.allocate_at fl (iv 10 20));
  Alcotest.(check bool) "carve2" true (Free_list.allocate_at fl (iv 30 40));
  (match Free_list.allocate fl ~from:Free_list.Lower ~words:25 with
  | Some got -> Alcotest.check ivs "skips the small holes" (iv 40 65) got
  | None -> Alcotest.fail "alloc failed");
  match Free_list.allocate fl ~from:Free_list.Lower ~words:8 with
  | Some got -> Alcotest.check ivs "first fit takes first hole" (iv 0 8) got
  | None -> Alcotest.fail "alloc failed"

let test_fl_release_coalesces () =
  let fl = Free_list.create 100 in
  Alcotest.(check bool) "carve" true (Free_list.allocate_at fl (iv 10 90));
  Free_list.release fl (iv 10 50);
  Free_list.release fl (iv 50 90);
  Alcotest.(check int) "one block again" 1 (List.length (Free_list.blocks fl));
  Alcotest.(check int) "all free" 100 (Free_list.free_words fl);
  Alcotest.(check bool) "invariant" true (Free_list.invariant_ok fl)

let test_fl_release_errors () =
  let fl = Free_list.create 100 in
  (match Free_list.release fl (iv 0 10) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double free must fail");
  match Free_list.release fl (iv 90 110) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "oob free must fail"

let test_fl_split () =
  let fl = Free_list.create 100 in
  Alcotest.(check bool) "carve" true (Free_list.allocate_at fl (iv 20 30));
  Alcotest.(check bool) "carve" true (Free_list.allocate_at fl (iv 50 60));
  (* free: [0,20) [30,50) [60,100): contiguous max 40 *)
  Alcotest.(check bool) "contiguous 50 impossible" true
    (Free_list.allocate fl ~from:Free_list.Lower ~words:50 = None);
  (match Free_list.allocate_split fl ~from:Free_list.Lower ~words:50 with
  | Some parts ->
    Alcotest.(check int) "split words" 50
      (Msutil.Listx.sum_by Interval.length parts);
    Alcotest.(check bool) "several parts" true (List.length parts >= 2)
  | None -> Alcotest.fail "split alloc failed");
  Alcotest.(check bool) "too big fails" true
    (Free_list.allocate_split fl ~from:Free_list.Lower ~words:1000 = None);
  Alcotest.(check bool) "invariant" true (Free_list.invariant_ok fl)

let test_fl_allocate_at () =
  let fl = Free_list.create 100 in
  Alcotest.(check bool) "free spot" true (Free_list.allocate_at fl (iv 40 50));
  Alcotest.(check bool) "occupied spot" false (Free_list.allocate_at fl (iv 45 55));
  Alcotest.(check bool) "is_free" false (Free_list.is_free fl (iv 40 41));
  Alcotest.(check bool) "is_free elsewhere" true (Free_list.is_free fl (iv 0 40))

(* Property: arbitrary allocate/release sequences keep the free list sorted,
   disjoint and coalesced, and conserve words. *)
let prop_fl_random_ops =
  let gen_ops = QCheck.Gen.(list_size (int_range 1 60) (int_range 4 40)) in
  QCheck.Test.make ~name:"free list invariant under random ops" ~count:200
    (QCheck.make gen_ops) (fun sizes ->
      let fl = Free_list.create 512 in
      let live = ref [] in
      List.iteri
        (fun i words ->
          if i mod 3 = 2 then (
            match !live with
            | iv :: rest ->
              Free_list.release fl iv;
              live := rest
            | [] -> ())
          else
            let from =
              if i mod 2 = 0 then Free_list.Lower else Free_list.Upper
            in
            match Free_list.allocate fl ~from ~words with
            | Some iv -> live := iv :: !live
            | None -> ())
        sizes;
      Free_list.invariant_ok fl
      && Free_list.free_words fl
           + Msutil.Listx.sum_by Interval.length !live
         = 512)

(* -- Layout --------------------------------------------------------------- *)

let test_layout_place_release () =
  let lay = Layout.create ~size:100 in
  (match Layout.place lay ~label:"x" ~words:30 ~from:Free_list.Upper with
  | Some p ->
    Alcotest.check ivs "upper placement" (iv 70 100) (List.hd p.Layout.intervals)
  | None -> Alcotest.fail "place failed");
  Alcotest.(check bool) "placed" true (Layout.placed lay ~label:"x");
  Alcotest.(check int) "free" 70 (Layout.free_words lay);
  Layout.release lay ~label:"x";
  Alcotest.(check bool) "released" false (Layout.placed lay ~label:"x");
  Alcotest.(check int) "free again" 100 (Layout.free_words lay);
  (match Layout.release lay ~label:"x" with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the label" true
      (Astring_contains.contains msg "x")
  | () -> Alcotest.fail "double release must fail");
  match Layout.placement_of_opt lay ~label:"x" with
  | None -> ()
  | Some _ -> Alcotest.fail "released label must have no placement"

let test_layout_regularity () =
  let lay = Layout.create ~size:100 in
  let first =
    match Layout.place lay ~label:"d@0" ~words:20 ~from:Free_list.Upper with
    | Some p -> p.Layout.intervals
    | None -> Alcotest.fail "place failed"
  in
  (* occupy some other space, release d@0, place other stuff lower, then
     re-place d@0: it must return to its old address *)
  ignore (Layout.place lay ~label:"other" ~words:10 ~from:Free_list.Lower);
  Layout.release lay ~label:"d@0";
  match Layout.place lay ~label:"d@0" ~words:20 ~from:Free_list.Lower with
  | Some p ->
    Alcotest.(check bool) "regular re-placement" true (p.Layout.intervals = first)
  | None -> Alcotest.fail "replace failed"

let test_layout_split_counting () =
  let lay = Layout.create ~size:100 in
  ignore (Layout.place lay ~label:"a" ~words:40 ~from:Free_list.Lower);
  ignore (Layout.place lay ~label:"b" ~words:20 ~from:Free_list.Lower);
  ignore (Layout.place lay ~label:"c" ~words:40 ~from:Free_list.Lower);
  Layout.release lay ~label:"a";
  Layout.release lay ~label:"c";
  (* free: [0,40) and [60,100) — a 70-word object must split *)
  (match Layout.place lay ~label:"big" ~words:70 ~from:Free_list.Lower with
  | Some p -> Alcotest.(check bool) "split parts" true (List.length p.Layout.intervals = 2)
  | None -> Alcotest.fail "split place failed");
  Alcotest.(check int) "split counted" 1 (Layout.splits lay);
  Alcotest.(check int) "placements counted" 4 (Layout.placements_done lay);
  Alcotest.(check bool) "invariant" true (Layout.invariant_ok lay);
  Alcotest.(check bool) "impossible returns None" true
    (Layout.place lay ~label:"huge" ~words:200 ~from:Free_list.Lower = None)

let test_layout_snapshot_render () =
  let lay = Layout.create ~size:32 in
  ignore (Layout.place lay ~label:"top" ~words:16 ~from:Free_list.Upper);
  let snap = Layout.snapshot lay in
  Alcotest.(check (option string)) "upper cell" (Some "top") snap.(31);
  Alcotest.(check (option string)) "lower cell" None snap.(0);
  let rendered = Layout.render_snapshots ~labels:[ "t0" ] [ snap ] in
  Alcotest.(check bool) "render mentions label" true
    (Astring_contains.contains rendered "top");
  Alcotest.(check string) "empty render" "" (Layout.render_snapshots ~labels:[] [])

let test_frag_stats () =
  let lay = Layout.create ~size:100 in
  ignore (Layout.place lay ~label:"a" ~words:20 ~from:Free_list.Lower);
  ignore (Layout.place lay ~label:"b" ~words:20 ~from:Free_list.Upper);
  let stats = Frag_stats.of_layout lay in
  Alcotest.(check int) "free" 60 stats.Frag_stats.free_words;
  Alcotest.(check int) "largest" 60 stats.Frag_stats.largest_free;
  Alcotest.(check int) "blocks" 1 stats.Frag_stats.free_blocks;
  Alcotest.(check (float 0.001)) "no ext frag" 0. stats.Frag_stats.external_fragmentation;
  Alcotest.(check int) "splits" 0 stats.Frag_stats.splits

let prop_layout_invariant =
  let gen = QCheck.Gen.(list_size (int_range 1 40) (int_range 2 30)) in
  QCheck.Test.make ~name:"layout invariant under random place/release"
    ~count:150 (QCheck.make gen) (fun sizes ->
      let lay = Layout.create ~size:256 in
      List.iteri
        (fun i words ->
          let label = "o" ^ string_of_int i in
          if i mod 4 = 3 then (
            let prev = "o" ^ string_of_int (i - 1) in
            if Layout.placed lay ~label:prev then Layout.release lay ~label:prev)
          else
            ignore
              (Layout.place lay ~label ~words
                 ~from:(if i mod 2 = 0 then Free_list.Lower else Free_list.Upper)))
        sizes;
      Layout.invariant_ok lay)

let tests =
  ( "fb_alloc",
    [
      Alcotest.test_case "free list basics" `Quick test_fl_basic;
      Alcotest.test_case "lower vs upper" `Quick test_fl_lower_upper;
      Alcotest.test_case "first fit" `Quick test_fl_first_fit_skips_small_holes;
      Alcotest.test_case "release coalesces" `Quick test_fl_release_coalesces;
      Alcotest.test_case "release errors" `Quick test_fl_release_errors;
      Alcotest.test_case "split allocation" `Quick test_fl_split;
      Alcotest.test_case "allocate_at" `Quick test_fl_allocate_at;
      QCheck_alcotest.to_alcotest prop_fl_random_ops;
      Alcotest.test_case "layout place/release" `Quick test_layout_place_release;
      Alcotest.test_case "layout regularity" `Quick test_layout_regularity;
      Alcotest.test_case "layout split counting" `Quick test_layout_split_counting;
      Alcotest.test_case "layout snapshot render" `Quick test_layout_snapshot_render;
      Alcotest.test_case "frag stats" `Quick test_frag_stats;
      QCheck_alcotest.to_alcotest prop_layout_invariant;
    ] )
