(* The durable result store and write-ahead journal: framing, checksums,
   quarantine-instead-of-fail on every flavour of corruption, atomic gc,
   and the journal's sweep-identity protocol. *)

module Store = Engine.Store
module Journal = Engine.Journal

let contains = Astring_contains.contains

let tmp_path () =
  let path = Filename.temp_file "msched_store" ".bin" in
  Sys.remove path;
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".quarantine"; path ^ ".journal";
      path ^ ".journal.quarantine" ]

let with_store ?(schema = 7) f =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  match Store.open_ ~schema path with
  | Error d -> Alcotest.failf "open failed: %s" (Diag.render d)
  | Ok t -> f path t

let reopen ?(schema = 7) path =
  match Store.open_ ~schema path with
  | Error d -> Alcotest.failf "reopen failed: %s" (Diag.render d)
  | Ok t -> t

let file_size path = (Unix.stat path).Unix.st_size

let test_roundtrip () =
  with_store @@ fun path t ->
  Alcotest.(check int) "fresh store is empty" 0 (Store.length t);
  Store.append t ~key:"alpha" ~payload:"one";
  Store.append t ~key:"beta" ~payload:"two";
  Store.append t ~key:"gamma" ~payload:(String.make 4096 'x');
  Alcotest.(check int) "three keys" 3 (Store.length t);
  Alcotest.(check (option string)) "find" (Some "two") (Store.find t "beta");
  Alcotest.(check bool) "mem" true (Store.mem t "alpha");
  Alcotest.(check bool) "absent key" false (Store.mem t "delta");
  Store.close t;
  let t = reopen path in
  Alcotest.(check int) "reopen sees three keys" 3 (Store.length t);
  Alcotest.(check (option string)) "large payload survives"
    (Some (String.make 4096 'x'))
    (Store.find t "gamma");
  Alcotest.(check int) "clean reopen has no warnings" 0
    (List.length (Store.warnings t));
  (* iteration is in first-seen key order *)
  let keys = ref [] in
  Store.iter (fun ~key ~payload:_ -> keys := key :: !keys) t;
  Alcotest.(check (list string)) "first-seen order"
    [ "alpha"; "beta"; "gamma" ] (List.rev !keys);
  Store.close t

let test_last_record_wins () =
  with_store @@ fun path t ->
  Store.append t ~key:"k" ~payload:"v1";
  Store.append t ~key:"other" ~payload:"o";
  Store.append t ~key:"k" ~payload:"v2";
  Alcotest.(check (option string)) "live value is the latest" (Some "v2")
    (Store.find t "k");
  Alcotest.(check int) "superseding does not add a key" 2 (Store.length t);
  Store.close t;
  let t = reopen path in
  Alcotest.(check (option string)) "latest survives reopen" (Some "v2")
    (Store.find t "k");
  (* superseding keeps the key's first-seen position *)
  let keys = ref [] in
  Store.iter (fun ~key ~payload:_ -> keys := key :: !keys) t;
  Alcotest.(check (list string)) "order is first-seen" [ "k"; "other" ]
    (List.rev !keys);
  Store.close t

let test_identical_append_is_noop () =
  with_store @@ fun path t ->
  Store.append t ~key:"k" ~payload:"same";
  Store.checkpoint t;
  let size = file_size path in
  Store.append t ~key:"k" ~payload:"same";
  Store.append t ~key:"k" ~payload:"same";
  Alcotest.(check int) "re-appending the live payload does not grow the file"
    size (file_size path);
  Store.close t

let test_truncated_tail_quarantined () =
  with_store @@ fun path t ->
  Store.append t ~key:"good" ~payload:"kept";
  Store.append t ~key:"torn" ~payload:(String.make 256 'y');
  Store.close t;
  let full = file_size path in
  (* SIGKILL mid-write: the last record loses its checksum trailer *)
  Unix.truncate path (full - 13);
  let t = reopen path in
  let warnings = Store.warnings t in
  Alcotest.(check int) "one quarantine warning" 1 (List.length warnings);
  let w = List.hd warnings in
  Alcotest.(check bool) "STORE_CORRUPT code" true
    (w.Diag.code = Diag.Store_corrupt);
  Alcotest.(check bool) "quarantine is a warning, not an error" false
    (Diag.is_error w);
  Alcotest.(check bool) "quarantine sidecar written" true
    (Sys.file_exists (path ^ ".quarantine"));
  Alcotest.(check (option string)) "intact prefix survives" (Some "kept")
    (Store.find t "good");
  Alcotest.(check bool) "torn record is gone" false (Store.mem t "torn");
  (* the store is fully usable after quarantine: recompute and re-append *)
  Store.append t ~key:"torn" ~payload:"recomputed";
  Store.close t;
  let t = reopen path in
  Alcotest.(check int) "clean after repair" 0 (List.length (Store.warnings t));
  Alcotest.(check (option string)) "repaired value" (Some "recomputed")
    (Store.find t "torn");
  Store.close t

let test_bitflip_quarantined () =
  with_store @@ fun path t ->
  Store.append t ~key:"first" ~payload:"aaaa";
  let boundary = file_size path in
  Store.append t ~key:"second" ~payload:"bbbb";
  Store.close t;
  (* flip one payload byte inside the second record: its MD5 must catch it *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (boundary + 8 + 6 + 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "Z") 0 1);
  Unix.close fd;
  let t = reopen path in
  Alcotest.(check int) "bit flip detected" 1 (List.length (Store.warnings t));
  Alcotest.(check (option string)) "records before the flip survive"
    (Some "aaaa") (Store.find t "first");
  Alcotest.(check bool) "flipped record quarantined" false
    (Store.mem t "second");
  Store.close t

let test_header_damage_is_fatal () =
  (* a destroyed header means nothing in the file can be trusted *)
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "NOT-A-MSCHED-STORE at all, just bytes";
  close_out oc;
  (match Store.open_ ~schema:7 path with
  | Ok _ -> Alcotest.fail "bad magic must not open"
  | Error d ->
    Alcotest.(check bool) "hard error" true (Diag.is_error d);
    Alcotest.(check bool) "STORE_CORRUPT" true
      (d.Diag.code = Diag.Store_corrupt));
  (* schema mismatch: the file is healthy but belongs to someone else *)
  Sys.remove path;
  (match Store.open_ ~schema:7 path with
  | Ok t -> Store.close t
  | Error d -> Alcotest.failf "create failed: %s" (Diag.render d));
  match Store.open_ ~schema:8 path with
  | Ok _ -> Alcotest.fail "schema mismatch must not open"
  | Error d ->
    Alcotest.(check bool) "SWEEP_MISMATCH" true
      (d.Diag.code = Diag.Sweep_mismatch)

let test_verify_and_gc () =
  with_store @@ fun path t ->
  Store.append t ~key:"k1" ~payload:"v1";
  Store.append t ~key:"k2" ~payload:"v2";
  Store.append t ~key:"k1" ~payload:"v1-new";
  Store.close t;
  (match Store.verify path with
  | Error d -> Alcotest.failf "verify failed: %s" (Diag.render d)
  | Ok r ->
    Alcotest.(check int) "physical records include the superseded one" 3
      r.Store.v_physical_records;
    Alcotest.(check int) "two distinct keys" 2 r.Store.v_distinct_keys;
    Alcotest.(check int) "whole file intact" r.Store.v_file_bytes
      r.Store.v_intact_bytes;
    Alcotest.(check bool) "no corruption" true (r.Store.v_corruption = None));
  let before = file_size path in
  (match Store.gc path with
  | Error d -> Alcotest.failf "gc failed: %s" (Diag.render d)
  | Ok g ->
    Alcotest.(check int) "gc keeps the live records" 2 g.Store.gc_kept;
    Alcotest.(check int) "gc drops the superseded record" 1
      g.Store.gc_dropped_records;
    Alcotest.(check int) "byte accounting" before g.Store.gc_bytes_before;
    Alcotest.(check bool) "compaction shrank the file" true
      (g.Store.gc_bytes_after < before));
  let t = reopen path in
  Alcotest.(check (option string)) "gc kept the live value" (Some "v1-new")
    (Store.find t "k1");
  Alcotest.(check (option string)) "gc kept the other key" (Some "v2")
    (Store.find t "k2");
  Store.close t

let test_contents_readonly () =
  with_store @@ fun path t ->
  Store.append t ~key:"a" ~payload:"1";
  Store.append t ~key:"b" ~payload:"2";
  Store.close t;
  match Store.contents path with
  | Error d -> Alcotest.failf "contents failed: %s" (Diag.render d)
  | Ok kvs ->
    Alcotest.(check (list (pair string string)))
      "live records in order"
      [ ("a", "1"); ("b", "2") ]
      kvs

(* -- journal ------------------------------------------------------------- *)

let with_journal ~identity f =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  match Journal.open_ ~identity path with
  | Error d -> Alcotest.failf "journal open failed: %s" (Diag.render d)
  | Ok j -> f path j

let test_journal_identity () =
  with_journal ~identity:"cafe0123456789abcafe0123456789ab" @@ fun path j ->
  Alcotest.(check string) "fresh journal claims the identity"
    "cafe0123456789abcafe0123456789ab" (Journal.identity j);
  Alcotest.(check int) "no marks yet" 0 (Journal.marked j);
  Journal.mark j "point-1";
  Journal.mark j "point-2";
  Journal.mark j "point-1";
  Alcotest.(check int) "marks are idempotent" 2 (Journal.marked j);
  Alcotest.(check bool) "is_marked" true (Journal.is_marked j "point-1");
  Alcotest.(check bool) "unmarked key" false (Journal.is_marked j "point-3");
  Alcotest.check_raises "the identity key is reserved"
    (Invalid_argument "Engine.Journal.mark: reserved key") (fun () ->
      Journal.mark j "@sweep-identity");
  Journal.close j;
  (* same identity resumes; a different identity is refused *)
  (match Journal.open_ ~identity:"cafe0123456789abcafe0123456789ab" path with
  | Error d -> Alcotest.failf "matching resume failed: %s" (Diag.render d)
  | Ok j ->
    Alcotest.(check int) "marks survive reopen" 2 (Journal.marked j);
    Journal.close j);
  (match Journal.open_ ~identity:"deadbeefdeadbeefdeadbeefdeadbeef" path with
  | Ok _ -> Alcotest.fail "mismatched identity must be refused"
  | Error d ->
    Alcotest.(check bool) "SWEEP_MISMATCH" true
      (d.Diag.code = Diag.Sweep_mismatch);
    Alcotest.(check bool) "message names the claimed identity" true
      (contains (Diag.render d) "cafe01234567"));
  (* the read-only summary agrees *)
  match Journal.info path with
  | Error d -> Alcotest.failf "info failed: %s" (Diag.render d)
  | Ok i ->
    Alcotest.(check string) "identity prefix" "cafe01234567"
      i.Journal.identity_prefix;
    Alcotest.(check int) "info counts the marks" 2 i.Journal.marks;
    Alcotest.(check bool) "no corruption" true (i.Journal.corruption = None)

let test_journal_truncation_loses_marks_only () =
  with_journal ~identity:"cafe0123456789abcafe0123456789ab" @@ fun path j ->
  Journal.mark j "p1";
  Journal.mark j "p2";
  Journal.close j;
  Unix.truncate path (file_size path - 7);
  match Journal.open_ ~identity:"cafe0123456789abcafe0123456789ab" path with
  | Error d -> Alcotest.failf "reopen failed: %s" (Diag.render d)
  | Ok j ->
    Alcotest.(check int) "the torn mark is lost, not corrupted" 1
      (Journal.marked j);
    Alcotest.(check bool) "intact mark survives" true (Journal.is_marked j "p1");
    Alcotest.(check int) "quarantine reported" 1
      (List.length (Journal.warnings j));
    Journal.close j

let tests =
  ( "store",
    [
      Alcotest.test_case "append/find roundtrip across reopen" `Quick
        test_roundtrip;
      Alcotest.test_case "last record per key wins" `Quick
        test_last_record_wins;
      Alcotest.test_case "identical re-append is a no-op" `Quick
        test_identical_append_is_noop;
      Alcotest.test_case "truncated tail is quarantined, not fatal" `Quick
        test_truncated_tail_quarantined;
      Alcotest.test_case "checksum catches a flipped byte" `Quick
        test_bitflip_quarantined;
      Alcotest.test_case "header damage and schema mismatch are fatal" `Quick
        test_header_damage_is_fatal;
      Alcotest.test_case "verify reports, gc compacts atomically" `Quick
        test_verify_and_gc;
      Alcotest.test_case "contents reads without mutating" `Quick
        test_contents_readonly;
      Alcotest.test_case "journal claims and enforces sweep identity" `Quick
        test_journal_identity;
      Alcotest.test_case "journal truncation loses marks only" `Quick
        test_journal_truncation_loses_marks_only;
    ] )
