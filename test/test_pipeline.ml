(* The end-to-end pipeline: comparisons, helpers and the kernel-scheduler
   driven auto-clustering. *)

module P = Cds.Pipeline

let setup () =
  let app = Fixtures.same_set () in
  let clustering = Fixtures.same_set_clustering app in
  (app, clustering, Fixtures.default_config)

let test_run_all_ok () =
  let app, clustering, config = setup () in
  let c = P.run config app clustering in
  Alcotest.(check bool) "basic ok" true (Result.is_ok c.P.basic);
  Alcotest.(check bool) "ds ok" true (Result.is_ok c.P.ds);
  Alcotest.(check bool) "cds ok" true (Result.is_ok c.P.cds);
  (match (P.improvement c `Ds, P.improvement c `Cds) with
  | Some ds, Some cds -> Alcotest.(check bool) "cds >= ds" true (cds >= ds)
  | _ -> Alcotest.fail "improvements missing");
  Alcotest.(check (option int)) "dt" (Some 100) (P.dt_words c);
  match P.ds_rf c with
  | Some rf -> Alcotest.(check bool) "rf >= 1" true (rf >= 1)
  | None -> Alcotest.fail "rf missing"

let test_improvement_none_when_infeasible () =
  let app, clustering, _ = setup () in
  (* too small for basic (footprint ~130 + results) but fine for ds/cds *)
  let config = Morphosys.Config.m1 ~fb_set_size:150 in
  let c = P.run config app clustering in
  Alcotest.(check bool) "basic infeasible" true (Result.is_error c.P.basic);
  Alcotest.(check (option (float 1.))) "no ds improvement" None
    (P.improvement c `Ds);
  Alcotest.(check bool) "rf still reported from cds" true (P.ds_rf c <> None)

let test_auto_clustering () =
  let app, _, config = setup () in
  (match P.auto_clustering config app with
  | Some (clustering, cycles) ->
    Alcotest.(check bool) "valid clustering" true
      (Kernel_ir.Cluster.validate app clustering = Ok ());
    Alcotest.(check bool) "positive cycles" true (cycles > 0);
    (* auto must be at least as good as the fixed partition *)
    let fixed = P.run config app (Fixtures.same_set_clustering app) in
    (match fixed.P.cds with
    | Ok (s, _) ->
      Alcotest.(check bool) "auto <= fixed" true
        (cycles <= s.P.metrics.Msim.Metrics.total_cycles)
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no feasible clustering found");
  (* basic objective also works *)
  match P.auto_clustering ~scheduler:"basic" config app with
  | Some _ -> ()
  | None -> Alcotest.fail "basic auto-clustering failed"

let test_auto_clustering_infeasible () =
  let app, _, _ = setup () in
  let config = Morphosys.Config.make ~fb_set_size:8 ~cm_capacity:8 () in
  Alcotest.(check bool) "nothing fits an 8-word machine" true
    (P.auto_clustering config app = None)

let test_allocation_report () =
  let app, clustering, config = setup () in
  match P.allocation_report config app clustering with
  | Ok r ->
    Alcotest.(check (list string)) "no failures" []
      r.Cds.Allocation_algorithm.failures
  | Error e -> Alcotest.fail e

let tests =
  ( "pipeline",
    [
      Alcotest.test_case "run all" `Quick test_run_all_ok;
      Alcotest.test_case "infeasible handling" `Quick
        test_improvement_none_when_infeasible;
      Alcotest.test_case "auto clustering" `Quick test_auto_clustering;
      Alcotest.test_case "auto clustering infeasible" `Quick
        test_auto_clustering_infeasible;
      Alcotest.test_case "allocation report" `Quick test_allocation_report;
    ] )
