open Kernel_ir

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail ("expected Invalid_argument: " ^ name)

(* -- Kernel ------------------------------------------------------------ *)

let test_kernel_make () =
  let k = Kernel.make ~id:0 ~name:"dct" ~contexts:12 ~exec_cycles:300 in
  Alcotest.(check string) "name" "dct" k.Kernel.name;
  expect_invalid "negative id" (fun () ->
      Kernel.make ~id:(-1) ~name:"x" ~contexts:1 ~exec_cycles:1);
  expect_invalid "empty name" (fun () ->
      Kernel.make ~id:0 ~name:"" ~contexts:1 ~exec_cycles:1);
  expect_invalid "zero contexts" (fun () ->
      Kernel.make ~id:0 ~name:"x" ~contexts:0 ~exec_cycles:1);
  expect_invalid "zero cycles" (fun () ->
      Kernel.make ~id:0 ~name:"x" ~contexts:1 ~exec_cycles:0)

(* -- Data -------------------------------------------------------------- *)

let test_data_make () =
  let d =
    Data.make ~id:0 ~name:"d" ~size:8 ~producer:Data.External
      ~consumers:[ 2; 1; 2 ] ~final:false ()
  in
  Alcotest.(check (list int)) "consumers sorted+deduped" [ 1; 2 ] d.Data.consumers;
  Alcotest.(check (option int)) "first" (Some 1) (Data.first_consumer d);
  Alcotest.(check (option int)) "last" (Some 2) (Data.last_consumer d);
  Alcotest.(check bool) "external" true (Data.is_external d);
  expect_invalid "zero size" (fun () ->
      Data.make ~id:0 ~name:"d" ~size:0 ~producer:Data.External ~consumers:[ 1 ]
        ~final:false ());
  expect_invalid "external without consumers" (fun () ->
      Data.make ~id:0 ~name:"d" ~size:8 ~producer:Data.External ~consumers:[]
        ~final:false ());
  expect_invalid "dead result" (fun () ->
      Data.make ~id:0 ~name:"d" ~size:8 ~producer:(Data.Produced_by 0)
        ~consumers:[] ~final:false ());
  expect_invalid "self consumption" (fun () ->
      Data.make ~id:0 ~name:"d" ~size:8 ~producer:(Data.Produced_by 1)
        ~consumers:[ 1 ] ~final:false ());
  expect_invalid "consumer before producer" (fun () ->
      Data.make ~id:0 ~name:"d" ~size:8 ~producer:(Data.Produced_by 2)
        ~consumers:[ 1 ] ~final:false ())

(* -- Application / Builder --------------------------------------------- *)

let test_application_queries () =
  let app = Fixtures.toy () in
  Alcotest.(check int) "kernels" 4 (Application.n_kernels app);
  Alcotest.(check int) "iterations" 4 app.Application.iterations;
  let inputs k =
    List.map (fun (d : Data.t) -> d.Data.name) (Application.inputs_of app k)
  in
  Alcotest.(check (list string)) "k1 inputs" [ "b"; "r01" ] (inputs 1);
  Alcotest.(check (list string)) "k2 inputs" [ "a"; "f1" ] (inputs 2);
  let outputs k =
    List.map (fun (d : Data.t) -> d.Data.name) (Application.outputs_of app k)
  in
  Alcotest.(check (list string)) "k0 outputs" [ "r01"; "r03" ] (outputs 0);
  Alcotest.(check int) "external count" 2
    (List.length (Application.external_data app));
  Alcotest.(check int) "final count" 2
    (List.length (Application.final_results app));
  Alcotest.(check int) "TDS" 265 (Application.total_data_words app);
  Alcotest.(check int) "total contexts" 400 (Application.total_context_words app);
  Alcotest.(check string) "by name" "k2" (Application.kernel_by_name app "k2").Kernel.name;
  Alcotest.(check int) "data by name size" 30 (Application.data_by_name app "r03").Data.size;
  Alcotest.(check (option string))
    "by name opt" None
    (Option.map
       (fun (k : Kernel.t) -> k.Kernel.name)
       (Application.kernel_by_name_opt app "zz"));
  (match Application.kernel_by_name app "zz" with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the kernel" true
      (Astring_contains.contains msg "zz")
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_builder_errors () =
  expect_invalid "unknown kernel in consumers" (fun () ->
      Builder.(
        create "bad" ~iterations:1
        |> kernel "k" ~contexts:1 ~cycles:1
        |> input "d" ~size:4 ~consumers:[ "nope" ]
        |> build));
  expect_invalid "duplicate kernel names" (fun () ->
      Builder.(
        create "bad" ~iterations:1
        |> kernel "k" ~contexts:1 ~cycles:1
        |> kernel "k" ~contexts:1 ~cycles:1
        |> input "d" ~size:4 ~consumers:[ "k" ]
        |> build));
  expect_invalid "duplicate data names" (fun () ->
      Builder.(
        create "bad" ~iterations:1
        |> kernel "k" ~contexts:1 ~cycles:1
        |> input "d" ~size:4 ~consumers:[ "k" ]
        |> input "d" ~size:4 ~consumers:[ "k" ]
        |> build));
  expect_invalid "no kernels" (fun () ->
      Builder.(create "bad" ~iterations:1 |> build));
  expect_invalid "zero iterations" (fun () ->
      Builder.(
        create "bad" ~iterations:0
        |> kernel "k" ~contexts:1 ~cycles:1
        |> build))

(* -- Cluster ------------------------------------------------------------ *)

let test_cluster_partition () =
  let app = Fixtures.toy () in
  let clustering = Cluster.of_partition app [ 1; 3 ] in
  Alcotest.(check int) "count" 2 (Cluster.n_clusters clustering);
  Alcotest.(check (list int)) "sizes" [ 1; 3 ] (Cluster.partition_sizes clustering);
  let c1 = Cluster.find clustering 1 in
  Alcotest.(check (list int)) "second cluster kernels" [ 1; 2; 3 ] c1.Cluster.kernels;
  Alcotest.(check bool) "sets alternate" true
    (c1.Cluster.fb_set = Morphosys.Frame_buffer.Set_b);
  Alcotest.(check bool) "validate ok" true
    (Cluster.validate app clustering = Ok ());
  Alcotest.(check int) "cluster of kernel 2" 1
    (Cluster.cluster_of_kernel clustering 2).Cluster.id;
  expect_invalid "bad sizes" (fun () -> Cluster.of_partition app [ 2; 3 ]);
  expect_invalid "zero size" (fun () -> Cluster.of_partition app [ 0; 4 ]);
  Alcotest.(check int) "singletons" 4
    (Cluster.n_clusters (Cluster.singleton_per_kernel app));
  Alcotest.(check int) "whole" 1
    (Cluster.n_clusters (Cluster.whole_application app))

let test_cluster_validate_rejects () =
  let app = Fixtures.toy () in
  let clustering = Cluster.of_partition app [ 2; 2 ] in
  let broken =
    List.map
      (fun (c : Cluster.t) ->
        { c with Cluster.fb_set = Morphosys.Frame_buffer.Set_a })
      clustering
  in
  Alcotest.(check bool) "non-alternating rejected" true
    (Result.is_error (Cluster.validate app broken));
  let missing = [ List.hd clustering ] in
  Alcotest.(check bool) "coverage rejected" true
    (Result.is_error (Cluster.validate app missing))

(* -- Dot ----------------------------------------------------------------- *)

let test_dot () =
  let app = Fixtures.toy () in
  let g = Dot.kernel_graph app in
  Alcotest.(check bool) "digraph" true (Astring_contains.contains g "digraph");
  Alcotest.(check bool) "kernel node" true (Astring_contains.contains g "k3");
  let cg = Dot.clustered_graph app (Fixtures.toy_clustering app) in
  Alcotest.(check bool) "subgraph" true
    (Astring_contains.contains cg "subgraph cluster_0");
  let lf = Dot.loop_fission_graph app ~rf:3 in
  Alcotest.(check bool) "self loop annotated" true
    (Astring_contains.contains lf "RF=3");
  expect_invalid "rf validation" (fun () -> Dot.loop_fission_graph app ~rf:0)

let tests =
  ( "kernel_ir",
    [
      Alcotest.test_case "kernel make" `Quick test_kernel_make;
      Alcotest.test_case "data make" `Quick test_data_make;
      Alcotest.test_case "application queries" `Quick test_application_queries;
      Alcotest.test_case "builder errors" `Quick test_builder_errors;
      Alcotest.test_case "cluster partition" `Quick test_cluster_partition;
      Alcotest.test_case "cluster validate" `Quick test_cluster_validate_rejects;
      Alcotest.test_case "dot export" `Quick test_dot;
    ] )
