(* Engine subsystem units: pool ordering and failure determinism, cache
   memoisation and counters, content-addressed keys, stats accumulation. *)

let test_pool_ordering () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  let expected = Array.init 37 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves task order" jobs)
        expected
        (Engine.Pool.run ~jobs tasks))
    [ 1; 2; 4; 8 ];
  Alcotest.(check (array int)) "empty" [||] (Engine.Pool.run ~jobs:4 [||]);
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ]
    (Engine.Pool.map ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_exception () =
  List.iter
    (fun jobs ->
      let ran = Array.make 8 false in
      let tasks =
        Array.init 8 (fun i () ->
            ran.(i) <- true;
            if i = 3 then failwith "boom3";
            if i = 5 then failwith "boom5";
            i)
      in
      (match Engine.Pool.run ~jobs tasks with
      | (_ : int array) -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* the lowest-indexed failure wins, whatever the interleaving *)
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d deterministic failure" jobs)
          "boom3" msg);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d every task still ran" jobs)
        true
        (Array.for_all Fun.id ran))
    [ 1; 4 ]

let test_pool_recommended () =
  Alcotest.(check bool) "at least one domain" true
    (Engine.Pool.recommended_jobs () >= 1)

let test_cache_basics () =
  let c = Engine.Cache.create () in
  Alcotest.(check (option int)) "miss on empty" None (Engine.Cache.find c "k");
  Engine.Cache.add c "k" 42;
  Alcotest.(check (option int)) "hit after add" (Some 42)
    (Engine.Cache.find c "k");
  (* first value in wins: a key is never overwritten *)
  Engine.Cache.add c "k" 99;
  Alcotest.(check (option int)) "add does not overwrite" (Some 42)
    (Engine.Cache.find c "k");
  Alcotest.(check int) "length" 1 (Engine.Cache.length c);
  Alcotest.(check int) "hits" 2 (Engine.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Engine.Cache.misses c);
  Engine.Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Engine.Cache.length c);
  Alcotest.(check int) "counters reset" 0 (Engine.Cache.hits c)

let test_cache_find_or_add () =
  let c = Engine.Cache.create () in
  let computed = ref 0 in
  let get () =
    Engine.Cache.find_or_add c "key" (fun () ->
        incr computed;
        !computed)
  in
  Alcotest.(check int) "computed once" 1 (get ());
  Alcotest.(check int) "served from cache" 1 (get ());
  Alcotest.(check int) "thunk ran once" 1 !computed;
  (* hammer one key from the pool: every worker must observe the single
     interned value *)
  let c2 = Engine.Cache.create () in
  let values =
    Engine.Pool.run ~jobs:4
      (Array.init 16 (fun i () ->
           Engine.Cache.find_or_add c2 "shared" (fun () -> i)))
  in
  let first = values.(0) in
  Alcotest.(check bool) "consistent across workers" true
    (Array.for_all (fun v -> v = first) values);
  Alcotest.(check int) "one entry" 1 (Engine.Cache.length c2)

let test_key_digests () =
  let d1 = Engine.Key.digest_value (1, [ "a"; "b" ], 3.0) in
  let d2 = Engine.Key.digest_value (1, [ "a"; "b" ], 3.0) in
  let d3 = Engine.Key.digest_value (1, [ "a"; "c" ], 3.0) in
  Alcotest.(check string) "structural equality -> equal digest" d1 d2;
  Alcotest.(check bool) "different value -> different digest" true (d1 <> d3);
  Alcotest.(check bool) "combine keeps boundaries" true
    (Engine.Key.combine [ "ab"; "c" ] <> Engine.Key.combine [ "a"; "bc" ]);
  (* the digest a sweep uses: a real application round-trips *)
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  Alcotest.(check string) "application digest is stable"
    (Engine.Key.digest_value (app, clustering))
    (Engine.Key.digest_value (Workloads.Mpeg.app (), clustering))

let test_stats () =
  let st = Engine.Stats.create () in
  Alcotest.(check int) "fresh" 0 (Engine.Stats.tasks_run st);
  let v = Engine.Stats.time st ~label:"ds" (fun () -> 7) in
  Alcotest.(check int) "thunk value" 7 v;
  Engine.Stats.record st ~label:"ds" ~wall:0.25 ~cpu:0.2;
  Engine.Stats.record st ~label:"cds" ~wall:1.0 ~cpu:0.9;
  Alcotest.(check int) "tasks counted" 3 (Engine.Stats.tasks_run st);
  (match Engine.Stats.entries st with
  | [ cds; ds ] ->
    Alcotest.(check string) "sorted by label" "cds" cds.Engine.Stats.label;
    Alcotest.(check int) "ds count" 2 ds.Engine.Stats.count;
    Alcotest.(check bool) "ds wall accumulated" true
      (ds.Engine.Stats.wall >= 0.25);
    Alcotest.(check bool) "max >= min" true
      (ds.Engine.Stats.max_wall >= ds.Engine.Stats.min_wall)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Engine.Stats.note_cache st ~hits:5 ~misses:3;
  Engine.Stats.note_cache st ~hits:1 ~misses:0;
  Alcotest.(check int) "cache hits accumulate" 6 (Engine.Stats.cache_hits st);
  Alcotest.(check int) "cache misses accumulate" 3
    (Engine.Stats.cache_misses st);
  (* timing is recorded even when the thunk raises *)
  (match Engine.Stats.time st ~label:"boom" (fun () -> failwith "x") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "failed task still timed" 4
    (Engine.Stats.tasks_run st);
  let rendered = Format.asprintf "%a" Engine.Stats.pp st in
  Alcotest.(check bool) "pp mentions cache" true
    (Astring_contains.contains rendered "cache")

let test_pool_bad_jobs () =
  List.iter
    (fun jobs ->
      match Engine.Pool.run ~jobs [| (fun () -> 1) |] with
      | (_ : int array) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "message names jobs" true
          (Astring_contains.contains msg "jobs"))
    [ 0; -1 ];
  (match Engine.Pool.run_results ~jobs:0 [| (fun () -> 1) |] with
  | (_ : (int, Diag.t) result array) ->
    Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_run_results_isolation () =
  List.iter
    (fun jobs ->
      let tasks =
        Array.init 9 (fun i () ->
            if i = 4 then failwith "crash4";
            i * 10)
      in
      let slots = Engine.Pool.run_results ~jobs tasks in
      Array.iteri
        (fun i slot ->
          match slot with
          | Ok v when i <> 4 ->
            Alcotest.(check int)
              (Printf.sprintf "jobs=%d slot %d survives" jobs i)
              (i * 10) v
          | Error d when i = 4 ->
            Alcotest.(check string) "crash code" "TASK_CRASHED"
              (Diag.code_name d.Diag.code);
            Alcotest.(check bool) "message carries the exception" true
              (Astring_contains.contains (Diag.render d) "crash4")
          | Ok _ -> Alcotest.failf "slot 4 should have crashed (jobs=%d)" jobs
          | Error d ->
            Alcotest.failf "slot %d unexpectedly failed: %s" i
              (Diag.render d))
        slots)
    [ 1; 4 ]

let test_run_results_deadline () =
  let slots =
    Engine.Pool.run_results ~jobs:2 ~deadline_s:0.02
      (Array.init 2 (fun i () ->
           if i = 0 then
             (* cooperative long-runner: checkpoints until cancelled *)
             let rec spin () =
               Engine.Pool.checkpoint ();
               Unix.sleepf 0.005;
               spin ()
             in
             spin ()
           else 7))
  in
  (match slots.(0) with
  | Error d ->
    Alcotest.(check string) "timeout code" "TASK_TIMEOUT"
      (Diag.code_name d.Diag.code)
  | Ok _ -> Alcotest.fail "expected a deadline kill");
  (match slots.(1) with
  | Ok v -> Alcotest.(check int) "fast task unaffected" 7 v
  | Error d -> Alcotest.failf "fast task failed: %s" (Diag.render d));
  (* outside a pool task, checkpoint is a no-op *)
  Engine.Pool.checkpoint ()

let test_deadline_sequential () =
  (* the cooperative deadline must also fire on the jobs=1 in-caller
     path, not only across worker domains *)
  let slots =
    Engine.Pool.run_results ~jobs:1 ~deadline_s:0.02
      [|
        (fun () ->
          let rec spin () =
            Engine.Pool.checkpoint ();
            Unix.sleepf 0.005;
            spin ()
          in
          spin ());
        (fun () -> 42);
      |]
  in
  (match slots.(0) with
  | Error d ->
    Alcotest.(check string) "sequential timeout code" "TASK_TIMEOUT"
      (Diag.code_name d.Diag.code)
  | Ok _ -> Alcotest.fail "expected a sequential deadline kill");
  match slots.(1) with
  | Ok v -> Alcotest.(check int) "later task still runs" 42 v
  | Error d -> Alcotest.failf "later task failed: %s" (Diag.render d)

let test_digest_guard () =
  (* pure data digests with both entry points *)
  let v = (1, [ "a" ], 2.5) in
  (match Engine.Key.digest_value_result v with
  | Ok d ->
    Alcotest.(check string) "result form agrees with the raising form" d
      (Engine.Key.digest_value v)
  | Error d -> Alcotest.failf "pure data refused: %s" (Diag.render d));
  (* a closure is not content-addressable: structured diag, not a crash *)
  let closure = fun x -> x + 1 in
  (match Engine.Key.digest_value_result closure with
  | Ok _ -> Alcotest.fail "closures must not digest"
  | Error d ->
    Alcotest.(check string) "INVALID_APP" "INVALID_APP"
      (Diag.code_name d.Diag.code);
    Alcotest.(check bool) "explains the contract" true
      (Astring_contains.contains (Diag.to_string d) "content-addressable"));
  match Engine.Key.digest_value closure with
  | (_ : string) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "raising form names itself" true
      (Astring_contains.contains msg "digest_value")

let test_stats_store_counters () =
  let st = Engine.Stats.create () in
  Alcotest.(check int) "fresh replayed" 0 (Engine.Stats.store_replayed st);
  Engine.Stats.note_store st ~replayed:5 ~quarantined:1;
  Engine.Stats.note_store st ~replayed:2 ~quarantined:0;
  Alcotest.(check int) "replayed accumulates" 7
    (Engine.Stats.store_replayed st);
  Alcotest.(check int) "quarantined accumulates" 1
    (Engine.Stats.store_quarantined st);
  let rendered = Format.asprintf "%a" Engine.Stats.pp st in
  Alcotest.(check bool) "pp mentions the store" true
    (Astring_contains.contains rendered "store: 7 replayed / 1 quarantined")

let test_fault_injection () =
  (* rate 1.0: every pool visit fires; without retries every slot is an
     absorbed Fault_injected diagnostic, never an uncaught exception *)
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "pool" ] ~rate:1.0 ~seed:11 ())
    (fun () ->
      let slots =
        Engine.Pool.run_results ~jobs:4 (Array.init 12 (fun i () -> i))
      in
      Array.iter
        (function
          | Error d ->
            Alcotest.(check string) "injected code" "FAULT_INJECTED"
              (Diag.code_name d.Diag.code)
          | Ok _ -> Alcotest.fail "rate-1.0 plan must fire on every task")
        slots;
      Alcotest.(check bool) "faults counted" true
        (Engine.Faults.injected_count () >= 12));
  Alcotest.(check bool) "disarmed after with_plan" true
    (Engine.Faults.armed () = None);
  (* a site filter keeps other sites quiet *)
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "cache" ] ~rate:1.0 ~seed:11 ())
    (fun () ->
      let slots =
        Engine.Pool.run_results ~jobs:2 (Array.init 4 (fun i () -> i))
      in
      Array.iter
        (function
          | Ok _ -> ()
          | Error d -> Alcotest.failf "pool fired: %s" (Diag.render d))
        slots);
  (* determinism: the same plan fires the same visits *)
  let fired_of () =
    Engine.Faults.with_plan
      (Engine.Faults.plan ~sites:[ "pool" ] ~rate:0.4 ~seed:5 ())
      (fun () ->
        Engine.Pool.run_results ~jobs:1 (Array.init 20 (fun i () -> i))
        |> Array.map Result.is_error)
  in
  Alcotest.(check (array bool)) "seeded firings reproducible" (fired_of ())
    (fired_of ())

let test_fault_retries () =
  (* injected faults are transient (the visit counter advances), so enough
     retries always push a 0.5-rate task through eventually *)
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "pool" ] ~rate:0.5 ~seed:3 ())
    (fun () ->
      let slots =
        Engine.Pool.run_results ~jobs:2 ~retries:30
          (Array.init 16 (fun i () -> i))
      in
      Array.iteri
        (fun i slot ->
          match slot with
          | Ok v -> Alcotest.(check int) "retried through" i v
          | Error d ->
            Alcotest.failf "slot %d not absorbed by retries: %s" i
              (Diag.render d))
        slots;
      Alcotest.(check bool) "some faults did fire" true
        (Engine.Faults.injected_count () > 0));
  (* crashes are never retried *)
  let attempts = Atomic.make 0 in
  let slots =
    Engine.Pool.run_results ~retries:5
      [| (fun () ->
           Atomic.incr attempts;
           failwith "hard") |]
  in
  Alcotest.(check bool) "crash reported" true (Result.is_error slots.(0));
  Alcotest.(check int) "no retry for a crash" 1 (Atomic.get attempts)

let test_cache_miss_rollback () =
  let c = Engine.Cache.create () in
  (match Engine.Cache.find_or_add c "k" (fun () -> failwith "compute died") with
  | (_ : int) -> Alcotest.fail "expected the compute exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "failed compute is not a miss" 0
    (Engine.Cache.misses c);
  Alcotest.(check int) "nothing cached" 0 (Engine.Cache.length c);
  Alcotest.(check int) "retry computes" 42
    (Engine.Cache.find_or_add c "k" (fun () -> 42));
  Alcotest.(check int) "exactly one miss counted" 1 (Engine.Cache.misses c);
  (* an injected cache fault degrades the lookup to a miss *)
  Engine.Faults.with_plan
    (Engine.Faults.plan ~sites:[ "cache" ] ~rate:1.0 ~seed:2 ())
    (fun () ->
      Alcotest.(check int) "find_or_add survives injected lookup fault" 42
        (Engine.Cache.find_or_add c "k" (fun () -> 42)))

let tests =
  ( "engine",
    [
      Alcotest.test_case "pool ordering" `Quick test_pool_ordering;
      Alcotest.test_case "pool exceptions" `Quick test_pool_exception;
      Alcotest.test_case "pool recommended jobs" `Quick test_pool_recommended;
      Alcotest.test_case "pool bad jobs" `Quick test_pool_bad_jobs;
      Alcotest.test_case "run_results isolation" `Quick
        test_run_results_isolation;
      Alcotest.test_case "run_results deadline" `Quick
        test_run_results_deadline;
      Alcotest.test_case "deadline at jobs=1" `Quick test_deadline_sequential;
      Alcotest.test_case "digest guard on unmarshalable values" `Quick
        test_digest_guard;
      Alcotest.test_case "stats store counters" `Quick
        test_stats_store_counters;
      Alcotest.test_case "fault injection" `Quick test_fault_injection;
      Alcotest.test_case "fault retries" `Quick test_fault_retries;
      Alcotest.test_case "cache basics" `Quick test_cache_basics;
      Alcotest.test_case "cache find_or_add" `Quick test_cache_find_or_add;
      Alcotest.test_case "cache miss rollback" `Quick test_cache_miss_rollback;
      Alcotest.test_case "key digests" `Quick test_key_digests;
      Alcotest.test_case "stats" `Quick test_stats;
    ] )
