(* Engine subsystem units: pool ordering and failure determinism, cache
   memoisation and counters, content-addressed keys, stats accumulation. *)

let test_pool_ordering () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  let expected = Array.init 37 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves task order" jobs)
        expected
        (Engine.Pool.run ~jobs tasks))
    [ 1; 2; 4; 8 ];
  Alcotest.(check (array int)) "empty" [||] (Engine.Pool.run ~jobs:4 [||]);
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ]
    (Engine.Pool.map ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_exception () =
  List.iter
    (fun jobs ->
      let ran = Array.make 8 false in
      let tasks =
        Array.init 8 (fun i () ->
            ran.(i) <- true;
            if i = 3 then failwith "boom3";
            if i = 5 then failwith "boom5";
            i)
      in
      (match Engine.Pool.run ~jobs tasks with
      | (_ : int array) -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* the lowest-indexed failure wins, whatever the interleaving *)
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d deterministic failure" jobs)
          "boom3" msg);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d every task still ran" jobs)
        true
        (Array.for_all Fun.id ran))
    [ 1; 4 ]

let test_pool_recommended () =
  Alcotest.(check bool) "at least one domain" true
    (Engine.Pool.recommended_jobs () >= 1)

let test_cache_basics () =
  let c = Engine.Cache.create () in
  Alcotest.(check (option int)) "miss on empty" None (Engine.Cache.find c "k");
  Engine.Cache.add c "k" 42;
  Alcotest.(check (option int)) "hit after add" (Some 42)
    (Engine.Cache.find c "k");
  (* first value in wins: a key is never overwritten *)
  Engine.Cache.add c "k" 99;
  Alcotest.(check (option int)) "add does not overwrite" (Some 42)
    (Engine.Cache.find c "k");
  Alcotest.(check int) "length" 1 (Engine.Cache.length c);
  Alcotest.(check int) "hits" 2 (Engine.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Engine.Cache.misses c);
  Engine.Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Engine.Cache.length c);
  Alcotest.(check int) "counters reset" 0 (Engine.Cache.hits c)

let test_cache_find_or_add () =
  let c = Engine.Cache.create () in
  let computed = ref 0 in
  let get () =
    Engine.Cache.find_or_add c "key" (fun () ->
        incr computed;
        !computed)
  in
  Alcotest.(check int) "computed once" 1 (get ());
  Alcotest.(check int) "served from cache" 1 (get ());
  Alcotest.(check int) "thunk ran once" 1 !computed;
  (* hammer one key from the pool: every worker must observe the single
     interned value *)
  let c2 = Engine.Cache.create () in
  let values =
    Engine.Pool.run ~jobs:4
      (Array.init 16 (fun i () ->
           Engine.Cache.find_or_add c2 "shared" (fun () -> i)))
  in
  let first = values.(0) in
  Alcotest.(check bool) "consistent across workers" true
    (Array.for_all (fun v -> v = first) values);
  Alcotest.(check int) "one entry" 1 (Engine.Cache.length c2)

let test_key_digests () =
  let d1 = Engine.Key.digest_value (1, [ "a"; "b" ], 3.0) in
  let d2 = Engine.Key.digest_value (1, [ "a"; "b" ], 3.0) in
  let d3 = Engine.Key.digest_value (1, [ "a"; "c" ], 3.0) in
  Alcotest.(check string) "structural equality -> equal digest" d1 d2;
  Alcotest.(check bool) "different value -> different digest" true (d1 <> d3);
  Alcotest.(check bool) "combine keeps boundaries" true
    (Engine.Key.combine [ "ab"; "c" ] <> Engine.Key.combine [ "a"; "bc" ]);
  (* the digest a sweep uses: a real application round-trips *)
  let app = Workloads.Mpeg.app () in
  let clustering = Workloads.Mpeg.clustering app in
  Alcotest.(check string) "application digest is stable"
    (Engine.Key.digest_value (app, clustering))
    (Engine.Key.digest_value (Workloads.Mpeg.app (), clustering))

let test_stats () =
  let st = Engine.Stats.create () in
  Alcotest.(check int) "fresh" 0 (Engine.Stats.tasks_run st);
  let v = Engine.Stats.time st ~label:"ds" (fun () -> 7) in
  Alcotest.(check int) "thunk value" 7 v;
  Engine.Stats.record st ~label:"ds" ~wall:0.25 ~cpu:0.2;
  Engine.Stats.record st ~label:"cds" ~wall:1.0 ~cpu:0.9;
  Alcotest.(check int) "tasks counted" 3 (Engine.Stats.tasks_run st);
  (match Engine.Stats.entries st with
  | [ cds; ds ] ->
    Alcotest.(check string) "sorted by label" "cds" cds.Engine.Stats.label;
    Alcotest.(check int) "ds count" 2 ds.Engine.Stats.count;
    Alcotest.(check bool) "ds wall accumulated" true
      (ds.Engine.Stats.wall >= 0.25);
    Alcotest.(check bool) "max >= min" true
      (ds.Engine.Stats.max_wall >= ds.Engine.Stats.min_wall)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Engine.Stats.note_cache st ~hits:5 ~misses:3;
  Engine.Stats.note_cache st ~hits:1 ~misses:0;
  Alcotest.(check int) "cache hits accumulate" 6 (Engine.Stats.cache_hits st);
  Alcotest.(check int) "cache misses accumulate" 3
    (Engine.Stats.cache_misses st);
  (* timing is recorded even when the thunk raises *)
  (match Engine.Stats.time st ~label:"boom" (fun () -> failwith "x") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "failed task still timed" 4
    (Engine.Stats.tasks_run st);
  let rendered = Format.asprintf "%a" Engine.Stats.pp st in
  Alcotest.(check bool) "pp mentions cache" true
    (Astring_contains.contains rendered "cache")

let tests =
  ( "engine",
    [
      Alcotest.test_case "pool ordering" `Quick test_pool_ordering;
      Alcotest.test_case "pool exceptions" `Quick test_pool_exception;
      Alcotest.test_case "pool recommended jobs" `Quick test_pool_recommended;
      Alcotest.test_case "cache basics" `Quick test_cache_basics;
      Alcotest.test_case "cache find_or_add" `Quick test_cache_find_or_add;
      Alcotest.test_case "key digests" `Quick test_key_digests;
      Alcotest.test_case "stats" `Quick test_stats;
    ] )
