(* Durable, crash-recoverable DSE: a resumed sweep must reproduce an
   uninterrupted run byte for byte while recomputing nothing that was
   journalled complete — and every flavour of on-disk damage must degrade
   to quarantine-and-recompute, never to a wrong result. *)

module Dse = Report.Dse
module Durable = Report.Dse.Durable

let contains = Astring_contains.contains
let fb_list = [ 1024; 2048 ]
let n_points = 3 * List.length fb_list

let mpeg () =
  let app = Workloads.Mpeg.app () in
  (app, Workloads.Mpeg.clustering app)

let tmp_path () =
  let path = Filename.temp_file "msched_dse" ".store" in
  Sys.remove path;
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".quarantine"; path ^ ".journal";
      path ^ ".journal.quarantine" ]

let with_path f =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () -> f path

let open_exn ?resume ~path (app, clustering) =
  match Durable.open_ ?resume ~path ~fb_list app clustering with
  | Ok d -> d
  | Error d -> Alcotest.failf "Durable.open_ failed: %s" (Diag.render d)

let test_durable_roundtrip () =
  let ((app, clustering) as w) = mpeg () in
  with_path @@ fun path ->
  let reference = Dse.sweep ~fb_list app clustering in
  (* cold run: persisting must not perturb the output *)
  let d = open_exn ~path w in
  let cold = Dse.sweep ~store:d ~fb_list app clustering in
  Alcotest.(check string) "durable run byte-identical" (Dse.to_csv reference)
    (Dse.to_csv cold);
  Alcotest.(check int) "every point journalled complete" n_points
    (Durable.completed d);
  Alcotest.(check int) "clean run has no warnings" 0
    (List.length (Durable.warnings d));
  Durable.close d;
  (* resume into a fresh process-worth of state: everything replays, the
     schedulers never run *)
  let d = open_exn ~resume:true ~path w in
  let st = Engine.Stats.create () in
  let resumed = Dse.sweep ~store:d ~stats:st ~fb_list app clustering in
  Alcotest.(check string) "resumed run byte-identical" (Dse.to_csv reference)
    (Dse.to_csv resumed);
  Alcotest.(check int) "all points served from the store" n_points
    (Engine.Stats.cache_hits st);
  Alcotest.(check int) "zero recomputation" 0 (Engine.Stats.tasks_run st);
  Alcotest.(check int) "stats count the replay" n_points
    (Engine.Stats.store_replayed st);
  Alcotest.(check int) "nothing quarantined" 0
    (Engine.Stats.store_quarantined st);
  Durable.close d

let test_crash_resume () =
  let ((app, clustering) as w) = mpeg () in
  with_path @@ fun path ->
  let reference = Dse.sweep ~fb_list app clustering in
  (* simulate a crash: injected faults at the pool entry kill a subset of
     the tasks before they can compute — exactly like a process dying
     between points, those tasks persist nothing *)
  let d1 = open_exn ~path w in
  Engine.Faults.arm
    (Engine.Faults.plan ~sites:[ "pool" ] ~rate:0.5 ~seed:11 ());
  let partial =
    Fun.protect ~finally:Engine.Faults.disarm (fun () ->
        Dse.sweep ~store:d1 ~fb_list app clustering)
  in
  Alcotest.(check int) "partial run still settles every point" n_points
    (List.length partial);
  let completed = Durable.completed d1 in
  Durable.close d1;
  Alcotest.(check bool) "the crash left work undone" true
    (completed < n_points);
  (* resume: only the unjournalled points run; output as if uninterrupted *)
  let d2 = open_exn ~resume:true ~path w in
  let st = Engine.Stats.create () in
  let resumed = Dse.sweep ~store:d2 ~stats:st ~fb_list app clustering in
  Alcotest.(check string) "resumed run byte-identical to uninterrupted"
    (Dse.to_csv reference) (Dse.to_csv resumed);
  Alcotest.(check int) "journalled points are never recomputed" completed
    (Engine.Stats.cache_hits st);
  Alcotest.(check int) "only the lost points run"
    (n_points - completed)
    (Engine.Stats.tasks_run st);
  Alcotest.(check int) "now everything is journalled" n_points
    (Durable.completed d2);
  Durable.close d2

let test_torn_tail_recomputes_one () =
  let ((app, clustering) as w) = mpeg () in
  with_path @@ fun path ->
  let reference = Dse.sweep ~fb_list app clustering in
  let d = open_exn ~path w in
  ignore (Dse.sweep ~store:d ~fb_list app clustering);
  Durable.close d;
  (* SIGKILL mid-append: the store loses its last record's trailer; the
     journal still marks the point complete — the mark must not be
     believed without the data *)
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 13);
  let d = open_exn ~resume:true ~path w in
  Alcotest.(check bool) "the quarantine is reported" true
    (List.exists
       (fun (w : Diag.t) -> w.Diag.code = Diag.Store_corrupt)
       (Durable.warnings d));
  let st = Engine.Stats.create () in
  let resumed = Dse.sweep ~jobs:1 ~store:d ~stats:st ~fb_list app clustering in
  Alcotest.(check string) "recovered run byte-identical"
    (Dse.to_csv reference) (Dse.to_csv resumed);
  Alcotest.(check int) "exactly the torn point is recomputed" 1
    (Engine.Stats.tasks_run st);
  Alcotest.(check int) "the other points replay" (n_points - 1)
    (Engine.Stats.cache_hits st);
  Durable.close d;
  (* the recomputed record superseded the torn one: next resume is clean *)
  let d = open_exn ~resume:true ~path w in
  let st = Engine.Stats.create () in
  ignore (Dse.sweep ~store:d ~stats:st ~fb_list app clustering);
  Alcotest.(check int) "repaired store replays fully" 0
    (Engine.Stats.tasks_run st);
  Durable.close d

(* Structural mirror of Dse's private [stored] record: Marshal is
   structural, so the test can read and forge store payloads without the
   type being exported. *)
type forged = {
  f_point : Dse.point;
  f_schedule : Sched.Schedule.t option;
}

let test_forged_schedule_fails_revalidation () =
  let ((app, clustering) as w) = mpeg () in
  with_path @@ fun path ->
  let reference = Dse.sweep ~fb_list app clustering in
  let d = open_exn ~path w in
  ignore (Dse.sweep ~store:d ~fb_list app clustering);
  Durable.close d;
  (* corrupt one record *in content*: checksums pass, the payload
     deserialises, but the schedule no longer satisfies the semantic
     validator — only re-validation can catch this *)
  let key, f =
    match Engine.Store.contents path with
    | Error diag -> Alcotest.failf "contents: %s" (Diag.render diag)
    | Ok records -> (
      let forge (key, payload) =
        match (Marshal.from_string payload 0 : forged) with
        | { f_schedule = Some _; _ } as f -> Some (key, f)
        | _ -> None
      in
      match List.find_map forge records with
      | Some kf -> kf
      | None -> Alcotest.fail "no feasible record to forge")
  in
  (match Engine.Store.open_ ~schema:Durable.schema_version path with
  | Error diag -> Alcotest.failf "reopen: %s" (Diag.render diag)
  | Ok store ->
    let broken =
      match f.f_schedule with
      | Some s -> { f with f_schedule = Some { s with Sched.Schedule.steps = [] } }
      | None -> assert false
    in
    Engine.Store.append store ~key ~payload:(Marshal.to_string broken []);
    Engine.Store.close store);
  let d = open_exn ~resume:true ~path w in
  Alcotest.(check bool) "re-validation quarantines the forged schedule" true
    (List.exists
       (fun (diag : Diag.t) ->
         diag.Diag.code = Diag.Store_corrupt
         && contains (Diag.render diag) "semantic validation")
       (Durable.warnings d));
  let st = Engine.Stats.create () in
  let resumed = Dse.sweep ~jobs:1 ~store:d ~stats:st ~fb_list app clustering in
  Alcotest.(check string) "recovered run byte-identical"
    (Dse.to_csv reference) (Dse.to_csv resumed);
  Alcotest.(check int) "exactly the forged point is recomputed" 1
    (Engine.Stats.tasks_run st);
  Alcotest.(check int) "stats report the quarantine" 1
    (Engine.Stats.store_quarantined st);
  Durable.close d

let test_identity_guards () =
  let ((app, clustering) as w) = mpeg () in
  with_path @@ fun path ->
  let d = open_exn ~path w in
  ignore (Dse.sweep ~store:d ~fb_list app clustering);
  (* handing the sweep a store opened for different axes is a programmer
     error, caught before any result could be mixed in *)
  (try
     ignore (Dse.sweep ~store:d ~fb_list:[ 512 ] app clustering);
     Alcotest.fail "axes mismatch must raise"
   with Invalid_argument msg ->
     Alcotest.(check bool) "names the mismatch" true
       (contains msg "different sweep"));
  Durable.close d;
  (* resuming with different axes is refused with a structured diag *)
  (match
     Durable.open_ ~resume:true ~path ~fb_list:[ 512 ] app clustering
   with
  | Ok _ -> Alcotest.fail "axes mismatch must refuse to resume"
  | Error diag ->
    Alcotest.(check bool) "SWEEP_MISMATCH" true
      (diag.Diag.code = Diag.Sweep_mismatch));
  (* ... and so is resuming with a different clustering *)
  (match
     Durable.open_ ~resume:true ~path ~fb_list app
       (Kernel_ir.Cluster.singleton_per_kernel app)
   with
  | Ok _ -> Alcotest.fail "clustering mismatch must refuse to resume"
  | Error diag ->
    Alcotest.(check bool) "SWEEP_MISMATCH" true
      (diag.Diag.code = Diag.Sweep_mismatch));
  (* overwriting an existing store without --resume is refused *)
  match Durable.open_ ~path ~fb_list app clustering with
  | Ok _ -> Alcotest.fail "existing store must require resume"
  | Error diag ->
    Alcotest.(check bool) "SWEEP_MISMATCH" true
      (diag.Diag.code = Diag.Sweep_mismatch);
    Alcotest.(check bool) "points at --resume" true
      (contains (Diag.render diag) "--resume")

let test_cache_clear_replays_from_store () =
  (* pins the documented Cache.clear contract: clearing empties only the
     memory, and the next durable sweep repopulates it from disk with
     zero recomputation *)
  let ((app, clustering) as w) = mpeg () in
  with_path @@ fun path ->
  let d = open_exn ~path w in
  let cache = Engine.Cache.create () in
  let first = Dse.sweep ~cache ~store:d ~fb_list app clustering in
  Engine.Cache.clear cache;
  Alcotest.(check int) "cache emptied" 0 (Engine.Cache.length cache);
  let st = Engine.Stats.create () in
  let second = Dse.sweep ~cache ~store:d ~stats:st ~fb_list app clustering in
  Alcotest.(check string) "same output after clear" (Dse.to_csv first)
    (Dse.to_csv second);
  Alcotest.(check int) "replayed from disk, not recomputed" 0
    (Engine.Stats.tasks_run st);
  Alcotest.(check int) "every point a cache hit" n_points
    (Engine.Stats.cache_hits st);
  Alcotest.(check int) "replay refilled the cleared cache" n_points
    (Engine.Stats.store_replayed st);
  Durable.close d

let test_auto_clustering_store () =
  let app = Workloads.Mpeg.app () in
  let config = Morphosys.Config.m1 ~fb_set_size:4096 in
  let reference = Cds.Pipeline.auto_clustering config app in
  with_path @@ fun path ->
  match Engine.Store.open_ ~schema:1 path with
  | Error d -> Alcotest.failf "open failed: %s" (Diag.render d)
  | Ok store ->
    let first = Cds.Pipeline.auto_clustering ~store config app in
    Alcotest.(check bool) "store does not change the search result" true
      (first = reference);
    let cached = Engine.Store.length store in
    Alcotest.(check bool) "candidates were memoised" true (cached > 0);
    (* a rerun against the same store answers from disk alone *)
    let second = Cds.Pipeline.auto_clustering ~store config app in
    Alcotest.(check bool) "memoised rerun agrees" true (second = reference);
    Alcotest.(check int) "no new candidates were evaluated" cached
      (Engine.Store.length store);
    Engine.Store.close store

let tests =
  ( "dse_resume",
    [
      Alcotest.test_case "durable sweep replays byte-identically" `Quick
        test_durable_roundtrip;
      Alcotest.test_case "crash mid-sweep, resume, zero re-work" `Quick
        test_crash_resume;
      Alcotest.test_case "torn tail recomputes exactly one point" `Quick
        test_torn_tail_recomputes_one;
      Alcotest.test_case "forged schedule fails re-validation" `Quick
        test_forged_schedule_fails_revalidation;
      Alcotest.test_case "identity guards every resume path" `Quick
        test_identity_guards;
      Alcotest.test_case "Cache.clear then replay from store" `Quick
        test_cache_clear_replays_from_store;
      Alcotest.test_case "auto-clustering memoises in a store" `Quick
        test_auto_clustering_store;
    ] )
