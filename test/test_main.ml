(* Aggregates every suite; run with `dune runtest`. *)

let () =
  Alcotest.run "morphosys_cds"
    [
      Test_listx.tests;
      Test_interval.tests;
      Test_stats.tests;
      Test_pretty.tests;
      Test_morphosys.tests;
      Test_kernel_ir.tests;
      Test_info_extractor.tests;
      Test_fb_alloc.tests;
      Test_ds_formula.tests;
      Test_sched_units.tests;
      Test_schedulers.tests;
      Test_cds_units.tests;
      Test_sim.tests;
      Test_allocation.tests;
      Test_workloads.tests;
      Test_pipeline.tests;
      Test_codegen.tests;
      Test_rcsim.tests;
      Test_appdsl.tests;
      Test_report.tests;
      Test_step_builder.tests;
      Test_invariant.tests;
      Test_vcd.tests;
      Test_dse.tests;
      Test_engine.tests;
      Test_store.tests;
      Test_dse_parallel.tests;
      Test_dse_resume.tests;
      Test_fuzz_oracle.tests;
      Test_analysis.tests;
      Test_misc_coverage.tests;
      Test_diagnostics.tests;
      Test_degrade.tests;
      Test_registry.tests;
    ]
