(* Determinism of the parallel cached DSE engine: jobs=N must reproduce
   jobs=1 byte for byte, with and without the memo cache; the cache must
   actually memoise across sweeps; fuzz reports must not depend on the
   job count. *)

module Dse = Report.Dse

let point = Alcotest.testable (Fmt.of_to_string (fun _ -> "<point>")) ( = )

let mpeg () =
  let app = Workloads.Mpeg.app () in
  (app, Workloads.Mpeg.clustering app)

let sweep ?jobs ?cache ?stats (app, clustering) =
  Dse.sweep ?jobs ?cache ?stats ~cm_list:[ 1024; 2048 ]
    ~setup_list:[ 0; 16 ] ~fb_list:[ 1024; 2048; 3072 ] app clustering

let test_jobs_deterministic () =
  let w = mpeg () in
  let reference = sweep ~jobs:1 w in
  Alcotest.(check int) "cross product size" 36 (List.length reference);
  List.iter
    (fun jobs ->
      let got = sweep ~jobs w in
      Alcotest.(check (list point))
        (Printf.sprintf "jobs=%d same points" jobs)
        reference got;
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d byte-identical csv" jobs)
        (Dse.to_csv reference) (Dse.to_csv got))
    [ 2; 4 ]

let test_cache_deterministic () =
  let w = mpeg () in
  let reference = sweep ~jobs:1 w in
  let cache = Engine.Cache.create () in
  let cold = sweep ~jobs:4 ~cache w in
  Alcotest.(check string) "cold cache byte-identical" (Dse.to_csv reference)
    (Dse.to_csv cold);
  Alcotest.(check int) "cold sweep missed everything" 0
    (Engine.Cache.hits cache);
  let stats = Engine.Stats.create () in
  let warm = sweep ~jobs:4 ~cache ~stats w in
  Alcotest.(check string) "warm cache byte-identical" (Dse.to_csv reference)
    (Dse.to_csv warm);
  Alcotest.(check int) "warm sweep hit everything" 36
    (Engine.Cache.hits cache);
  Alcotest.(check int) "stats saw the hits" 36
    (Engine.Stats.cache_hits stats);
  Alcotest.(check int) "no task ran on the warm sweep" 0
    (Engine.Stats.tasks_run stats)

let test_cache_across_sweeps () =
  (* overlapping fb lists: the shared design points are scheduled once *)
  let app, clustering = mpeg () in
  let cache = Engine.Cache.create () in
  let first = Dse.sweep ~cache ~fb_list:[ 1024; 2048 ] app clustering in
  let second = Dse.sweep ~cache ~fb_list:[ 2048; 3072 ] app clustering in
  Alcotest.(check int) "3 shared points served from cache" 3
    (Engine.Cache.hits cache);
  Alcotest.(check int) "9 distinct points scheduled" 9
    (Engine.Cache.length cache);
  (* the shared fb=2048 rows are literally the same points *)
  let rows fb pts =
    List.filter (fun (p : Dse.point) -> p.Dse.fb_set_size = fb) pts
  in
  Alcotest.(check (list point)) "shared rows identical" (rows 2048 first)
    (rows 2048 second);
  (* and a different clustering must not collide with the cached points *)
  let singleton = Kernel_ir.Cluster.singleton_per_kernel app in
  let third = Dse.sweep ~cache ~fb_list:[ 2048 ] app singleton in
  Alcotest.(check int) "different clustering misses" 3
    (Engine.Cache.hits cache);
  Alcotest.(check bool) "different clustering, different points" true
    (rows 2048 first <> third)

let test_fuzz_jobs_deterministic () =
  let run jobs = Report.Fuzz.run ~jobs ~seed:7 ~count:12 () in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "same report for jobs=1 and jobs=4" true (r1 = r4);
  Alcotest.(check bool) "fuzz finds no bugs" true (Report.Fuzz.ok r1);
  Alcotest.(check int) "every schedule accounted for" (3 * 12)
    (r1.Report.Fuzz.schedules_checked + r1.Report.Fuzz.infeasible);
  (* rerunning the same seed reproduces the run exactly *)
  Alcotest.(check bool) "same seed reproduces" true (run 1 = r1)

let tests =
  ( "dse_parallel",
    [
      Alcotest.test_case "jobs=N byte-identical to jobs=1" `Quick
        test_jobs_deterministic;
      Alcotest.test_case "cache preserves output" `Quick
        test_cache_deterministic;
      Alcotest.test_case "cache memoises across sweeps" `Quick
        test_cache_across_sweeps;
      Alcotest.test_case "fuzz independent of job count" `Quick
        test_fuzz_jobs_deterministic;
    ] )
