(* Scaling bench: end-to-end Complete Data Scheduler runs on synthetic
   applications of growing size, indexed path (Sched_ctx + incremental
   retention) vs the retained list-based reference. Both paths are asserted
   to produce identical results before any number is reported, so the
   speedup column never trades correctness for time. Results also land in
   BENCH_scaling.json for tracking across commits. *)

let sizes_full = [ (20, 40); (50, 100); (100, 200) ]
let sizes_smoke = [ (8, 12); (12, 16) ]

let config =
  Morphosys.Config.make ~fb_set_size:8192 ~cm_capacity:4096 ()

type row = {
  kernels : int;
  data : int;
  objects : int;
  clusters : int;
  reference_s : float;
  indexed_s : float;
}

let speedup r = r.reference_s /. r.indexed_s

let best_of n f =
  let rec go best i =
    if i = 0 then best
    else begin
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      go (min best (Unix.gettimeofday () -. t0)) (i - 1)
    end
  in
  go infinity n

(* Results must match field for field; a mismatch is a correctness bug in
   the indexed path, not a benchmark artefact — refuse to report numbers. *)
let check_equal ~kernels ~data reference indexed =
  if reference <> indexed then (
    Format.eprintf
      "scaling bench: indexed CDS result differs from reference on \
       %d-kernel/%d-extra app@."
      kernels data;
    exit 1)

let measure ~repeats (kernels, data) =
  let app = Workloads.Random_app.large ~kernels ~data ~seed:1 in
  let clustering = Workloads.Random_app.pairs_clustering app in
  let reference () =
    Cds.Complete_data_scheduler.schedule_reference config app clustering
  in
  let indexed () =
    (* the end-to-end indexed path: context construction included *)
    Cds.Complete_data_scheduler.schedule config app clustering
  in
  check_equal ~kernels ~data (reference ()) (indexed ());
  let reference_s = best_of repeats reference in
  let indexed_s = best_of repeats indexed in
  {
    kernels;
    data;
    objects = List.length app.Kernel_ir.Application.data;
    clusters = List.length clustering;
    reference_s;
    indexed_s;
  }

let json_of_rows rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"cds_scaling\",\n  \"config\": ";
  Buffer.add_string buf
    (Printf.sprintf
       "{ \"fb_set_size\": %d, \"cm_capacity\": %d },\n  \"rows\": [\n"
       config.Morphosys.Config.fb_set_size config.Morphosys.Config.cm_capacity);
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kernels\": %d, \"extra_data\": %d, \"objects\": %d, \
            \"clusters\": %d, \"reference_s\": %.6f, \"indexed_s\": %.6f, \
            \"speedup\": %.2f }%s\n"
           r.kernels r.data r.objects r.clusters r.reference_s r.indexed_s
           (speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run ?(smoke = false) () =
  let sizes = if smoke then sizes_smoke else sizes_full in
  let repeats = if smoke then 1 else 3 in
  Format.printf
    "@\n== CDS scaling bench (indexed vs reference, best of %d) ==@\n@\n"
    repeats;
  let rows = List.map (measure ~repeats) sizes in
  let header =
    [ "kernels"; "objects"; "clusters"; "reference"; "indexed"; "speedup" ]
  in
  let table_rows =
    List.map
      (fun r ->
        [
          string_of_int r.kernels;
          string_of_int r.objects;
          string_of_int r.clusters;
          Printf.sprintf "%.1f ms" (r.reference_s *. 1000.);
          Printf.sprintf "%.1f ms" (r.indexed_s *. 1000.);
          Printf.sprintf "%.1fx" (speedup r);
        ])
      rows
  in
  Msutil.Pretty.table ~header ~rows:table_rows Format.std_formatter;
  let out = open_out "BENCH_scaling.json" in
  output_string out (json_of_rows rows);
  close_out out;
  Format.printf "@\n(identical schedules verified; wrote BENCH_scaling.json)@\n"
