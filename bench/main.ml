(* Benchmark harness. Each section can be run on its own:

     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- --tables    # Table 1 / Figure 6 only
     dune exec bench/main.exe -- --figures   # Figures 3 and 5, allocator
     dune exec bench/main.exe -- --micro     # bechamel microbenchmarks
     dune exec bench/main.exe -- --dse       # parallel/cached DSE engine
     dune exec bench/main.exe -- --scaling   # indexed-vs-reference scaling
     dune exec bench/main.exe -- --no-micro  # legacy: all but microbenches

   Selector flags compose: `-- --tables --dse` runs exactly those two.
   `--scaling` accepts `--smoke` (tiny sizes, single repeat — the CI
   configuration) and is never part of the default run: its large
   applications take too long for the everything-run. *)

let () =
  let flag name = Array.exists (fun a -> a = name) Sys.argv in
  let tables = flag "--tables" and figures = flag "--figures" in
  let micro = flag "--micro" and dse = flag "--dse" in
  let scaling = flag "--scaling" in
  let any_selected = tables || figures || micro || dse || scaling in
  let all = not any_selected in
  if all || tables then
    ignore (Report.Table_report.run () : Report.Table_report.row list);
  if all || figures then Report.Figure_report.run ();
  if (all && not (flag "--no-micro")) || micro then Micro_bench.run ();
  if all || dse then Dse_bench.run ();
  if scaling then Scaling_bench.run ~smoke:(flag "--smoke") ()
