(* Engine microbench: the ATR-SLD design-space sweep run sequentially,
   on a full worker pool, and through a warm memo cache. Wall-clock,
   best-of-three — the number an architect sizing a machine actually
   waits on. *)

let sld = Workloads.Atr.sld ()
let sld_clustering = Workloads.Atr.sld_clustering sld
let fb_list = [ 1024; 2048; 4096; 8192; 16384 ]
let cm_list = [ 1024; 2048 ]
let setup_list = [ 0; 16 ]

let sweep ?cache ~jobs () =
  Report.Dse.sweep ~jobs ?cache ~cm_list ~setup_list ~fb_list sld
    sld_clustering

let best_of n f =
  let rec go best i =
    if i = 0 then best
    else begin
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      go (min best (Unix.gettimeofday () -. t0)) (i - 1)
    end
  in
  go infinity n

let run () =
  let jobs = Engine.Pool.recommended_jobs () in
  let points = List.length (sweep ~jobs:1 ()) (* also warms the code *) in
  Format.printf
    "@\n== DSE engine bench (ATR-SLD, %d design points, best of 3) ==@\n@\n"
    points;
  let seq = best_of 3 (fun () -> sweep ~jobs:1 ()) in
  let par = best_of 3 (fun () -> sweep ~jobs ()) in
  let cache = Engine.Cache.create () in
  ignore (sweep ~cache ~jobs:1 ());
  let cached = best_of 3 (fun () -> sweep ~cache ~jobs:1 ()) in
  Format.printf "sequential (jobs=1)   %8.1f ms@\n" (seq *. 1000.);
  Format.printf "pool (jobs=%-2d)        %8.1f ms   %.2fx@\n" jobs
    (par *. 1000.) (seq /. par);
  Format.printf "warm cache            %8.1f ms   %.0fx@\n" (cached *. 1000.)
    (seq /. cached);
  Format.printf "(%d hardware threads available to this process)@\n" jobs
